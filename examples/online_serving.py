"""Online serving under realistic traffic: tail latency of the design points.

The paper argues that user-facing recommendation services need
latency-optimized hardware because they run under firm SLAs.  This example
goes one step further than per-batch latency: it simulates an online serving
system through the :mod:`repro.workloads` subsystem and reports the
p50/p95/p99 request latency, device utilization and energy per request of
CPU-only, CPU-GPU and Centaur — first under smooth Poisson load, then under
traffic shapes the eager request-list API could never express: MMPP bursts,
a diurnal day-curve, and a multi-model traffic mix served by one cluster.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

from repro import get_backend
from repro.analysis import render_serving_comparison
from repro.config import DLRM2, DLRM4, HARPV2_SYSTEM
from repro.serving import (
    AdaptiveWindowBatching,
    CloseOnFullBatching,
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
    RoundRobinDispatcher,
    ServingSimulator,
    TimeoutBatching,
)
from repro.utils import TextTable
from repro.workloads import (
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TrafficMix,
    Workload,
)

#: Arrival rates to sweep (queries per second).
LOADS_QPS = (5_000, 20_000, 40_000)
#: Simulated wall-clock window per experiment.
DURATION_S = 0.25
#: Dynamic batching policy shared by every design point.
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)
#: Latency SLA used for the attainment column.
SLA_S = 5e-3


def main() -> None:
    model = DLRM2
    runners = tuple(
        get_backend(name, HARPV2_SYSTEM) for name in ("cpu", "cpu-gpu", "centaur")
    )
    print(f"Serving {model.name} with a {BATCHING.window_s * 1e3:.1f} ms batching window, "
          f"max batch {BATCHING.max_batch_size}, SLA {SLA_S * 1e3:.0f} ms\n")

    for load in LOADS_QPS:
        workload = Workload(arrivals=PoissonArrivals(rate_qps=load))
        table = TextTable(
            [
                "design point",
                "p50 (ms)",
                "p95 (ms)",
                "p99 (ms)",
                "SLA attainment",
                "avg batch",
                "utilization",
                "energy/req (mJ)",
            ],
            title=f"Offered load: {load:,} QPS over {DURATION_S * 1e3:.0f} ms",
        )
        for runner in runners:
            simulator = ServingSimulator(runner, model, batching=BATCHING)
            report = simulator.serve_workload(workload, duration_s=DURATION_S, seed=42)
            table.add_row(
                [
                    report.design_point,
                    report.latency.p50_s * 1e3,
                    report.latency.p95_s * 1e3,
                    report.latency.p99_s * 1e3,
                    f"{report.latency.sla_attainment(SLA_S) * 100:.1f}%",
                    report.average_batch_size,
                    f"{report.device_utilization * 100:.0f}%",
                    report.energy_per_request_joules * 1e3,
                ]
            )
        print(table.render())
        print()

    print(
        "At light load every design point meets the SLA; as the load approaches"
        "\nthe CPU's saturation throughput its queue explodes while Centaur keeps"
        "\nits tail latency flat - the serving-level consequence of the per-batch"
        "\nspeedups in Figure 14.\n"
    )

    compare_traffic_shapes(model)
    serve_traffic_mix()
    compare_batching_policies(model)
    compare_dispatchers(model)


def compare_traffic_shapes(model) -> None:
    """Same mean load, three shapes: smooth, bursty (MMPP), diurnal.

    The eager Poisson-only API could not express the bursty or diurnal
    streams; with the workload subsystem they are one object each.
    """
    mean_qps = 25_000.0
    shapes = {
        "poisson (smooth)": Workload(
            arrivals=PoissonArrivals(rate_qps=mean_qps), name="smooth"
        ),
        "bursty (MMPP on/off)": Workload(
            arrivals=OnOffArrivals(
                on_rate_qps=2.0 * mean_qps - 5_000.0,
                off_rate_qps=5_000.0,
                mean_on_s=0.02,
                mean_off_s=0.02,
            ),
            name="bursty",
        ),
        "diurnal (day curve)": Workload(
            arrivals=DiurnalArrivals(
                trough_qps=5_000.0, peak_qps=2.0 * mean_qps - 5_000.0, period_s=DURATION_S
            ),
            name="diurnal",
        ),
    }
    reports = {}
    for label, workload in shapes.items():
        simulator = ServingSimulator(
            get_backend("centaur", HARPV2_SYSTEM), model, batching=BATCHING
        )
        reports[label] = simulator.serve_workload(
            workload, duration_s=DURATION_S, seed=42
        )
    print(
        render_serving_comparison(
            reports,
            sla_s=SLA_S,
            title=f"Traffic shape at ~{mean_qps:,.0f} QPS mean on one Centaur device",
        )
    )
    print(
        "All three streams offer the same mean load, but the tail is set by"
        "\nthe shape: MMPP bursts pile the queue during on-periods and the"
        "\nday-curve crest behaves like a slow-motion burst - exactly the"
        "\nscenarios capacity planning must survive.\n"
    )


def serve_traffic_mix() -> None:
    """One heterogeneous cluster serving two DLRM configs concurrently."""
    mix = TrafficMix.of((DLRM2, 0.7), (DLRM4, 0.3))
    workload = Workload(
        arrivals=PoissonArrivals(rate_qps=60_000.0), mix=mix, name="blend"
    )
    fleet = HeterogeneousCluster.from_backends(
        ["cpu", "centaur", "centaur"],
        DLRM2,
        HARPV2_SYSTEM,
        dispatcher=LeastLoadedDispatcher(),
        batching=BATCHING,
    )
    report = fleet.serve_workload(workload, duration_s=DURATION_S, seed=42)
    print(
        render_serving_comparison(
            {f"{fleet.design_point} fleet": report},
            sla_s=SLA_S,
            title=f"Multi-model mix {mix.label} on one cluster at 60,000 QPS",
        )
    )
    print(
        "Every request is tagged with its target model; replicas split each"
        "\nbatch into per-model segments and price them separately, so one"
        "\nfleet can absorb a blended production workload.\n"
    )


def compare_batching_policies(model) -> None:
    """Queue-reactive batching policies on a single Centaur device."""
    policies = {
        "timeout 1ms": BATCHING,
        "close-on-full (greedy)": CloseOnFullBatching(batch_size=64),
        "adaptive window": AdaptiveWindowBatching(base_window_s=2e-3, max_batch_size=64),
    }
    reports = {}
    for label, policy in policies.items():
        simulator = ServingSimulator(
            get_backend("centaur", HARPV2_SYSTEM), model, batching=policy
        )
        reports[label] = simulator.serve_poisson(
            rate_qps=30_000, duration_s=DURATION_S, seed=42
        )
    print(
        render_serving_comparison(
            reports,
            sla_s=SLA_S,
            title="Batching policies on one Centaur device at 30,000 QPS",
        )
    )
    print(
        "The greedy policy dispatches eagerly whenever the device idles, so it"
        "\ntrades average batch size for latency; the adaptive window shrinks"
        "\nunder bursts and sits between the fixed window and the greedy policy.\n"
    )


def compare_dispatchers(model) -> None:
    """A heterogeneous fleet (2 CPU sockets + 1 Centaur) under four dispatchers."""
    load = 120_000
    workload = Workload(arrivals=PoissonArrivals(rate_qps=load), name="dispatch-load")
    dispatchers = (
        RoundRobinDispatcher(),
        PowerOfTwoChoicesDispatcher(seed=7),
        JoinShortestQueueDispatcher(),
        LeastLoadedDispatcher(),
    )
    reports = {}
    for dispatcher in dispatchers:
        fleet = HeterogeneousCluster.from_backends(
            ["cpu", "cpu", "centaur"],
            model,
            HARPV2_SYSTEM,
            dispatcher=dispatcher,
            batching=BATCHING,
        )
        reports[dispatcher.name] = fleet.serve_workload(
            workload, duration_s=DURATION_S, seed=42
        )
    print(
        render_serving_comparison(
            reports,
            sla_s=SLA_S,
            title=f"Dispatch policies over 2x CPU + 1x Centaur at {load:,} QPS",
        )
    )
    print(
        "Blind round-robin sends a third of the load to each socket and the CPU"
        "\nqueues dominate the tail; queue-aware dispatch (JSQ, least-loaded)"
        "\nroutes around the slow sockets, and two random choices already recover"
        "\nmost of that benefit."
    )


if __name__ == "__main__":
    main()
