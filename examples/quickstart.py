"""Quickstart: run DLRM inference on the Centaur model, end to end.

The script

1. builds a DLRM recommendation model (a scaled-down cousin of the paper's
   Table I configurations so the functional path runs in milliseconds),
2. runs a batch of inference requests both as plain software and through the
   functional Centaur device (EB-Streamer + dense accelerator complex) and
   checks that the event probabilities agree,
3. uses the calibrated performance models to compare the three design points
   of the paper (CPU-only, CPU-GPU, Centaur) on the real DLRM(1)
   configuration, printing latency, speedup and energy-efficiency.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CentaurDevice,
    DLRM,
    Experiment,
    UniformTraceGenerator,
)
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.utils import TextTable, seconds_to_human


def functional_demo() -> None:
    """Run real numbers through the functional Centaur datapath."""
    print("=" * 72)
    print("1. Functional inference: software DLRM vs the Centaur datapath")
    print("=" * 72)

    config = homogeneous_dlrm(
        name="quickstart-model",
        num_tables=8,
        rows_per_table=50_000,
        gathers_per_table=20,
    )
    model = DLRM.from_config(config, seed=0)
    print(model.model_summary())

    generator = UniformTraceGenerator(seed=1)
    batch = generator.model_batch(config, batch_size=16)

    software_probabilities = model.predict(batch)
    device = CentaurDevice(model, HARPV2_SYSTEM)
    hardware_probabilities = device.predict(batch)

    max_error = float(np.max(np.abs(software_probabilities - hardware_probabilities)))
    print(f"\nbatch size                  : {batch.batch_size}")
    print(f"embedding lookups in batch  : {batch.total_lookups}")
    print(f"first four probabilities    : {np.round(hardware_probabilities[:4], 4)}")
    print(f"max |software - hardware|   : {max_error:.2e}")
    assert max_error < 1e-4, "the accelerator datapath must match the software model"


def performance_demo() -> None:
    """Compare the three design points on the paper's DLRM(1) configuration."""
    print()
    print("=" * 72)
    print("2. Performance model: CPU-only vs CPU-GPU vs Centaur on DLRM(1)")
    print("=" * 72)

    batch_sizes = (1, 4, 16, 32, 64, 128)
    grid = (
        Experiment(HARPV2_SYSTEM)
        .backends("cpu", "cpu-gpu", "centaur")
        .models(DLRM1)
        .batch_sizes(batch_sizes)
        .run()
    )

    table = TextTable(
        [
            "batch",
            "CPU-only",
            "CPU-GPU",
            "Centaur",
            "speedup vs CPU",
            "energy-eff vs CPU",
        ],
        title="End-to-end inference latency (DLRM(1))",
    )
    for batch_size in batch_sizes:
        cpu_result = grid.get("cpu", DLRM1.name, batch_size)
        gpu_result = grid.get("cpu-gpu", DLRM1.name, batch_size)
        centaur_result = grid.get("centaur", DLRM1.name, batch_size)
        table.add_row(
            [
                batch_size,
                seconds_to_human(cpu_result.latency_seconds),
                seconds_to_human(gpu_result.latency_seconds),
                seconds_to_human(centaur_result.latency_seconds),
                f"{centaur_result.speedup_over(cpu_result):.2f}x",
                f"{centaur_result.energy_efficiency_over(cpu_result):.2f}x",
            ]
        )
    print(table.render())

    result = grid.get("centaur", DLRM1.name, 32)
    print("\nCentaur stage breakdown at batch 32:")
    for stage, seconds in result.breakdown.stages.items():
        print(f"  {stage:<6} {seconds_to_human(seconds):>12}  ({result.breakdown.fraction(stage) * 100:5.1f}%)")


def main() -> None:
    functional_demo()
    performance_demo()
    print("\nQuickstart finished successfully.")


if __name__ == "__main__":
    main()
