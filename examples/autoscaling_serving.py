"""Autoscaling vs. static provisioning under a day-curve workload.

PR 3 gave the workload subsystem diurnal arrivals; this example shows why
they matter.  A fleet statically provisioned for the traffic peak meets its
SLA all day but pays for idle replicas all night; a fleet provisioned for
the mean gives the SLA back at every crest.  The autoscaler threads that
needle: it holds the p99 SLA of the peak-provisioned fleet while paying for
a fraction of its replica-hours.

The script:

1. sizes the peak fleet with a :class:`~repro.serving.CapacityPlanner`
   (minimal replicas meeting the p99 target at the *peak* rate),
2. serves one diurnal cycle on that static fleet,
3. serves the same cycle on an elastic fleet under each autoscaling policy,
4. compares SLA attainment, replica-seconds and energy side by side, and
   prints the winning policy's replica-count timeline.

Run with:  python examples/autoscaling_serving.py
"""

from __future__ import annotations

from repro import get_backend
from repro.analysis import render_autoscale_timeline, render_serving_comparison
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import (
    AutoscalingCluster,
    CapacityPlanner,
    ClusterSimulator,
    EWMAPolicy,
    LeastLoadedDispatcher,
    QueueDepthPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    TimeoutBatching,
)
from repro.utils import TextTable
from repro.workloads import DiurnalArrivals, PoissonArrivals, Workload

SLA_S = 5e-3
TROUGH_QPS, PEAK_QPS = 4_000.0, 40_000.0
PERIOD_S = 0.4  # one compressed "day"
SEED = 7
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def size_peak_fleet(backend_name: str) -> int:
    """Minimal fleet meeting the p99 SLA at the sustained peak rate."""
    planner = CapacityPlanner(
        HARPV2_SYSTEM, sla_s=SLA_S, target_attainment=0.99, batching=BATCHING, seed=SEED
    )
    point = planner.plan_backend(
        backend_name,
        DLRM2,
        Workload(arrivals=PoissonArrivals(rate_qps=PEAK_QPS), name="peak"),
        duration_s=PERIOD_S / 4,
    )
    assert point.feasible, f"{backend_name} cannot meet the SLA at peak within bounds"
    print(
        f"peak sizing [{backend_name}]: {point.replicas} replicas "
        f"(p99 {point.p99_s * 1e3:.2f} ms at {PEAK_QPS:,.0f} QPS; "
        f"fleets simulated: {list(point.evaluated)})"
    )
    return point.replicas


def main() -> None:
    backend = get_backend("cpu", HARPV2_SYSTEM)
    peak_replicas = size_peak_fleet("cpu")
    diurnal = Workload(
        arrivals=DiurnalArrivals(
            trough_qps=TROUGH_QPS, peak_qps=PEAK_QPS, period_s=PERIOD_S
        ),
        name="diurnal-day",
    )

    static = ClusterSimulator(
        backend,
        DLRM2,
        num_replicas=peak_replicas,
        batching=BATCHING,
        dispatcher=LeastLoadedDispatcher(),
    )
    reports = {
        f"static x{peak_replicas} (peak-provisioned)": static.serve_workload(
            diurnal, duration_s=PERIOD_S, seed=SEED
        )
    }

    policies = (
        TargetUtilizationPolicy(target=0.7, deadband=0.1, cooldown_s=0.02),
        QueueDepthPolicy(high_watermark=64, low_watermark=8, cooldown_s=0.02),
        EWMAPolicy(alpha=0.4, headroom=1.3, replica_capacity_qps=PEAK_QPS / peak_replicas),
        ScheduledPolicy([(0.0, 1), (PERIOD_S * 0.25, peak_replicas), (PERIOD_S * 0.8, 2)]),
    )
    for policy in policies:
        elastic = AutoscalingCluster(
            backend,
            DLRM2,
            policy=policy,
            min_replicas=1,
            max_replicas=peak_replicas,
            control_interval_s=0.01,
            warmup_s=backend.capabilities.provision_warmup_s,
            batching=BATCHING,
            dispatcher=LeastLoadedDispatcher(),
        )
        reports[f"autoscaled ({policy.name})"] = elastic.serve_workload(
            diurnal, duration_s=PERIOD_S, seed=SEED
        )

    print()
    print(
        render_serving_comparison(
            reports,
            sla_s=SLA_S,
            title=(
                f"One diurnal cycle ({TROUGH_QPS:,.0f}-{PEAK_QPS:,.0f} QPS): "
                "static peak fleet vs autoscaled"
            ),
        )
    )

    cost = TextTable(
        ["configuration", "replica-seconds", "vs static", "peak fleet", "scale events"],
        title="What the elasticity bought",
    )
    static_seconds = reports[f"static x{peak_replicas} (peak-provisioned)"].replica_seconds
    for label, report in reports.items():
        autoscale = report.autoscale
        cost.add_row(
            [
                label,
                f"{report.replica_seconds:.3f}",
                f"{100.0 * report.replica_seconds / static_seconds:.0f}%",
                autoscale.peak_replicas if autoscale else report.num_replicas,
                (autoscale.scale_up_events + autoscale.scale_down_events)
                if autoscale
                else 0,
            ]
        )
    print()
    print(cost.render())

    best_label = min(
        (label for label, report in reports.items() if report.autoscale is not None),
        key=lambda label: reports[label].replica_seconds,
    )
    print()
    print(
        render_autoscale_timeline(
            reports[best_label],
            sla_s=SLA_S,
            title=f"Cheapest elastic fleet: {best_label}",
        )
    )
    print(
        "\nThe autoscaled fleets hold the peak fleet's SLA attainment while"
        "\npaying for a fraction of its replica-hours; the predictive EWMA"
        "\npolicy commissions capacity ahead of the crest it smooths toward."
    )


if __name__ == "__main__":
    main()
