"""Chaos drills: deterministic fault injection on the serving fleet.

A capacity plan that only ever sees healthy replicas overstates what the
fleet delivers the day a rack goes dark.  This example runs the same
workload stream twice — once fault-free, once under the named
``region-failover`` scenario from the workload catalog — and shows what
the incident actually cost: requests shed during the outage, in-flight
work re-dispatched to survivors, SLA attainment before/during/after, and
the time-to-recover back to the pre-incident p99.  Everything is
seed-deterministic: the same schedule over the same stream reproduces the
same incident report byte for byte.

The script:

1. serves a Poisson stream on a static 3-replica fleet (the healthy
   baseline),
2. replays the identical stream under ``region-failover`` (two replicas
   crash at once and restart after a cold outage window),
3. prints the side-by-side serving comparison and the incident timeline,
4. repeats the drill on a sharded group, losing one embedding shard with
   re-hash failover — correct rows come back only when the shard does,
   and the degraded lookups are counted as correctness loss.

Run with:  python examples/chaos_resilience.py
"""

from __future__ import annotations

from repro import get_backend
from repro.analysis import render_incident_timeline, render_serving_comparison
from repro.chaos import FaultSchedule, ReplicaCrash, ShardLoss
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import AutoscalingCluster, TimeoutBatching
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding import parse_cache_spec
from repro.workloads import SCENARIO_CATALOG, PoissonArrivals, Workload

SLA_S = 5e-3
RATE_QPS = 20_000.0
NUM_REQUESTS = 4_000
SEED = 7
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def fleet_drill() -> None:
    """Healthy fleet vs the same fleet through a region failover."""
    scenario = SCENARIO_CATALOG["region-failover"]
    print(f"scenario '{scenario.name}': {scenario.summary}")
    print(f"fault spec: {scenario.fault_spec}\n")

    backend = get_backend("centaur", HARPV2_SYSTEM)
    workload = Workload(arrivals=PoissonArrivals(rate_qps=RATE_QPS), name="steady")
    reports = {}
    for label, faults in (
        ("healthy x3", None),
        ("region failover x3", scenario.schedule()),
    ):
        fleet = AutoscalingCluster(
            backend,
            DLRM2,
            policy=None,  # static fleet; chaos only needs the elastic plumbing
            min_replicas=1,
            max_replicas=3,
            initial_replicas=3,
            warmup_s=backend.capabilities.provision_warmup_s,
            batching=BATCHING,
        )
        reports[label] = fleet.serve_workload(
            workload, num_requests=NUM_REQUESTS, seed=SEED, faults=faults
        )

    print(
        render_serving_comparison(
            reports, sla_s=SLA_S, title="Same stream, healthy vs region failover"
        )
    )
    print()
    print(render_incident_timeline(reports["region failover x3"]))


def shard_drill() -> None:
    """Lose one embedding shard of a sharded group, re-hash around it."""
    backend = get_backend("centaur", HARPV2_SYSTEM)
    group = ShardedReplicaGroup(
        backend,
        DLRM2,
        num_shards=4,
        cache=parse_cache_spec("lru:rows=2048"),
        batching=BATCHING,
        system=HARPV2_SYSTEM,
    )
    faults = FaultSchedule(
        [ShardLoss(at_s=0.04, shard=0, restore_after_s=0.03, failover="rehash")],
        sla_s=SLA_S,
        window_s=10e-3,
    )
    report = group.serve_workload(
        Workload(arrivals=PoissonArrivals(rate_qps=RATE_QPS), name="steady"),
        num_requests=NUM_REQUESTS,
        seed=SEED,
        faults=faults,
    )
    incidents = report.incidents
    print(render_incident_timeline(report, title="Shard-loss drill (rehash failover)"))
    lookups = report.sharding.total_lookups
    print(
        f"\ncorrectness loss: {incidents.total_degraded_lookups:,} of "
        f"{lookups:,} lookups ({100.0 * incidents.correctness_loss(lookups):.1f}%) "
        "read the wrong shard's rows while shard 0 was gone; the restored "
        "shard came back with a cold hot-row cache."
    )


def main() -> None:
    fleet_drill()
    print()
    shard_drill()
    print(
        "\nEqual seeds reproduce these incident reports byte for byte, so a"
        "\nresilience regression — slower recovery, more shed traffic — shows"
        "\nup as a deterministic diff, not a flaky rerun."
    )


if __name__ == "__main__":
    main()
