"""Sharded embedding serving with a hot-row cache on a skewed trace.

The paper's core observation is that embedding gathers dominate DLRM
inference; production traffic additionally concentrates those gathers on a
small hot row set.  This example pulls both scale levers the sharding
subsystem adds:

1. serves a zipf(1.05) trace through 1/2/4/8 embedding shards and shows
   how the straggler-gated gather stage and cross-shard traffic evolve,
2. compares the three placement strategies (table-wise, row-wise hash,
   capacity-balanced greedy) at a fixed shard count,
3. switches a per-shard LRU hot-row cache on and shows the skewed trace's
   hit rate cutting the mean gather latency — the consequence a uniform
   trace cannot produce.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

from repro import get_backend
from repro.analysis import render_sharding_report
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import ShardedReplicaGroup, TimeoutBatching
from repro.sharding import CacheConfig
from repro.workloads import PoissonArrivals, Workload
from repro.workloads.traces import ZipfianTrace

SLA_S = 5e-3
SEED = 7
NUM_REQUESTS = 4_000
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)

WORKLOAD = Workload(
    arrivals=PoissonArrivals(rate_qps=30_000),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf-30kqps",
)


def serve(group: ShardedReplicaGroup):
    return group.serve_workload(WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED)


def main() -> None:
    backend = get_backend("centaur", HARPV2_SYSTEM)

    # 1. Shard-count scaling at a fixed strategy, cache off.
    scaling = {}
    for shards in (1, 2, 4, 8):
        group = ShardedReplicaGroup(
            backend,
            DLRM2,
            num_shards=shards,
            strategy="row",
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        scaling[f"x{shards} row-wise"] = serve(group)
    print(
        render_sharding_report(
            scaling, sla_s=SLA_S, title="Shard-count scaling (zipf trace, cache off)"
        )
    )
    print()

    # 2. Placement strategies at four shards.
    strategies = {}
    for strategy in ("table", "row", "greedy"):
        group = ShardedReplicaGroup(
            backend,
            DLRM2,
            num_shards=4,
            strategy=strategy,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        strategies[strategy] = serve(group)
    print(
        render_sharding_report(
            strategies, sla_s=SLA_S, title="Placement strategies at 4 shards"
        )
    )
    print()

    # 3. Hot-row cache on vs off at four shards: the zipf skew pays off.
    cached = {}
    for label, cache in (
        ("cache off", None),
        ("lru 4096 rows/shard", CacheConfig(policy="lru", capacity_rows=4096)),
        ("lfu 4096 rows/shard", CacheConfig(policy="lfu", capacity_rows=4096)),
    ):
        group = ShardedReplicaGroup(
            backend,
            DLRM2,
            num_shards=4,
            strategy="row",
            cache=cache,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        cached[label] = serve(group)
    print(
        render_sharding_report(
            cached, sla_s=SLA_S, title="Hot-row cache on the zipf trace (4 shards)"
        )
    )
    off = cached["cache off"].sharding
    lru = cached["lru 4096 rows/shard"].sharding
    print()
    print(
        f"LRU hit rate {lru.hit_rate:.1%} cuts the mean gather stage from "
        f"{off.mean_gather_s * 1e6:.1f}us to {lru.mean_gather_s * 1e6:.1f}us per batch."
    )


if __name__ == "__main__":
    main()
