"""Design-space exploration of the Centaur accelerator.

Section VII of the paper discusses how Centaur would scale with better
chiplet technology: faster CPU<->FPGA links, a cache-bypassing gather path,
and larger FPGAs.  This example sweeps those design knobs with the
performance and resource models:

1. MLP PE-array size: dense throughput vs DSP/ALM budget of the Arria 10.
2. Sparse-index SRAM depth and reduction width: gather concurrency vs block
   memory.
3. Link bandwidth scaling and the Fig. 8 cache-bypass path: end-to-end
   latency of DLRM(4) as the chiplet interconnect improves.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import FPGAResourceModel, get_backend
from repro.analysis import ablation_link_bandwidth, render_ablation
from repro.config import DLRM4, DLRM6, HARPV2_SYSTEM
from repro.config.system import FPGAConfig
from repro.errors import ResourceEstimationError
from repro.utils import TextTable


def sweep_pe_array() -> None:
    print("=" * 72)
    print("1. MLP PE-array scaling (dense throughput vs FPGA resources)")
    print("=" * 72)
    table = TextTable(
        ["PE array", "peak GFLOPS", "DSPs", "DSP util %", "ALMs", "DLRM(6) MLP speedup"],
    )
    base_fpga = FPGAConfig()
    base_runner = get_backend("centaur", HARPV2_SYSTEM.with_fpga(base_fpga))
    base_mlp = base_runner.run(DLRM6, 64).breakdown.get("MLP")
    for rows_cols in ((2, 2), (4, 4), (6, 6), (8, 8)):
        fpga = replace(base_fpga, mlp_pe_rows=rows_cols[0], mlp_pe_cols=rows_cols[1])
        resources = FPGAResourceModel(fpga)
        try:
            report = resources.report()
        except ResourceEstimationError as error:
            table.add_row(
                [f"{rows_cols[0]}x{rows_cols[1]}", fpga.peak_flops / 1e9, "-", "-", "-",
                 f"does not fit: {error}"]
            )
            continue
        runner = get_backend("centaur", HARPV2_SYSTEM.with_fpga(fpga))
        mlp_time = runner.run(DLRM6, 64).breakdown.get("MLP")
        table.add_row(
            [
                f"{rows_cols[0]}x{rows_cols[1]}",
                fpga.peak_flops / 1e9,
                report.dsps,
                100.0 * report.dsp_utilization,
                report.alms,
                f"{base_mlp / mlp_time:.2f}x",
            ]
        )
    print(table.render())


def sweep_sparse_structures() -> None:
    print()
    print("=" * 72)
    print("2. Sparse accelerator sizing (index SRAM depth, reduction lanes)")
    print("=" * 72)
    table = TextTable(
        ["index SRAM entries", "reduction lanes", "block mem bits", "RAM block util %",
         "reduction GB/s"],
    )
    for entries, lanes in ((98_304, 16), (393_216, 32), (786_432, 64), (1_572_864, 64)):
        fpga = replace(FPGAConfig(), sparse_index_sram_entries=entries, reduction_lanes=lanes)
        resources = FPGAResourceModel(fpga)
        try:
            report = resources.report()
        except ResourceEstimationError:
            table.add_row([entries, lanes, "-", "does not fit", "-"])
            continue
        reduction_bandwidth = lanes * 4 * fpga.frequency_hz
        table.add_row(
            [
                entries,
                lanes,
                report.block_memory_bits,
                100.0 * report.ram_block_utilization,
                reduction_bandwidth / 1e9,
            ]
        )
    print(table.render())
    print(
        "\nThe default configuration (384K indices, 32 lanes) is what fills 82.5%"
        "\nof the Arria 10's RAM blocks in Table II; the wider variants show the"
        "\nheadroom a larger FPGA would provide."
    )


def sweep_link_bandwidth() -> None:
    print()
    print("=" * 72)
    print("3. Chiplet link scaling and the cache-bypass path (Section VII)")
    print("=" * 72)
    points = ablation_link_bandwidth(
        HARPV2_SYSTEM,
        model=DLRM4,
        batch_size=64,
        bandwidth_scales=(1.0, 2.0, 4.0, 8.0),
        include_bypass=True,
    )
    print(render_ablation(points))
    print(
        "\nGather throughput scales with link bandwidth until the 32-lane"
        "\nreduction unit (25.6 GB/s) becomes the next bottleneck - the kind of"
        "\nco-design insight the paper's discussion section anticipates."
    )


def main() -> None:
    sweep_pe_array()
    sweep_sparse_structures()
    sweep_link_bandwidth()


if __name__ == "__main__":
    main()
