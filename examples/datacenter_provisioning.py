"""Datacenter provisioning: SLA-constrained recommendation serving.

The paper motivates Centaur with user-facing inference services (news feed,
ads, e-commerce) that must meet firm latency SLAs.  This example uses the
calibrated performance models to answer the questions a capacity planner
would ask:

* What is the largest batch size each design point can serve within a given
  tail-latency SLA, and what throughput (queries per second) does that buy?
* How much energy does each design point spend per 1000 ranked requests?
* How many server nodes are needed to sustain a target query rate?

Run with:  python examples/datacenter_provisioning.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import get_backend
from repro.analysis import render_serving_comparison
from repro.config import DLRM2, DLRM4, HARPV2_SYSTEM
from repro.config.models import DLRMConfig
from repro.serving import (
    ClusterSimulator,
    LeastLoadedDispatcher,
    TimeoutBatching,
)
from repro.utils import TextTable
from repro.workloads import DiurnalArrivals, OnOffArrivals, PoissonArrivals, Workload

#: Latency SLA for one ranking request batch (a typical user-facing budget).
SLA_SECONDS = 2.0e-3
#: Target aggregate load for the node-count estimate.
TARGET_QPS = 100_000.0
#: Batch sizes a serving platform would realistically consider.
CANDIDATE_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class ProvisioningPoint:
    """Best operating point of one design point under the SLA."""

    design_point: str
    batch_size: Optional[int]
    latency_s: Optional[float]
    throughput_qps: float
    energy_per_kilo_requests_j: float
    nodes_for_target: Optional[int]


def best_operating_point(runner, model: DLRMConfig, sla_s: float) -> ProvisioningPoint:
    """Largest batch whose end-to-end latency stays within the SLA."""
    best = None
    for batch_size in CANDIDATE_BATCHES:
        result = runner.run(model, batch_size)
        if result.latency_seconds <= sla_s:
            best = result
        else:
            break
    if best is None:
        return ProvisioningPoint(
            design_point=runner.design_point,
            batch_size=None,
            latency_s=None,
            throughput_qps=0.0,
            energy_per_kilo_requests_j=float("inf"),
            nodes_for_target=None,
        )
    throughput = best.throughput_samples_per_second
    return ProvisioningPoint(
        design_point=best.design_point,
        batch_size=best.batch_size,
        latency_s=best.latency_seconds,
        throughput_qps=throughput,
        energy_per_kilo_requests_j=best.energy_per_sample_joules * 1000.0,
        nodes_for_target=int(-(-TARGET_QPS // throughput)),
    )


def provision(model: DLRMConfig) -> None:
    print("=" * 72)
    print(f"Provisioning {model.name}: SLA = {SLA_SECONDS * 1e3:.1f} ms per batch, "
          f"target load = {TARGET_QPS:,.0f} QPS")
    print("=" * 72)
    runners = tuple(
        get_backend(name, HARPV2_SYSTEM) for name in ("cpu", "cpu-gpu", "centaur")
    )
    table = TextTable(
        [
            "design point",
            "max batch in SLA",
            "latency",
            "throughput (QPS)",
            "energy / 1k req (J)",
            f"nodes for {TARGET_QPS / 1000:.0f}k QPS",
        ],
    )
    points = []
    for runner in runners:
        point = best_operating_point(runner, model, SLA_SECONDS)
        points.append(point)
        table.add_row(
            [
                point.design_point,
                point.batch_size if point.batch_size is not None else "SLA violated",
                f"{point.latency_s * 1e3:.2f} ms" if point.latency_s else "-",
                f"{point.throughput_qps:,.0f}",
                f"{point.energy_per_kilo_requests_j:.1f}"
                if point.energy_per_kilo_requests_j != float("inf")
                else "-",
                point.nodes_for_target if point.nodes_for_target is not None else "-",
            ]
        )
    print(table.render())

    cpu, _, centaur = points
    if cpu.nodes_for_target and centaur.nodes_for_target:
        saved = cpu.nodes_for_target - centaur.nodes_for_target
        print(
            f"\nCentaur serves the same {TARGET_QPS:,.0f} QPS with "
            f"{centaur.nodes_for_target} nodes instead of {cpu.nodes_for_target} "
            f"({saved} fewer sockets), while staying socket-compatible with the "
            "existing CPU fleet.\n"
        )


def validate_with_simulation(model: DLRMConfig) -> None:
    """Close the loop: simulate the provisioned fleets under realistic load.

    Static provisioning divides throughputs — implicitly assuming smooth
    traffic.  The event-driven cluster simulator then streams three traffic
    shapes of the same mean rate through the provisioned node counts: the
    smooth Poisson baseline, an MMPP burst pattern, and a diurnal day-curve
    whose crest exceeds the average the plan was sized for.  A fleet that
    only meets its SLA on the smooth stream is under-provisioned.
    """
    batching = TimeoutBatching(window_s=1e-3, max_batch_size=64)
    scenarios = {
        "poisson": Workload(
            arrivals=PoissonArrivals(rate_qps=TARGET_QPS), name="poisson"
        ),
        "bursty": Workload(
            arrivals=OnOffArrivals(
                on_rate_qps=1.6 * TARGET_QPS,
                off_rate_qps=0.4 * TARGET_QPS,
                mean_on_s=0.01,
                mean_off_s=0.01,
            ),
            name="bursty",
        ),
        "diurnal": Workload(
            arrivals=DiurnalArrivals(
                trough_qps=0.5 * TARGET_QPS, peak_qps=1.5 * TARGET_QPS, period_s=0.1
            ),
            name="diurnal",
        ),
    }
    reports = {}
    for backend_name in ("cpu", "centaur"):
        runner = get_backend(backend_name, HARPV2_SYSTEM)
        point = best_operating_point(runner, model, SLA_SECONDS)
        if point.nodes_for_target is None:
            continue
        cluster = ClusterSimulator(
            runner,
            model,
            num_replicas=point.nodes_for_target,
            batching=batching,
            dispatcher=LeastLoadedDispatcher(),
        )
        for shape, workload in scenarios.items():
            label = f"{point.design_point} x{point.nodes_for_target} ({shape})"
            reports[label] = cluster.serve_workload(
                workload, duration_s=0.1, seed=42
            )
    if not reports:
        return
    print(
        render_serving_comparison(
            reports,
            sla_s=SLA_SECONDS,
            title=(
                f"Simulated check: provisioned fleets at ~{TARGET_QPS:,.0f} QPS mean "
                "under three traffic shapes (least-loaded dispatch)"
            ),
        )
    )
    print(
        "The bursty and diurnal streams offer the same mean load as the smooth"
        "\nplan, but their crests probe the headroom: node counts sized on"
        "\naverage throughput alone give back the SLA during every on-period.\n"
    )


def main() -> None:
    for model in (DLRM2, DLRM4):
        provision(model)
        validate_with_simulation(model)


if __name__ == "__main__":
    main()
