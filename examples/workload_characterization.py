"""Workload characterization of CPU-only recommendation inference (Section III).

Reproduces, on the analytic CPU model, the three characterization studies
that motivate Centaur:

* Figure 5 — where does the time go (embedding vs MLP vs other)?
* Figure 6 — how do the embedding and MLP layers behave in the LLC?
* Figure 7 — what effective memory throughput do embedding gathers achieve?

It also demonstrates the *mechanism* with the trace-driven cache simulator:
random gathers over a table much larger than the LLC defeat caching, while
the same number of gathers over a small table do not.

Run with:  python examples/workload_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    render_figure5,
    render_figure6,
    render_figure7,
)
from repro.config import DLRM1, DLRM4, DLRM6, HARPV2_SYSTEM
from repro.memsys import SetAssociativeCache

MODELS = (DLRM1, DLRM4, DLRM6)
BATCHES = (1, 16, 128)


def analytic_characterization() -> None:
    print("=" * 72)
    print("1. Analytic characterization of the Table I models (Figures 5-7)")
    print("=" * 72)
    print(render_figure5(figure5_latency_breakdown(HARPV2_SYSTEM, MODELS, BATCHES)))
    print()
    print(render_figure6(figure6_cache_behaviour(HARPV2_SYSTEM, MODELS, BATCHES)))
    print()
    print(render_figure7(figure7_effective_throughput(HARPV2_SYSTEM, MODELS, BATCHES)))


def trace_driven_cache_demo() -> None:
    """Show *why* embedding gathers miss: table footprint vs LLC capacity."""
    print()
    print("=" * 72)
    print("2. Trace-driven LLC simulation: gathers vs table footprint")
    print("=" * 72)
    rng = np.random.default_rng(0)
    llc_bytes = 8 * 1024 * 1024  # a scaled-down LLC slice for a fast demo
    lookups = 50_000
    print(f"simulated LLC capacity: {llc_bytes // (1024 * 1024)} MiB, "
          f"{lookups} random 128-byte gathers per table\n")
    print(f"{'table footprint':>18} | {'LLC miss rate':>13}")
    print("-" * 36)
    for table_mib in (1, 4, 16, 64, 256):
        table_bytes = table_mib * 1024 * 1024
        cache = SetAssociativeCache(capacity_bytes=llc_bytes, line_bytes=64, ways=16)
        lines = rng.integers(0, table_bytes // 64, size=lookups)
        cache.access_many(lines[: lookups // 2])          # warm up
        stats = cache.access_many(lines[lookups // 2 :])  # measure
        print(f"{table_mib:>14} MiB | {stats.miss_rate * 100:>11.1f} %")
    print(
        "\nOnce the table footprint exceeds the LLC, random gathers miss almost"
        "\nevery time - the behaviour the analytic model extrapolates to the"
        "\npaper's 128 MB - 3.2 GB tables."
    )


def main() -> None:
    analytic_characterization()
    trace_driven_cache_demo()


if __name__ == "__main__":
    main()
