"""Closed-form cache/traffic models for full-scale Table I configurations.

The trace-driven simulator in :mod:`repro.memsys.cache` cannot replay a
3.2 GB table's access stream in reasonable time, so the benchmark harness
uses these analytic profiles instead.  They model the same three quantities
the paper characterizes in Figures 6 and 7:

* LLC accesses / misses (miss rate) of the embedding and MLP layers,
* misses per kilo-instruction (MPKI),
* useful bytes versus transferred bytes (for effective memory throughput).

The models treat gathered embedding lines as uniformly random over the
table (the paper's low-locality assumption), account for intra-batch reuse
of rows, and treat every other access class (indices, partial sums, MLP
activations, framework bookkeeping) as mostly cache-resident.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.models import DLRMConfig
from repro.config.system import CPUConfig
from repro.errors import SimulationError
from repro.memsys.address import cache_lines_for_vector
from repro.memsys.stats import CacheStats, MemoryTrafficStats


def memory_level_parallelism_bandwidth(
    outstanding_lines: float, line_bytes: float, average_latency_s: float
) -> float:
    """Little's-law bandwidth bound: ``P * line / latency``."""
    if outstanding_lines <= 0 or line_bytes <= 0 or average_latency_s <= 0:
        raise SimulationError(
            "outstanding_lines, line_bytes and average_latency_s must be positive"
        )
    return outstanding_lines * line_bytes / average_latency_s


def expected_unique_fraction(population: int, draws: int) -> float:
    """Expected fraction of draws that touch a not-yet-seen item.

    For ``draws`` uniform draws over ``population`` items, the expected number
    of distinct items is ``population * (1 - (1 - 1/population)**draws)``;
    dividing by ``draws`` gives the fraction of draws that are "first
    touches".  Embedding gathers within one batch reuse a row only when the
    same row ID is drawn twice, so this factor scales the miss count.
    """
    if population <= 0:
        raise SimulationError(f"population must be positive, got {population}")
    if draws <= 0:
        return 1.0
    if population == 1:
        # Only one distinct item exists, so exactly one draw is a first touch.
        return min(1.0, 1.0 / draws)
    distinct = population * (1.0 - math.exp(draws * math.log1p(-1.0 / population)))
    return min(1.0, distinct / draws)


@dataclass(frozen=True)
class AnalyticCacheModel:
    """Miss-probability model for one last-level cache.

    Attributes:
        llc_bytes: LLC capacity.
        line_bytes: Cache line size.
        usable_fraction: Fraction of the LLC effectively available to
            embedding rows (the rest holds code, indices, MLP weights and
            other data structures).
    """

    llc_bytes: int
    line_bytes: int = 64
    usable_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.llc_bytes <= 0:
            raise SimulationError(f"llc_bytes must be positive, got {self.llc_bytes}")
        if self.line_bytes <= 0:
            raise SimulationError(f"line_bytes must be positive, got {self.line_bytes}")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise SimulationError(
                f"usable_fraction must be in (0, 1], got {self.usable_fraction}"
            )

    def resident_probability(self, footprint_bytes: int) -> float:
        """Probability a random line of a data structure is LLC-resident.

        For structures smaller than the usable LLC the probability is 1 (the
        structure stays resident once warm); for larger structures it is the
        capacity ratio.
        """
        if footprint_bytes <= 0:
            return 1.0
        usable = self.llc_bytes * self.usable_fraction
        return min(1.0, usable / footprint_bytes)

    def gather_miss_probability(self, table_bytes: int) -> float:
        """Miss probability of one random embedding-line access."""
        return 1.0 - self.resident_probability(table_bytes)


@dataclass(frozen=True)
class EmbeddingAccessProfile:
    """LLC/instruction profile of the sparse embedding layer on the CPU.

    Calibration constants (defaults tuned against the paper's Figure 6):

    Attributes:
        other_accesses_per_lookup: LLC accesses per lookup from indices,
            offsets and partial-sum writebacks.
        other_miss_rate: Miss rate of those mostly-resident access classes.
        fixed_llc_accesses: LLC accesses per inference from framework code
            and operator dispatch, independent of batch size.
        fixed_instructions: Retired instructions per inference from the
            framework, independent of batch size.
        instructions_per_lookup: Retired instructions per embedding lookup,
            including the vectorized reduction and the PyTorch/Caffe2
            operator overhead.
    """

    cpu: CPUConfig
    other_accesses_per_lookup: float = 2.0
    other_miss_rate: float = 0.03
    fixed_llc_accesses: float = 20_000.0
    fixed_instructions: float = 2.0e6
    instructions_per_lookup: float = 300.0

    def compute(self, model: DLRMConfig, batch_size: int) -> MemoryTrafficStats:
        """Profile the embedding layer of ``model`` for one batch."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        cache = AnalyticCacheModel(
            llc_bytes=self.cpu.llc_bytes, line_bytes=self.cpu.cache_line_bytes
        )
        lines_per_vector = cache_lines_for_vector(
            model.embedding_dim * 4, self.cpu.cache_line_bytes
        )
        total_lookups = model.total_gathers_per_sample * batch_size

        # Gathered lines compete for the LLC with *all* tables of the model:
        # what matters for the residence probability is the aggregate
        # embedding footprint (128 MB - 3.2 GB for Table I), not the size of
        # one table.
        aggregate_miss_prob = cache.gather_miss_probability(model.embedding_table_bytes)
        gather_accesses = 0.0
        gather_misses = 0.0
        useful_bytes = 0.0
        for table in model.tables:
            lookups = table.gathers * batch_size
            lines = lookups * lines_per_vector
            unique_fraction = expected_unique_fraction(table.num_rows, lookups)
            gather_accesses += lines
            gather_misses += lines * unique_fraction * aggregate_miss_prob
            useful_bytes += lookups * table.row_bytes

        other_accesses = (
            self.fixed_llc_accesses + self.other_accesses_per_lookup * total_lookups
        )
        other_misses = other_accesses * self.other_miss_rate

        accesses = gather_accesses + other_accesses
        misses = gather_misses + other_misses
        instructions = (
            self.fixed_instructions + self.instructions_per_lookup * total_lookups
        )
        accesses_int = int(round(accesses))
        misses_int = min(int(round(misses)), accesses_int)
        llc = CacheStats(
            accesses=accesses_int,
            hits=accesses_int - misses_int,
            misses=misses_int,
        )
        transferred = misses * self.cpu.cache_line_bytes + useful_bytes * 0.0
        return MemoryTrafficStats(
            useful_bytes=useful_bytes,
            transferred_bytes=transferred,
            llc=llc,
            instructions=instructions,
        )


@dataclass(frozen=True)
class MLPAccessProfile:
    """LLC/instruction profile of the dense MLP + interaction layers on the CPU.

    MLP weights for every Table I model fit comfortably in the tens-of-MB
    LLC, so the layer is compute-bound: the paper reports <20% LLC miss
    rates and sub-1 MPKI, which these defaults reproduce.
    """

    cpu: CPUConfig
    weight_refetch_miss_rate: float = 0.12
    activation_miss_rate: float = 0.02
    activation_lines_per_sample: float = 200.0
    fixed_llc_accesses: float = 6_000.0
    fixed_instructions: float = 5.0e5

    def compute(self, model: DLRMConfig, batch_size: int) -> MemoryTrafficStats:
        """Profile the dense layers of ``model`` for one batch."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        line_bytes = self.cpu.cache_line_bytes
        weight_lines = model.mlp_parameter_bytes / line_bytes
        # Weights stream out of the LLC once per batch tile; activations are
        # produced and consumed within the private caches most of the time.
        weight_accesses = weight_lines * max(1.0, math.sqrt(batch_size))
        activation_accesses = self.activation_lines_per_sample * batch_size
        accesses = weight_accesses + activation_accesses + self.fixed_llc_accesses
        misses = (
            weight_accesses * self.weight_refetch_miss_rate
            + activation_accesses * self.activation_miss_rate
            + self.fixed_llc_accesses * 0.05
        )
        flops = model.total_dense_flops_per_sample() * batch_size
        instructions = self.fixed_instructions + flops * self.cpu.instructions_per_flop
        accesses_int = int(round(accesses))
        misses_int = min(int(round(misses)), accesses_int)
        llc = CacheStats(
            accesses=accesses_int,
            hits=accesses_int - misses_int,
            misses=misses_int,
        )
        return MemoryTrafficStats(
            useful_bytes=float(model.mlp_parameter_bytes),
            transferred_bytes=misses * line_bytes,
            llc=llc,
            instructions=instructions,
        )
