"""A small multi-level cache hierarchy driven by line-address streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.stats import CacheStats


@dataclass(frozen=True)
class HierarchyAccessResult:
    """Outcome of one access as it traverses the hierarchy.

    Attributes:
        hit_level: Index of the level that hit (0 = L1), or ``None`` when the
            access missed every level and was served by memory.
    """

    hit_level: "int | None"

    @property
    def served_by_memory(self) -> bool:
        return self.hit_level is None


class CacheHierarchy:
    """An inclusive, demand-fill cache hierarchy (L1 -> L2 -> ... -> LLC).

    Accesses probe each level in order; on a miss in every level the line is
    installed everywhere (mimicking an inclusive hierarchy, which is what the
    paper's Broadwell Xeon implements for L1/L2 relative to its LLC closely
    enough for miss-rate characterization).
    """

    def __init__(self, levels: Sequence[SetAssociativeCache]):
        if not levels:
            raise ConfigurationError("a cache hierarchy needs at least one level")
        capacities = [level.capacity_bytes for level in levels]
        if capacities != sorted(capacities):
            raise ConfigurationError(
                f"cache levels must be ordered smallest to largest, got {capacities}"
            )
        self.levels: List[SetAssociativeCache] = list(levels)

    @classmethod
    def broadwell_like(
        cls,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 256 * 1024,
        llc_bytes: int = 35 * 1024 * 1024 // 16,
        line_bytes: int = 64,
        llc_ways: int = 20,
    ) -> "CacheHierarchy":
        """A single-core slice of the Broadwell hierarchy.

        The default LLC size is one core's proportional share of the 35 MB
        socket LLC, which is the appropriate scale when replaying a
        single-thread access stream.
        """
        l1 = SetAssociativeCache(l1_bytes, line_bytes, ways=8, name="L1")
        l2 = SetAssociativeCache(l2_bytes, line_bytes, ways=8, name="L2")
        # Round the LLC share down to a multiple of line * ways.
        granule = line_bytes * llc_ways
        llc_capacity = max(granule, (llc_bytes // granule) * granule)
        llc = SetAssociativeCache(llc_capacity, line_bytes, ways=llc_ways, name="LLC")
        return cls([l1, l2, llc])

    # ------------------------------------------------------------------
    @property
    def llc(self) -> SetAssociativeCache:
        """The last-level cache."""
        return self.levels[-1]

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    def access(self, line_address: int) -> HierarchyAccessResult:
        """Access one line; fill all levels above (and including) the hit level."""
        hit_level: "int | None" = None
        for index, level in enumerate(self.levels):
            if level.access(line_address):
                hit_level = index
                break
        if hit_level is None:
            return HierarchyAccessResult(hit_level=None)
        # Lines are installed in upper levels by SetAssociativeCache.access on
        # the miss path already (each probed level installs on miss), so no
        # extra work is needed here.
        return HierarchyAccessResult(hit_level=hit_level)

    def access_many(self, line_addresses: Iterable[int]) -> List[HierarchyAccessResult]:
        """Access a stream of lines, returning per-access results."""
        return [self.access(int(line_address)) for line_address in line_addresses]

    def llc_stats(self) -> CacheStats:
        """Aggregate LLC statistics accumulated so far."""
        return self.llc.stats
