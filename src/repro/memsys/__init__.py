"""Memory-system substrate: caches, MSHRs, DRAM and analytic equivalents.

The CPU-side characterization of the paper (Figures 6 and 7) hinges on how
the cache hierarchy and the DRAM subsystem respond to sparse, low-locality
embedding gathers versus dense, cache-resident MLP weights.  This package
provides both a trace-driven simulator (faithful but slow; used by tests and
small experiments) and closed-form analytic models (used by the benchmark
harness across full Table I configurations).
"""

from repro.memsys.address import AddressMapper, cache_lines_for_vector
from repro.memsys.cache import ReplacementPolicy, SetAssociativeCache
from repro.memsys.hierarchy import CacheHierarchy, HierarchyAccessResult
from repro.memsys.mshr import MSHRFile
from repro.memsys.dram import DRAMModel, DRAMRequestStats
from repro.memsys.stats import CacheStats, MemoryTrafficStats
from repro.memsys.analytic import (
    AnalyticCacheModel,
    EmbeddingAccessProfile,
    MLPAccessProfile,
    memory_level_parallelism_bandwidth,
)

__all__ = [
    "AddressMapper",
    "cache_lines_for_vector",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyAccessResult",
    "MSHRFile",
    "DRAMModel",
    "DRAMRequestStats",
    "CacheStats",
    "MemoryTrafficStats",
    "AnalyticCacheModel",
    "EmbeddingAccessProfile",
    "MLPAccessProfile",
    "memory_level_parallelism_bandwidth",
]
