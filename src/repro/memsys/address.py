"""Address mapping helpers shared by the cache and DRAM models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressMapper:
    """Decomposes byte addresses into cache-line and DRAM coordinates.

    Attributes:
        line_bytes: Cache line size.
        row_buffer_bytes: DRAM row-buffer (page) size per bank.
        num_channels: Memory channels; lines are interleaved across channels.
        banks_per_channel: Banks per channel; rows are interleaved across banks.
    """

    line_bytes: int = 64
    row_buffer_bytes: int = 8192
    num_channels: int = 4
    banks_per_channel: int = 16

    def __post_init__(self) -> None:
        for name in ("line_bytes", "row_buffer_bytes", "num_channels", "banks_per_channel"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if not _is_power_of_two(self.line_bytes):
            raise ConfigurationError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if not _is_power_of_two(self.row_buffer_bytes):
            raise ConfigurationError(
                f"row_buffer_bytes must be a power of two, got {self.row_buffer_bytes}"
            )
        if self.row_buffer_bytes < self.line_bytes:
            raise ConfigurationError("row buffer must be at least one cache line")

    def line_address(self, byte_address: "int | np.ndarray") -> "int | np.ndarray":
        """Cache-line index of a byte address."""
        return byte_address // self.line_bytes

    def line_span(self, byte_address: int, num_bytes: int) -> np.ndarray:
        """All line addresses touched by ``[byte_address, byte_address + num_bytes)``."""
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = byte_address // self.line_bytes
        last = (byte_address + num_bytes - 1) // self.line_bytes
        return np.arange(first, last + 1, dtype=np.int64)

    def channel_of_line(self, line_address: "int | np.ndarray") -> "int | np.ndarray":
        """Channel servicing a line (line-interleaved mapping)."""
        return line_address % self.num_channels

    def dram_row(self, byte_address: "int | np.ndarray") -> "int | np.ndarray":
        """DRAM row (page) index of a byte address."""
        return byte_address // self.row_buffer_bytes

    def bank_of_row(self, row_index: "int | np.ndarray") -> "int | np.ndarray":
        """Bank servicing a row (row-interleaved across all banks)."""
        total_banks = self.num_channels * self.banks_per_channel
        return row_index % total_banks


def cache_lines_for_vector(vector_bytes: int, line_bytes: int = 64) -> int:
    """Number of cache lines one embedding vector occupies (ceil division).

    The paper's default embedding (32 fp32 values = 128 bytes) spans two
    64-byte lines, which is why every gather costs two line transfers.
    """
    if vector_bytes <= 0:
        raise ConfigurationError(f"vector_bytes must be positive, got {vector_bytes}")
    if line_bytes <= 0:
        raise ConfigurationError(f"line_bytes must be positive, got {line_bytes}")
    return -(-vector_bytes // line_bytes)
