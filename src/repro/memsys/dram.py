"""DRAM service-time model.

The model answers one question for the performance models: *given a burst of
cache-line requests with a certain amount of memory-level parallelism and a
certain row-buffer locality, how long does the DRAM subsystem take to return
them?*  It combines:

* a bandwidth bound — lines cannot stream faster than the channel peak,
* a latency/parallelism bound — with ``P`` requests in flight and an average
  access latency ``L``, throughput is at most ``P * line_bytes / L``
  (Little's law), which is what starves latency-bound CPU gathers,
* a row-buffer term — row hits are serviced at column-access latency, row
  misses pay the full activate+precharge latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.system import MemoryConfig
from repro.errors import SimulationError
from repro.memsys.address import AddressMapper


@dataclass(frozen=True)
class DRAMRequestStats:
    """Outcome of servicing one burst of line requests."""

    num_lines: int
    transferred_bytes: int
    service_time_s: float
    achieved_bandwidth: float
    row_hit_rate: float
    bandwidth_bound_s: float
    parallelism_bound_s: float

    @property
    def latency_limited(self) -> bool:
        """True when memory-level parallelism (not channel bandwidth) limited the burst."""
        return self.parallelism_bound_s > self.bandwidth_bound_s


class DRAMModel:
    """Analytic DRAM timing model parameterized by :class:`MemoryConfig`."""

    def __init__(self, config: MemoryConfig, line_bytes: int = 64):
        self.config = config
        self.line_bytes = line_bytes
        self.mapper = AddressMapper(
            line_bytes=line_bytes,
            row_buffer_bytes=config.row_buffer_bytes,
            num_channels=config.num_channels,
            banks_per_channel=config.banks_per_channel,
        )

    # ------------------------------------------------------------------
    def average_latency(self, row_hit_rate: float) -> float:
        """Average access latency for a given row-buffer hit rate.

        Row hits are serviced at roughly half the idle latency (no
        activate/precharge); misses pay the loaded latency.
        """
        if not 0.0 <= row_hit_rate <= 1.0:
            raise SimulationError(f"row_hit_rate must be in [0, 1], got {row_hit_rate}")
        hit_latency = 0.5 * self.config.idle_latency_s
        miss_latency = self.config.loaded_latency_s
        return row_hit_rate * hit_latency + (1.0 - row_hit_rate) * miss_latency

    def parallelism_limited_bandwidth(
        self, outstanding_lines: float, row_hit_rate: float = 0.0
    ) -> float:
        """Bandwidth achievable with a given number of requests in flight."""
        if outstanding_lines <= 0:
            raise SimulationError(
                f"outstanding_lines must be positive, got {outstanding_lines}"
            )
        latency = self.average_latency(row_hit_rate)
        return min(
            self.config.peak_bandwidth,
            outstanding_lines * self.line_bytes / latency,
        )

    # ------------------------------------------------------------------
    def service_burst(
        self,
        num_lines: int,
        outstanding_lines: float,
        row_hit_rate: float = 0.0,
    ) -> DRAMRequestStats:
        """Service ``num_lines`` line requests with bounded parallelism.

        Args:
            num_lines: Number of cache-line requests in the burst.
            outstanding_lines: Average memory-level parallelism sustained by
                the requester (e.g. ``threads * MSHRs`` for the CPU).
            row_hit_rate: Fraction of requests hitting an open DRAM row.
        """
        if num_lines < 0:
            raise SimulationError(f"num_lines must be non-negative, got {num_lines}")
        transferred = num_lines * self.line_bytes
        if num_lines == 0:
            return DRAMRequestStats(
                num_lines=0,
                transferred_bytes=0,
                service_time_s=0.0,
                achieved_bandwidth=0.0,
                row_hit_rate=row_hit_rate,
                bandwidth_bound_s=0.0,
                parallelism_bound_s=0.0,
            )
        bandwidth_bound = transferred / self.config.peak_bandwidth
        effective_bw = self.parallelism_limited_bandwidth(outstanding_lines, row_hit_rate)
        parallelism_bound = transferred / effective_bw
        service_time = max(bandwidth_bound, parallelism_bound)
        return DRAMRequestStats(
            num_lines=num_lines,
            transferred_bytes=transferred,
            service_time_s=service_time,
            achieved_bandwidth=transferred / service_time,
            row_hit_rate=row_hit_rate,
            bandwidth_bound_s=bandwidth_bound,
            parallelism_bound_s=parallelism_bound,
        )

    # ------------------------------------------------------------------
    def row_hit_rate_for_gathers(
        self, vector_bytes: int, table_bytes: int
    ) -> float:
        """Row-buffer hit rate of random embedding-vector gathers.

        A gathered vector of ``vector_bytes`` occupies consecutive bytes, so
        after the first line of a vector opens a row, the remaining lines of
        the *same* vector hit it; consecutive vectors land on random rows of
        a table much larger than a row buffer, so inter-vector locality is
        negligible.  This is the "128 bytes out of an 8 KB row buffer"
        observation of Section III-C.
        """
        if vector_bytes <= 0 or table_bytes <= 0:
            raise SimulationError("vector_bytes and table_bytes must be positive")
        lines_per_vector = max(1, -(-vector_bytes // self.line_bytes))
        if table_bytes <= self.config.row_buffer_bytes:
            # Tiny tables live in a handful of rows; almost everything hits.
            return 1.0 - 1.0 / max(1, lines_per_vector)
        return (lines_per_vector - 1) / lines_per_vector

    def estimate_row_hit_rate(self, line_addresses: np.ndarray) -> float:
        """Empirical per-bank row-buffer hit rate of an address stream."""
        line_addresses = np.asarray(line_addresses, dtype=np.int64)
        if line_addresses.size == 0:
            return 0.0
        byte_addresses = line_addresses * self.line_bytes
        rows = self.mapper.dram_row(byte_addresses)
        banks = self.mapper.bank_of_row(rows)
        hits = 0
        open_rows: dict = {}
        for row, bank in zip(rows.tolist(), banks.tolist()):
            if open_rows.get(bank) == row:
                hits += 1
            open_rows[bank] = row
        return hits / len(rows)
