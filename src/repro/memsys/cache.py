"""Trace-driven set-associative cache model.

Used to validate the analytic LLC models of :mod:`repro.memsys.analytic`
against an actual reference stream, and by the examples that want to show
*why* embedding gathers defeat CPU caching (huge tables, random rows).

The simulator operates on cache-line addresses (not bytes) and supports LRU
and FIFO replacement.  It is deliberately simple — no coherence, no
write-back modelling — because the paper's characterization only needs
hit/miss behaviour of read streams.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.memsys.stats import CacheStats


class ReplacementPolicy(str, Enum):
    """Replacement policies supported by :class:`SetAssociativeCache`."""

    LRU = "lru"
    FIFO = "fifo"


class SetAssociativeCache:
    """A set-associative cache simulated at cache-line granularity.

    Args:
        capacity_bytes: Total data capacity.
        line_bytes: Cache line size.
        ways: Associativity; ``capacity / (line * ways)`` must be an integer
            number of sets.
        policy: Replacement policy.
        name: Optional label used in reporting.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        name: str = "cache",
    ):
        if capacity_bytes <= 0:
            raise ConfigurationError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if line_bytes <= 0:
            raise ConfigurationError(f"line_bytes must be positive, got {line_bytes}")
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        num_lines = capacity_bytes // line_bytes
        if num_lines == 0 or capacity_bytes % line_bytes != 0:
            raise ConfigurationError(
                f"capacity ({capacity_bytes}) must be a positive multiple of the line size "
                f"({line_bytes})"
            )
        if num_lines % ways != 0:
            raise ConfigurationError(
                f"number of lines ({num_lines}) must be divisible by associativity ({ways})"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.policy = ReplacementPolicy(policy)
        self.stats = CacheStats()
        # tags[set, way] holds the line address or -1 for an invalid way;
        # stamps[set, way] holds the recency (LRU) or insertion (FIFO) counter.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._stamps = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate every line and clear statistics."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def set_index(self, line_address: int) -> int:
        """Set servicing a line address."""
        return int(line_address) % self.num_sets

    def contains(self, line_address: int) -> bool:
        """Whether a line currently resides in the cache (no stats update)."""
        set_index = self.set_index(line_address)
        return bool(np.any(self._tags[set_index] == line_address))

    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return int(np.count_nonzero(self._tags >= 0))

    # ------------------------------------------------------------------
    def access(self, line_address: int) -> bool:
        """Access one line; returns ``True`` on hit, installing the line on miss."""
        line_address = int(line_address)
        self._clock += 1
        set_index = line_address % self.num_sets
        tags = self._tags[set_index]
        match = np.nonzero(tags == line_address)[0]
        if match.size:
            way = int(match[0])
            if self.policy is ReplacementPolicy.LRU:
                self._stamps[set_index, way] = self._clock
            self.stats.record(hit=True)
            return True
        # Miss: fill an invalid way if one exists, otherwise evict the
        # oldest-stamped way.
        invalid = np.nonzero(tags == -1)[0]
        if invalid.size:
            way = int(invalid[0])
        else:
            way = int(np.argmin(self._stamps[set_index]))
        self._tags[set_index, way] = line_address
        self._stamps[set_index, way] = self._clock
        self.stats.record(hit=False)
        return False

    def access_many(self, line_addresses: Iterable[int]) -> CacheStats:
        """Access a stream of lines, returning the stats for just this stream."""
        before = CacheStats(
            accesses=self.stats.accesses, hits=self.stats.hits, misses=self.stats.misses
        )
        for line_address in np.asarray(list(line_addresses), dtype=np.int64):
            self.access(int(line_address))
        return CacheStats(
            accesses=self.stats.accesses - before.accesses,
            hits=self.stats.hits - before.hits,
            misses=self.stats.misses - before.misses,
        )

    def warm(self, line_addresses: Iterable[int]) -> None:
        """Install lines without recording statistics (cache warm-up)."""
        saved = self.stats
        self.stats = CacheStats()
        for line_address in line_addresses:
            self.access(int(line_address))
        self.stats = saved

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"ways={self.ways}, sets={self.num_sets}, policy={self.policy.value})"
        )
