"""Statistics containers shared by the cache/DRAM simulators and analytic models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats_utils import safe_divide


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or one modelled access class)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    def record(self, hit: bool) -> None:
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two counters."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
        )

    @property
    def hit_rate(self) -> float:
        return safe_divide(self.hits, self.accesses)

    @property
    def miss_rate(self) -> float:
        return safe_divide(self.misses, self.accesses)

    def validate(self) -> None:
        """Raise if the counters are inconsistent."""
        if self.hits + self.misses != self.accesses:
            raise ValueError(
                f"inconsistent cache stats: hits({self.hits}) + misses({self.misses}) "
                f"!= accesses({self.accesses})"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-compatible)."""
        return {"accesses": self.accesses, "hits": self.hits, "misses": self.misses}

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheStats":
        """Inverse of :meth:`to_dict`; raises ``KeyError`` on missing fields."""
        return cls(
            accesses=int(payload["accesses"]),
            hits=int(payload["hits"]),
            misses=int(payload["misses"]),
        )


@dataclass
class MemoryTrafficStats:
    """Byte-level traffic accounting for one execution phase.

    Attributes:
        useful_bytes: Bytes the algorithm actually needed (e.g. gathered
            embedding vectors) — the numerator of the paper's "effective
            memory throughput".
        transferred_bytes: Bytes moved over the memory interface (line
            granularity, so typically larger than ``useful_bytes``).
        llc: LLC-level hit/miss counters for this phase.
        instructions: Retired-instruction estimate for the phase (drives MPKI).
    """

    useful_bytes: float = 0.0
    transferred_bytes: float = 0.0
    llc: CacheStats = field(default_factory=CacheStats)
    instructions: float = 0.0

    @property
    def mpki(self) -> float:
        """LLC misses per thousand instructions."""
        return safe_divide(self.llc.misses * 1000.0, self.instructions)

    def effective_throughput(self, elapsed_seconds: float) -> float:
        """Useful bytes per second over an elapsed time."""
        return safe_divide(self.useful_bytes, elapsed_seconds)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-compatible)."""
        return {
            "useful_bytes": self.useful_bytes,
            "transferred_bytes": self.transferred_bytes,
            "llc": self.llc.to_dict(),
            "instructions": self.instructions,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MemoryTrafficStats":
        """Inverse of :meth:`to_dict`; raises ``KeyError`` on missing fields."""
        return cls(
            useful_bytes=float(payload["useful_bytes"]),
            transferred_bytes=float(payload["transferred_bytes"]),
            llc=CacheStats.from_dict(payload["llc"]),
            instructions=float(payload["instructions"]),
        )
