"""Miss status holding register (MSHR) file model.

MSHRs bound how many cache misses a core can keep in flight, and therefore
how much memory-level parallelism (and thus DRAM bandwidth) a latency-bound
gather loop can extract.  The paper identifies the CPU's small MSHR count
(versus a GPU's streaming caches) as the root cause of the low effective
memory throughput of embedding layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CapacityError, ConfigurationError


@dataclass
class _MSHREntry:
    line_address: int
    issue_time: float
    merged_requests: int = 1


@dataclass
class MSHRFile:
    """A fixed-capacity file of outstanding misses with request merging.

    Secondary misses to a line that already has an outstanding entry are
    merged (they do not consume a new entry), exactly as a real MSHR file
    behaves; this matters for embedding vectors that span two cache lines.
    """

    capacity: int
    _entries: Dict[int, _MSHREntry] = field(default_factory=dict, init=False)
    allocations: int = field(default=0, init=False)
    merges: int = field(default=0, init=False)
    stalls: int = field(default=0, init=False)
    peak_occupancy: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"MSHR capacity must be positive, got {self.capacity}")

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding_lines(self) -> List[int]:
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    def try_allocate(self, line_address: int, issue_time: float = 0.0) -> bool:
        """Attempt to track a miss for ``line_address``.

        Returns ``True`` if the miss is tracked (new entry or merged into an
        existing one) and ``False`` if the file is full, in which case the
        caller must stall; a stall is recorded.
        """
        entry = self._entries.get(line_address)
        if entry is not None:
            entry.merged_requests += 1
            self.merges += 1
            return True
        if self.is_full:
            self.stalls += 1
            return False
        self._entries[line_address] = _MSHREntry(line_address, issue_time)
        self.allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return True

    def allocate(self, line_address: int, issue_time: float = 0.0) -> None:
        """Track a miss, raising :class:`CapacityError` when the file is full."""
        if not self.try_allocate(line_address, issue_time):
            raise CapacityError(
                f"MSHR file (capacity {self.capacity}) is full; cannot track line "
                f"{line_address}"
            )

    def release(self, line_address: int) -> int:
        """Retire the entry for a line (data returned); returns merged count."""
        entry = self._entries.pop(line_address, None)
        if entry is None:
            raise CapacityError(f"no outstanding MSHR entry for line {line_address}")
        return entry.merged_requests

    def oldest(self) -> Optional[int]:
        """Line address of the oldest outstanding entry (or ``None`` if empty)."""
        if not self._entries:
            return None
        return min(self._entries.values(), key=lambda entry: entry.issue_time).line_address

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self.allocations = 0
        self.merges = 0
        self.stalls = 0
        self.peak_occupancy = 0
