"""A from-scratch, numpy-based implementation of the DLRM recommendation model.

This package provides the *functional* substrate of the reproduction: real
embedding tables, the ``SparseLengthsSum`` gather/reduce operator (Fig. 2 of
the paper), bottom/top MLPs, the dot-product feature-interaction stage
(Fig. 3) and the end-to-end :class:`~repro.dlrm.model.DLRM` forward pass.

The performance models in :mod:`repro.cpu`, :mod:`repro.gpu` and
:mod:`repro.core` consume the *shapes* of these computations (via
:class:`~repro.config.models.DLRMConfig` and the trace generators here),
while tests and examples exercise the numerics end to end.
"""

from repro.dlrm.embedding import (
    DenseEmbeddingTable,
    VirtualEmbeddingTable,
    EmbeddingBagCollection,
    sparse_lengths_sum,
)
from repro.dlrm.mlp import LinearLayer, MLP, relu, sigmoid
from repro.dlrm.interaction import dot_feature_interaction
from repro.dlrm.model import DLRM, DLRMOutput
from repro.workloads.traces import (
    DLRMBatch,
    SparseTrace,
    TraceGenerator,
    UniformTraceGenerator,
    ZipfianTraceGenerator,
)

__all__ = [
    "DenseEmbeddingTable",
    "VirtualEmbeddingTable",
    "EmbeddingBagCollection",
    "sparse_lengths_sum",
    "LinearLayer",
    "MLP",
    "relu",
    "sigmoid",
    "dot_feature_interaction",
    "DLRM",
    "DLRMOutput",
    "DLRMBatch",
    "SparseTrace",
    "TraceGenerator",
    "UniformTraceGenerator",
    "ZipfianTraceGenerator",
]
