"""End-to-end DLRM model: embeddings -> bottom MLP -> interaction -> top MLP.

This is the functional counterpart of the paper's Fig. 1.  The forward pass
returns both the final event probabilities and every intermediate tensor so
that the hardware models (and tests) can check, stage by stage, that their
partitioning of the computation is numerically equivalent to running the
whole model in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.models import DLRMConfig
from repro.dlrm.embedding import EmbeddingBagCollection
from repro.dlrm.interaction import dot_feature_interaction
from repro.dlrm.mlp import MLP, sigmoid
from repro.workloads.traces import DLRMBatch
from repro.errors import ModelShapeError


@dataclass(frozen=True)
class DLRMOutput:
    """All tensors produced by one DLRM forward pass.

    Attributes:
        probabilities: ``[batch]`` event probabilities (sigmoid output).
        logits: ``[batch]`` pre-sigmoid scores.
        reduced_embeddings: ``[batch, num_tables, dim]`` per-table reductions.
        bottom_mlp_output: ``[batch, dim]`` dense-feature projection.
        interaction_output: ``[batch, interaction_dim]`` top-MLP input.
    """

    probabilities: np.ndarray
    logits: np.ndarray
    reduced_embeddings: np.ndarray
    bottom_mlp_output: np.ndarray
    interaction_output: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.probabilities.shape[0])


class DLRM:
    """A complete DLRM inference model with concrete weights.

    Build one with :meth:`from_config` (random weights, virtual or dense
    embedding storage) or assemble the pieces manually for tests.
    """

    def __init__(
        self,
        config: DLRMConfig,
        embeddings: EmbeddingBagCollection,
        bottom_mlp: MLP,
        top_mlp: MLP,
    ):
        if embeddings.num_tables != config.num_tables:
            raise ModelShapeError(
                f"config declares {config.num_tables} tables but the collection has "
                f"{embeddings.num_tables}"
            )
        if embeddings.embedding_dim != config.embedding_dim:
            raise ModelShapeError(
                f"config embedding dim {config.embedding_dim} does not match table dim "
                f"{embeddings.embedding_dim}"
            )
        if bottom_mlp.in_dim != config.num_dense_features:
            raise ModelShapeError(
                f"bottom MLP expects {bottom_mlp.in_dim} dense features, config has "
                f"{config.num_dense_features}"
            )
        if bottom_mlp.out_dim != config.embedding_dim:
            raise ModelShapeError(
                "bottom MLP output dim must equal the embedding dim "
                f"({bottom_mlp.out_dim} != {config.embedding_dim})"
            )
        if top_mlp.in_dim != config.interaction_output_dim:
            raise ModelShapeError(
                "top MLP input dim must equal the interaction output dim "
                f"({top_mlp.in_dim} != {config.interaction_output_dim})"
            )
        self.config = config
        self.embeddings = embeddings
        self.bottom_mlp = bottom_mlp
        self.top_mlp = top_mlp

    @classmethod
    def from_config(
        cls,
        config: DLRMConfig,
        seed: int = 0,
        storage: str = "virtual",
    ) -> "DLRM":
        """Instantiate the model with deterministic random weights.

        Args:
            config: The model architecture.
            seed: Seed for all weight initialization.
            storage: Embedding storage strategy, ``"virtual"`` (default,
                memory-frugal) or ``"dense"``.
        """
        rng = np.random.default_rng(seed)
        embeddings = EmbeddingBagCollection.from_configs(
            config.tables, storage=storage, seed=seed, rng=rng
        )
        bottom = MLP.from_config(config.bottom_mlp, rng=rng)
        top = MLP.from_config(config.top_mlp, rng=rng)
        return cls(config=config, embeddings=embeddings, bottom_mlp=bottom, top_mlp=top)

    def forward(self, batch: DLRMBatch) -> DLRMOutput:
        """Run one inference batch through the full model."""
        if batch.num_tables != self.config.num_tables:
            raise ModelShapeError(
                f"batch provides {batch.num_tables} sparse traces but the model has "
                f"{self.config.num_tables} tables"
            )
        if batch.dense_features.shape[1] != self.config.num_dense_features:
            raise ModelShapeError(
                f"batch provides {batch.dense_features.shape[1]} dense features but the "
                f"model expects {self.config.num_dense_features}"
            )
        reduced = self.embeddings.forward(batch.sparse_traces)
        bottom_out = self.bottom_mlp.forward(batch.dense_features)
        interaction = dot_feature_interaction(bottom_out, reduced)
        logits = self.top_mlp.forward(interaction)[:, 0]
        probabilities = sigmoid(logits)
        return DLRMOutput(
            probabilities=probabilities,
            logits=logits,
            reduced_embeddings=reduced,
            bottom_mlp_output=bottom_out,
            interaction_output=interaction,
        )

    def predict(self, batch: DLRMBatch) -> np.ndarray:
        """Convenience wrapper returning only the event probabilities."""
        return self.forward(batch).probabilities

    # ------------------------------------------------------------------
    # Work accounting used by examples and sanity checks
    # ------------------------------------------------------------------
    def flops_per_sample(self) -> int:
        """GEMM-like FLOPs per sample (MLPs + feature interaction)."""
        return self.config.total_dense_flops_per_sample()

    def embedding_bytes_per_sample(self) -> int:
        """Useful embedding bytes gathered per sample."""
        return self.config.embedding_bytes_per_sample()

    def model_summary(self) -> str:
        """Multi-line human-readable description of the model."""
        config = self.config
        lines = [
            f"{config.name}",
            f"  embedding tables : {config.num_tables} x "
            f"{config.tables[0].num_rows} rows x {config.embedding_dim} dims",
            f"  gathers per table: {config.gathers_per_table:.0f}",
            f"  table footprint  : {config.embedding_table_bytes / 1e6:.1f} MB",
            f"  bottom MLP       : {'-'.join(str(d) for d in config.bottom_mlp.layer_dims)}",
            f"  top MLP          : {'-'.join(str(d) for d in config.top_mlp.layer_dims)}",
            f"  MLP parameters   : {config.mlp_parameter_bytes / 1e3:.1f} KB",
        ]
        return "\n".join(lines)
