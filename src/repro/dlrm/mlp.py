"""Fully connected layers and MLP stacks for DLRM's dense backend."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config.models import MLPConfig
from repro.errors import ModelShapeError


def relu(values: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(values, 0.0)


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise logistic sigmoid."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out.astype(np.float32)


class LinearLayer:
    """One fully connected layer: ``y = x @ W + b``.

    Weights are stored as ``[in_dim, out_dim]`` so a batched forward pass is a
    single GEMM, exactly the operation the paper's dense accelerator targets.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray):
        weight = np.asarray(weight, dtype=np.float32)
        bias = np.asarray(bias, dtype=np.float32)
        if weight.ndim != 2:
            raise ModelShapeError(f"weight must be 2-D, got shape {weight.shape}")
        if bias.shape != (weight.shape[1],):
            raise ModelShapeError(
                f"bias shape {bias.shape} does not match weight output dim {weight.shape[1]}"
            )
        self.weight = weight
        self.bias = bias

    @classmethod
    def random(
        cls, in_dim: int, out_dim: int, rng: Optional[np.random.Generator] = None
    ) -> "LinearLayer":
        """Xavier-style initialization, matching DLRM's reference implementation."""
        rng = rng if rng is not None else np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        weight = rng.uniform(-limit, limit, size=(in_dim, out_dim)).astype(np.float32)
        bias = np.zeros(out_dim, dtype=np.float32)
        return cls(weight, bias)

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    @property
    def num_parameters(self) -> int:
        return self.weight.size + self.bias.size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float32)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_dim:
            raise ModelShapeError(
                f"expected input of shape [batch, {self.in_dim}], got {inputs.shape}"
            )
        return inputs @ self.weight + self.bias


class MLP:
    """A stack of linear layers with ReLU between them (none after the last)."""

    def __init__(self, layers: Sequence[LinearLayer], final_activation: Optional[str] = None):
        if not layers:
            raise ModelShapeError("an MLP needs at least one layer")
        for previous, current in zip(layers[:-1], layers[1:]):
            if previous.out_dim != current.in_dim:
                raise ModelShapeError(
                    f"layer output dim {previous.out_dim} does not feed layer input "
                    f"dim {current.in_dim}"
                )
        if final_activation not in (None, "relu", "sigmoid"):
            raise ModelShapeError(
                f"final_activation must be None, 'relu' or 'sigmoid', got {final_activation!r}"
            )
        self.layers: List[LinearLayer] = list(layers)
        self.final_activation = final_activation

    @classmethod
    def from_config(
        cls,
        config: MLPConfig,
        rng: Optional[np.random.Generator] = None,
        final_activation: Optional[str] = None,
    ) -> "MLP":
        """Build an MLP with random weights from an :class:`MLPConfig`."""
        rng = rng if rng is not None else np.random.default_rng(0)
        layers = [
            LinearLayer.random(in_dim, out_dim, rng)
            for in_dim, out_dim in zip(config.layer_dims[:-1], config.layer_dims[1:])
        ]
        return cls(layers, final_activation=final_activation)

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def parameter_bytes(self) -> int:
        return self.num_parameters * 4

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the batch through every layer, applying ReLU between layers."""
        activations = np.asarray(inputs, dtype=np.float32)
        last_index = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            activations = layer.forward(activations)
            if index != last_index:
                activations = relu(activations)
        if self.final_activation == "relu":
            activations = relu(activations)
        elif self.final_activation == "sigmoid":
            activations = sigmoid(activations)
        return activations

    def flops_per_sample(self) -> int:
        """FLOPs (2 per MAC) for one sample."""
        return sum(2 * layer.in_dim * layer.out_dim for layer in self.layers)
