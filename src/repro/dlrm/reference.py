"""Naive reference implementations used to validate the vectorized model.

Everything here is written as plain Python loops that follow the paper's
pseudo-code (Fig. 2) literally.  The test suite cross-checks the fast numpy
implementations in :mod:`repro.dlrm` against these references on small
inputs; they are intentionally slow and must not be used by the performance
models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dlrm.embedding import EmbeddingTableBase
from repro.dlrm.mlp import MLP


def reference_sparse_lengths_sum(
    table: EmbeddingTableBase,
    indices: Sequence[int],
    offsets: Sequence[int],
) -> np.ndarray:
    """Literal transcription of the paper's Fig. 2 pseudo-code."""
    batch_size = len(offsets) - 1
    output = np.zeros((batch_size, table.embedding_dim), dtype=np.float64)
    for sample in range(batch_size):
        accumulator = np.zeros(table.embedding_dim, dtype=np.float64)
        for position in range(offsets[sample], offsets[sample + 1]):
            row = table.rows(np.asarray([indices[position]]))[0]
            accumulator += row.astype(np.float64)
        output[sample] = accumulator
    return output.astype(np.float32)


def reference_dot_interaction(
    bottom_output: np.ndarray, reduced_embeddings: np.ndarray
) -> np.ndarray:
    """Pairwise dot products computed with explicit loops."""
    bottom_output = np.asarray(bottom_output, dtype=np.float32)
    reduced_embeddings = np.asarray(reduced_embeddings, dtype=np.float32)
    batch_size = bottom_output.shape[0]
    outputs = []
    for sample in range(batch_size):
        vectors = [bottom_output[sample]] + [
            reduced_embeddings[sample, table_id]
            for table_id in range(reduced_embeddings.shape[1])
        ]
        pairs = []
        for i in range(len(vectors)):
            for j in range(i):
                pairs.append(float(np.dot(vectors[i], vectors[j])))
        outputs.append(np.concatenate([bottom_output[sample], np.asarray(pairs, dtype=np.float32)]))
    return np.stack(outputs).astype(np.float32)


def reference_mlp_forward(mlp: MLP, inputs: np.ndarray) -> np.ndarray:
    """MLP forward pass computed one sample and one neuron at a time."""
    inputs = np.asarray(inputs, dtype=np.float32)
    outputs = []
    for sample in range(inputs.shape[0]):
        activation = inputs[sample].astype(np.float64)
        for layer_index, layer in enumerate(mlp.layers):
            next_activation = np.zeros(layer.out_dim, dtype=np.float64)
            for out_neuron in range(layer.out_dim):
                total = float(layer.bias[out_neuron])
                for in_neuron in range(layer.in_dim):
                    total += float(activation[in_neuron]) * float(
                        layer.weight[in_neuron, out_neuron]
                    )
                next_activation[out_neuron] = total
            if layer_index != len(mlp.layers) - 1:
                next_activation = np.maximum(next_activation, 0.0)
            activation = next_activation
        outputs.append(activation)
    return np.stack(outputs).astype(np.float32)
