"""Embedding tables and the ``SparseLengthsSum`` gather/reduce operator.

The paper's Fig. 2 defines the operator this module implements: for every
sample in a batch, gather the rows named by a sparse index array and reduce
them element-wise into a single vector.

Two table storage strategies are provided:

* :class:`DenseEmbeddingTable` materializes the table as a numpy array —
  faithful, but a full Table I configuration (up to 3.2 GB) would not fit in
  a test environment.
* :class:`VirtualEmbeddingTable` computes rows on demand from a deterministic
  hash of the row ID, so arbitrarily large logical tables can be exercised
  with O(1) memory while preserving the property that the same row ID always
  yields the same vector (which is what the reduction semantics depend on).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config.models import EmbeddingTableConfig
from repro.errors import ModelShapeError, TraceError
from repro.workloads.traces import SparseTrace


class EmbeddingTableBase:
    """Common interface of dense and virtual embedding tables."""

    def __init__(self, num_rows: int, embedding_dim: int):
        if num_rows <= 0:
            raise ModelShapeError(f"num_rows must be positive, got {num_rows}")
        if embedding_dim <= 0:
            raise ModelShapeError(f"embedding_dim must be positive, got {embedding_dim}")
        self.num_rows = int(num_rows)
        self.embedding_dim = int(embedding_dim)

    # -- abstract ------------------------------------------------------
    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Return the embedding vectors for the given row IDs, shape [n, dim]."""
        raise NotImplementedError

    # -- shared --------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        return self.embedding_dim * 4

    @property
    def table_bytes(self) -> int:
        return self.num_rows * self.row_bytes

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise TraceError(
                f"row IDs must lie in [0, {self.num_rows}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        return indices.astype(np.int64, copy=False)


class DenseEmbeddingTable(EmbeddingTableBase):
    """An embedding table backed by an in-memory numpy array."""

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise ModelShapeError(
                f"embedding weights must be [rows, dim], got shape {weights.shape}"
            )
        super().__init__(num_rows=weights.shape[0], embedding_dim=weights.shape[1])
        self.weights = weights

    @classmethod
    def random(
        cls,
        num_rows: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.1,
    ) -> "DenseEmbeddingTable":
        """Create a table with small random weights (as DLRM initialization does)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        weights = rng.standard_normal((num_rows, embedding_dim)).astype(np.float32)
        return cls(weights * np.float32(scale))

    def rows(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        return self.weights[indices]


class VirtualEmbeddingTable(EmbeddingTableBase):
    """An embedding table whose rows are derived on demand from the row ID.

    Each row is produced by seeding a counter-based pseudo-random sequence
    with ``hash(seed, row_id)``, so the table behaves as if a full array of
    weights existed (same ID -> same vector, different IDs -> decorrelated
    vectors) without allocating ``num_rows x dim`` floats.  This lets the
    functional model run the paper's multi-GB Table I configurations.
    """

    def __init__(self, num_rows: int, embedding_dim: int, seed: int = 0, scale: float = 0.1):
        super().__init__(num_rows=num_rows, embedding_dim=embedding_dim)
        self.seed = int(seed)
        self.scale = float(scale)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.zeros((0, self.embedding_dim), dtype=np.float32)
        # Counter-based generation: mix the row id with the table seed through
        # a splitmix64-style integer hash, then expand each hash into `dim`
        # decorrelated values with a per-column multiplier.  Deterministic,
        # vectorized, and allocation is proportional to the *gathered* rows.
        seed_mix = np.uint64((self.seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
        mixed = _splitmix64(indices.astype(np.uint64) + seed_mix)
        columns = np.arange(1, self.embedding_dim + 1, dtype=np.uint64)
        expanded = _splitmix64(mixed[:, None] * np.uint64(0x100000001B3) + columns[None, :])
        # Map to floats in [-1, 1) then scale to a typical embedding magnitude.
        unit = (expanded >> np.uint64(11)).astype(np.float64) / float(1 << 53)
        return ((unit * 2.0 - 1.0) * self.scale).astype(np.float32)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (deterministic integer hash)."""
    with np.errstate(over="ignore"):
        values = values.astype(np.uint64, copy=True)
        values += np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        values = values ^ (values >> np.uint64(31))
    return values


def sparse_lengths_sum(
    table: EmbeddingTableBase,
    indices: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Gather rows and reduce them per sample (Caffe2 ``SparseLengthsSum``).

    Args:
        table: The embedding table to gather from.
        indices: Flat array of row IDs for the whole batch.
        offsets: Array of length ``batch + 1``; sample ``i`` reduces
            ``indices[offsets[i]:offsets[i+1]]``.

    Returns:
        Array of shape ``[batch, embedding_dim]`` with the per-sample sums.
        Samples with zero lookups reduce to the zero vector.
    """
    indices = np.asarray(indices)
    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or len(offsets) < 2:
        raise TraceError("offsets must be one-dimensional with at least two entries")
    if offsets[0] != 0 or offsets[-1] != len(indices):
        raise TraceError(
            "offsets must start at 0 and end at len(indices): "
            f"got first={offsets[0]}, last={offsets[-1]}, len={len(indices)}"
        )
    batch_size = len(offsets) - 1
    gathered = table.rows(indices)
    output = np.zeros((batch_size, table.embedding_dim), dtype=np.float32)
    if len(indices) == 0:
        return output
    # Vectorized segment sum: assign each gathered row its sample id, then
    # accumulate with np.add.at (matches the sequential reference exactly).
    lengths = np.diff(offsets)
    sample_ids = np.repeat(np.arange(batch_size), lengths)
    np.add.at(output, sample_ids, gathered)
    return output


class EmbeddingBagCollection:
    """The frontend of DLRM: one embedding table per sparse feature.

    Produces, for every table, the reduced embedding of each sample — the
    "Step 1 + Step 2" portion of the paper's Fig. 3.
    """

    def __init__(self, tables: Sequence[EmbeddingTableBase]):
        if not tables:
            raise ModelShapeError("EmbeddingBagCollection needs at least one table")
        dims = {table.embedding_dim for table in tables}
        if len(dims) != 1:
            raise ModelShapeError(
                f"all tables must share one embedding dimension, got {sorted(dims)}"
            )
        self.tables: List[EmbeddingTableBase] = list(tables)

    @classmethod
    def from_configs(
        cls,
        configs: Sequence[EmbeddingTableConfig],
        storage: str = "virtual",
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> "EmbeddingBagCollection":
        """Build a collection from table configurations.

        Args:
            configs: Per-table configurations.
            storage: ``"virtual"`` (hash-derived rows, O(1) memory) or
                ``"dense"`` (materialized numpy weights).
            seed: Base seed; table ``i`` uses ``seed + i``.
            rng: Generator used for dense initialization.
        """
        if storage not in ("virtual", "dense"):
            raise ModelShapeError(f"storage must be 'virtual' or 'dense', got {storage!r}")
        tables: List[EmbeddingTableBase] = []
        rng = rng if rng is not None else np.random.default_rng(seed)
        for table_id, config in enumerate(configs):
            if storage == "virtual":
                tables.append(
                    VirtualEmbeddingTable(
                        num_rows=config.num_rows,
                        embedding_dim=config.embedding_dim,
                        seed=seed + table_id,
                    )
                )
            else:
                tables.append(
                    DenseEmbeddingTable.random(
                        num_rows=config.num_rows,
                        embedding_dim=config.embedding_dim,
                        rng=rng,
                    )
                )
        return cls(tables)

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def embedding_dim(self) -> int:
        return self.tables[0].embedding_dim

    @property
    def total_bytes(self) -> int:
        return sum(table.table_bytes for table in self.tables)

    def forward(self, traces: Sequence[SparseTrace]) -> np.ndarray:
        """Reduce every table's gathered rows.

        Args:
            traces: One :class:`SparseTrace` per table, all with the same
                batch size.

        Returns:
            Array of shape ``[batch, num_tables, embedding_dim]``.
        """
        if len(traces) != self.num_tables:
            raise ModelShapeError(
                f"expected {self.num_tables} traces (one per table), got {len(traces)}"
            )
        batch_sizes = {trace.batch_size for trace in traces}
        if len(batch_sizes) != 1:
            raise ModelShapeError(f"traces disagree on batch size: {sorted(batch_sizes)}")
        reduced = [
            sparse_lengths_sum(table, trace.indices, trace.offsets)
            for table, trace in zip(self.tables, traces)
        ]
        return np.stack(reduced, axis=1)
