"""Dot-product feature interaction (the batched GEMM of the paper's Fig. 3).

DLRM combines the bottom-MLP output with every table's reduced embedding by
taking all pairwise dot products between the vectors (a small ``R @ R^T``
batched GEMM), keeping the strictly lower triangle, and concatenating it with
the bottom-MLP output to form the top-MLP input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelShapeError


def dot_feature_interaction(
    bottom_mlp_output: np.ndarray,
    reduced_embeddings: np.ndarray,
) -> np.ndarray:
    """Compute DLRM's dot-product feature interaction.

    Args:
        bottom_mlp_output: Array of shape ``[batch, dim]`` — the dense
            feature vector after the bottom MLP.
        reduced_embeddings: Array of shape ``[batch, num_tables, dim]`` — one
            reduced embedding per table (output of
            :class:`~repro.dlrm.embedding.EmbeddingBagCollection`).

    Returns:
        Array of shape ``[batch, num_pairs + dim]`` where ``num_pairs`` is the
        number of unordered vector pairs among the ``num_tables + 1`` vectors.
        The layout matches DLRM: dense vector first, pair dot-products after.
    """
    bottom = np.asarray(bottom_mlp_output, dtype=np.float32)
    embeddings = np.asarray(reduced_embeddings, dtype=np.float32)
    if bottom.ndim != 2:
        raise ModelShapeError(
            f"bottom_mlp_output must be [batch, dim], got shape {bottom.shape}"
        )
    if embeddings.ndim != 3:
        raise ModelShapeError(
            "reduced_embeddings must be [batch, num_tables, dim], got shape "
            f"{embeddings.shape}"
        )
    if bottom.shape[0] != embeddings.shape[0]:
        raise ModelShapeError(
            f"batch mismatch: bottom {bottom.shape[0]} vs embeddings {embeddings.shape[0]}"
        )
    if bottom.shape[1] != embeddings.shape[2]:
        raise ModelShapeError(
            f"dimension mismatch: bottom dim {bottom.shape[1]} vs embedding dim "
            f"{embeddings.shape[2]}"
        )

    # Stack the bottom-MLP vector in front of the per-table embeddings:
    # T has shape [batch, num_vectors, dim] with num_vectors = num_tables + 1.
    stacked = np.concatenate([bottom[:, None, :], embeddings], axis=1)
    # Batched GEMM: R @ R^T per sample, shape [batch, n, n].
    gram = np.einsum("bnd,bmd->bnm", stacked, stacked)
    num_vectors = stacked.shape[1]
    row_idx, col_idx = np.tril_indices(num_vectors, k=-1)
    pairs = gram[:, row_idx, col_idx]
    return np.concatenate([bottom, pairs], axis=1).astype(np.float32)


def interaction_output_dim(num_tables: int, embedding_dim: int) -> int:
    """Width of the interaction output for a model shape.

    Matches :attr:`repro.config.models.DLRMConfig.interaction_output_dim`.
    """
    if num_tables <= 0:
        raise ModelShapeError(f"num_tables must be positive, got {num_tables}")
    if embedding_dim <= 0:
        raise ModelShapeError(f"embedding_dim must be positive, got {embedding_dim}")
    num_vectors = num_tables + 1
    return num_vectors * (num_vectors - 1) // 2 + embedding_dim
