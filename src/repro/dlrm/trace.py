"""Deprecated shim: trace generation moved to :mod:`repro.workloads.traces`.

This module re-exports the original names so existing imports keep working;
new code should import from :mod:`repro.workloads` (which also provides the
stateless :class:`~repro.workloads.traces.TraceModel` layer, the hot/cold
working-set model and per-table skew overrides the legacy classes lack).
"""

import warnings

warnings.warn(
    "repro.dlrm.trace is deprecated; import trace generation from "
    "repro.workloads instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.workloads.traces import (  # noqa: E402,F401
    DLRMBatch,
    SparseTrace,
    TraceGenerator,
    UniformTraceGenerator,
    ZipfianTraceGenerator,
    concatenate_traces,
)

__all__ = [
    "DLRMBatch",
    "SparseTrace",
    "TraceGenerator",
    "UniformTraceGenerator",
    "ZipfianTraceGenerator",
    "concatenate_traces",
]
