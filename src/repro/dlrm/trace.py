"""Sparse-index trace generation for DLRM inference.

A *trace* is the stream of sparse indices that an inference batch looks up
from each embedding table, expressed exactly like Caffe2's
``SparseLengthsSum`` operator in the paper's Fig. 2: a flat index array plus
a per-sample offset array.

Two generators are provided:

* :class:`UniformTraceGenerator` — indices drawn uniformly at random over the
  table, which is the pessimal-locality case the paper characterizes
  (embedding gathers with "low spatial/temporal locality").
* :class:`ZipfianTraceGenerator` — indices drawn from a Zipf distribution,
  modelling popularity skew in production traffic; useful for the cache
  sensitivity studies beyond the paper's main results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.models import DLRMConfig, EmbeddingTableConfig
from repro.errors import TraceError


@dataclass(frozen=True)
class SparseTrace:
    """Lookup indices for one embedding table over one batch.

    Attributes:
        indices: Flat ``int64`` array of row IDs, concatenated over samples.
        offsets: ``int64`` array of length ``batch_size + 1``; sample ``i``
            owns ``indices[offsets[i]:offsets[i+1]]``.
        num_rows: Number of rows in the table the indices refer to.
    """

    indices: np.ndarray
    offsets: np.ndarray
    num_rows: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices)
        offsets = np.asarray(self.offsets)
        if indices.ndim != 1:
            raise TraceError(f"indices must be one-dimensional, got shape {indices.shape}")
        if offsets.ndim != 1 or len(offsets) < 2:
            raise TraceError(
                "offsets must be one-dimensional with at least two entries "
                f"(got shape {offsets.shape})"
            )
        if offsets[0] != 0 or offsets[-1] != len(indices):
            raise TraceError(
                "offsets must start at 0 and end at len(indices): "
                f"got first={offsets[0]}, last={offsets[-1]}, len={len(indices)}"
            )
        if np.any(np.diff(offsets) < 0):
            raise TraceError("offsets must be non-decreasing")
        if self.num_rows <= 0:
            raise TraceError(f"num_rows must be positive, got {self.num_rows}")
        if len(indices) and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise TraceError(
                f"indices must lie in [0, {self.num_rows}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )

    @property
    def batch_size(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_lookups(self) -> int:
        return int(len(self.indices))

    def lookups_for_sample(self, sample: int) -> np.ndarray:
        """Return the row IDs gathered for one sample."""
        if not 0 <= sample < self.batch_size:
            raise IndexError(f"sample {sample} out of range for batch {self.batch_size}")
        return self.indices[self.offsets[sample] : self.offsets[sample + 1]]

    def unique_rows(self) -> int:
        """Number of distinct rows touched by the whole batch."""
        if self.total_lookups == 0:
            return 0
        return int(len(np.unique(self.indices)))


@dataclass(frozen=True)
class DLRMBatch:
    """One inference batch: dense features plus one trace per embedding table."""

    dense_features: np.ndarray
    sparse_traces: Tuple[SparseTrace, ...]

    def __post_init__(self) -> None:
        dense = np.asarray(self.dense_features)
        if dense.ndim != 2:
            raise TraceError(
                f"dense_features must be [batch, features], got shape {dense.shape}"
            )
        for table_id, trace in enumerate(self.sparse_traces):
            if trace.batch_size != dense.shape[0]:
                raise TraceError(
                    f"trace for table {table_id} has batch size {trace.batch_size} "
                    f"but dense features have batch size {dense.shape[0]}"
                )

    @property
    def batch_size(self) -> int:
        return int(self.dense_features.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.sparse_traces)

    @property
    def total_lookups(self) -> int:
        return sum(trace.total_lookups for trace in self.sparse_traces)

    def embedding_bytes(self, embedding_dim: int, dtype_bytes: int = 4) -> int:
        """Useful bytes gathered from embedding tables for this batch."""
        return self.total_lookups * embedding_dim * dtype_bytes


class TraceGenerator:
    """Base class for sparse-index trace generators.

    Subclasses implement :meth:`_draw_indices`, producing row IDs for a given
    number of lookups over a table; the base class handles offsets, batching
    and whole-model batch generation.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def reseed(self, seed: int) -> None:
        """Reset the generator to a fresh deterministic state."""
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def table_trace(
        self,
        table: EmbeddingTableConfig,
        batch_size: int,
        lookups_per_sample: Optional[int] = None,
    ) -> SparseTrace:
        """Generate a trace for one table over a batch.

        Args:
            table: The table configuration (row count, default lookup count).
            batch_size: Number of samples in the batch.
            lookups_per_sample: Override of the per-sample lookup count; the
                table's configured ``gathers`` value is used when omitted.
        """
        if batch_size <= 0:
            raise TraceError(f"batch_size must be positive, got {batch_size}")
        lookups = table.gathers if lookups_per_sample is None else lookups_per_sample
        if lookups < 0:
            raise TraceError(f"lookups_per_sample must be non-negative, got {lookups}")
        total = batch_size * lookups
        indices = self._draw_indices(table.num_rows, total).astype(np.int64)
        if lookups == 0:
            offsets = np.zeros(batch_size + 1, dtype=np.int64)
        else:
            offsets = np.arange(0, total + 1, lookups, dtype=np.int64)
        return SparseTrace(indices=indices, offsets=offsets, num_rows=table.num_rows)

    def model_batch(self, model: DLRMConfig, batch_size: int) -> DLRMBatch:
        """Generate dense features and per-table traces for a whole model."""
        dense = self._rng.standard_normal(
            (batch_size, model.num_dense_features)
        ).astype(np.float32)
        traces = tuple(
            self.table_trace(table, batch_size) for table in model.tables
        )
        return DLRMBatch(dense_features=dense, sparse_traces=traces)

    def batches(
        self, model: DLRMConfig, batch_size: int, count: int
    ) -> Iterable[DLRMBatch]:
        """Yield ``count`` independent batches."""
        for _ in range(count):
            yield self.model_batch(model, batch_size)


class UniformTraceGenerator(TraceGenerator):
    """Indices drawn uniformly at random — the paper's low-locality regime."""

    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        return self._rng.integers(0, num_rows, size=count, dtype=np.int64)


class ZipfianTraceGenerator(TraceGenerator):
    """Indices drawn from a (truncated) Zipf distribution over table rows.

    Args:
        alpha: Skew parameter; ``alpha -> 0`` approaches uniform and larger
            values concentrate traffic on a few hot rows.
        seed: RNG seed.
    """

    def __init__(self, alpha: float = 1.05, seed: int = 0):
        if alpha <= 0:
            raise TraceError(f"alpha must be positive, got {alpha}")
        super().__init__(seed=seed)
        self.alpha = alpha
        self._cdf_cache: dict = {}

    def _cdf(self, num_rows: int) -> np.ndarray:
        cached = self._cdf_cache.get(num_rows)
        if cached is not None:
            return cached
        ranks = np.arange(1, num_rows + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf_cache[num_rows] = cdf
        return cdf

    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        cdf = self._cdf(num_rows)
        uniform = self._rng.random(count)
        # Hot rows get low ranks; scatter them over the table with a fixed
        # permutation derived from the seed so that "popular" rows are not
        # physically adjacent (which would overstate spatial locality).
        ranks = np.searchsorted(cdf, uniform, side="left")
        permutation = np.random.default_rng(self._seed ^ 0x5EED).permutation(num_rows)
        return permutation[np.clip(ranks, 0, num_rows - 1)]


def concatenate_traces(traces: Sequence[SparseTrace]) -> SparseTrace:
    """Concatenate per-batch traces for the *same* table into one trace.

    Useful when modelling multiple inference requests back to back.
    """
    if not traces:
        raise TraceError("cannot concatenate an empty sequence of traces")
    num_rows = traces[0].num_rows
    if any(trace.num_rows != num_rows for trace in traces):
        raise TraceError("all traces must refer to tables with the same row count")
    indices: List[np.ndarray] = []
    offsets: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    running = 0
    for trace in traces:
        indices.append(trace.indices)
        offsets.append(trace.offsets[1:] + running)
        running += trace.total_lookups
    return SparseTrace(
        indices=np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64),
        offsets=np.concatenate(offsets),
        num_rows=num_rows,
    )
