"""Exception hierarchy for the Centaur reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can guard an entire experiment with a single ``except`` clause while
still being able to catch narrower categories (configuration problems,
model-shape problems, simulation problems, capacity overflows).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A configuration object is invalid or internally inconsistent."""


class ModelShapeError(ReproError):
    """Tensor/layer shapes passed to the DLRM model do not line up."""


class TraceError(ReproError):
    """A sparse-index trace is malformed (offsets, index bounds, lengths)."""


class SimulationError(ReproError):
    """The performance / event-driven simulation reached an invalid state."""


class CapacityError(ReproError):
    """A hardware structure (SRAM, MSHR file, register file) overflowed."""


class ResourceEstimationError(ReproError):
    """The FPGA resource estimator was asked for an infeasible design."""
