"""Deprecated shim: request arrivals moved to :mod:`repro.workloads.arrivals`.

This module re-exports the original names so existing imports keep working;
new code should compose an :class:`~repro.workloads.arrivals.ArrivalProcess`
into a :class:`~repro.workloads.Workload` (lazy streams, bursty/diurnal
processes, traffic mixes) instead of eagerly materializing request lists.
"""

import warnings

warnings.warn(
    "repro.serving.requests is deprecated; import request arrivals from "
    "repro.workloads instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.workloads.arrivals import (  # noqa: E402,F401
    InferenceRequest,
    PoissonRequestGenerator,
)

__all__ = ["InferenceRequest", "PoissonRequestGenerator"]
