"""Inference request arrivals for the serving simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class InferenceRequest:
    """One ranking request (one sample) arriving at the serving system.

    Attributes:
        request_id: Monotonically increasing identifier.
        arrival_time_s: Time the request entered the queue.
    """

    request_id: int
    arrival_time_s: float

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise SimulationError(f"request_id must be non-negative, got {self.request_id}")
        if self.arrival_time_s < 0:
            raise SimulationError(
                f"arrival_time_s must be non-negative, got {self.arrival_time_s}"
            )


class PoissonRequestGenerator:
    """Generates request arrivals with exponential inter-arrival times.

    Args:
        rate_qps: Average arrival rate in queries (samples) per second.
        seed: RNG seed; arrivals are fully deterministic given the seed.
    """

    def __init__(self, rate_qps: float, seed: int = 0):
        if rate_qps <= 0:
            raise SimulationError(f"rate_qps must be positive, got {rate_qps}")
        self.rate_qps = rate_qps
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def generate(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> List[InferenceRequest]:
        """Generate arrivals for a time window or a fixed request count.

        Exactly one of ``duration_s`` / ``num_requests`` must be provided.
        """
        if (duration_s is None) == (num_requests is None):
            raise SimulationError("provide exactly one of duration_s or num_requests")
        if duration_s is not None and duration_s <= 0:
            raise SimulationError(f"duration_s must be positive, got {duration_s}")
        if num_requests is not None and num_requests <= 0:
            raise SimulationError(f"num_requests must be positive, got {num_requests}")

        requests: List[InferenceRequest] = []
        now = 0.0
        request_id = 0
        while True:
            now += float(self._rng.exponential(1.0 / self.rate_qps))
            if duration_s is not None and now > duration_s:
                break
            requests.append(InferenceRequest(request_id=request_id, arrival_time_s=now))
            request_id += 1
            if num_requests is not None and request_id >= num_requests:
                break
        return requests
