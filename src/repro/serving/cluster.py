"""Multi-replica serving: load balancing a request stream over several devices.

Capacity planning (examples/datacenter_provisioning.py) asks "how many
sockets do I need for a target load?".  This module answers the follow-up
question — what the tail latency actually looks like when that many replicas
share the load — by splitting one arrival stream across ``num_replicas``
single-device simulators with a join-the-least-loaded dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy
from repro.serving.metrics import LatencyDistribution, ServingReport
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator
from repro.serving.simulator import DesignPointRunner, ServingSimulator


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate serving behaviour of a replica group."""

    design_point: str
    model_name: str
    num_replicas: int
    per_replica: List[ServingReport]
    latency: LatencyDistribution

    @property
    def completed_requests(self) -> int:
        return sum(report.completed_requests for report in self.per_replica)

    @property
    def total_energy_joules(self) -> float:
        return sum(report.energy_joules for report in self.per_replica)

    @property
    def energy_per_request_joules(self) -> float:
        if self.completed_requests == 0:
            return 0.0
        return self.total_energy_joules / self.completed_requests

    @property
    def mean_utilization(self) -> float:
        return sum(report.device_utilization for report in self.per_replica) / len(
            self.per_replica
        )


class ClusterSimulator:
    """Round-robin/least-loaded dispatch of one request stream over replicas.

    Args:
        runner: Design-point runner shared by every replica (they are
            identical devices).
        model: Served DLRM configuration.
        num_replicas: Number of devices behind the load balancer.
        batching: Per-replica batching policy (shared configuration).
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        num_replicas: int,
        batching: Optional[BatchingPolicy] = None,
    ):
        if num_replicas <= 0:
            raise SimulationError(f"num_replicas must be positive, got {num_replicas}")
        self.runner = runner
        self.model = model
        self.num_replicas = num_replicas
        self.batching = batching
        self._simulators = [
            ServingSimulator(runner, model, batching=batching) for _ in range(num_replicas)
        ]

    # ------------------------------------------------------------------
    def _dispatch(self, requests: Sequence[InferenceRequest]) -> List[List[InferenceRequest]]:
        """Assign requests to replicas, balancing the outstanding count."""
        ordered = sorted(requests, key=lambda request: request.arrival_time_s)
        queues: List[List[InferenceRequest]] = [[] for _ in range(self.num_replicas)]
        for index, request in enumerate(ordered):
            # Join-shortest-queue approximated by round-robin over a sorted
            # stream: deterministic and nearly balanced for Poisson arrivals.
            queues[index % self.num_replicas].append(request)
        return queues

    def serve(self, requests: Sequence[InferenceRequest]) -> ClusterReport:
        """Serve a request stream across all replicas."""
        if not requests:
            raise SimulationError("cannot serve an empty request stream")
        queues = self._dispatch(requests)
        reports: List[ServingReport] = []
        latencies: List[float] = []
        for simulator, queue in zip(self._simulators, queues):
            if not queue:
                continue
            report = simulator.serve(queue)
            reports.append(report)
            latencies.extend(report.latency.samples_s.tolist())
        if not reports:
            raise SimulationError("no replica received any requests")
        return ClusterReport(
            design_point=self.runner.design_point,
            model_name=self.model.name,
            num_replicas=self.num_replicas,
            per_replica=reports,
            latency=LatencyDistribution(latencies),
        )

    def serve_poisson(
        self, rate_qps: float, duration_s: float, seed: int = 0
    ) -> ClusterReport:
        """Serve a Poisson stream of aggregate rate ``rate_qps``."""
        generator = PoissonRequestGenerator(rate_qps=rate_qps, seed=seed)
        requests = generator.generate(duration_s=duration_s)
        if not requests:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS"
            )
        return self.serve(requests)
