"""Multi-replica serving: load balancing a request stream over several devices.

Capacity planning (examples/datacenter_provisioning.py) asks "how many
sockets do I need for a target load?".  This module answers the follow-up
question — what the tail latency actually looks like when that many replicas
share the load.  The fleet lives on one shared event simulator: every
arrival is an event, the dispatcher picks a replica with live visibility
into queue depths, and each replica batches and executes independently.

Two front-ends share the same core:

* :class:`ClusterSimulator` — ``num_replicas`` identical devices behind a
  dispatcher (round-robin by default, matching the legacy behaviour).
* :class:`HeterogeneousCluster` — an arbitrary mix of CPU-only / CPU-GPU /
  Centaur replicas, each with its own batching policy, behind any
  :class:`~repro.serving.dispatch.Dispatcher`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.dispatch import Dispatcher, RoundRobinDispatcher
from repro.serving.metrics import LatencyDistribution, ServingReport
from repro.serving.replica import DesignPointRunner, ReplicaServer, ServiceModel, drive_stream
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica in a (possibly heterogeneous) fleet.

    Attributes:
        runner: Design-point runner backing the replica's device.
        batching: Replica-local batching policy; ``None`` inherits the
            cluster default.
    """

    runner: DesignPointRunner
    batching: Optional[BatchingPolicy] = None


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate serving behaviour of a replica group."""

    design_point: str
    model_name: str
    num_replicas: int
    per_replica: List[ServingReport]
    latency: LatencyDistribution
    dispatcher: str = "round-robin"

    @property
    def completed_requests(self) -> int:
        return sum(report.completed_requests for report in self.per_replica)

    @property
    def total_energy_joules(self) -> float:
        return sum(report.energy_joules for report in self.per_replica)

    @property
    def energy_per_request_joules(self) -> float:
        if self.completed_requests == 0:
            return 0.0
        return self.total_energy_joules / self.completed_requests

    @property
    def mean_utilization(self) -> float:
        return sum(report.device_utilization for report in self.per_replica) / len(
            self.per_replica
        )

    @property
    def device_utilization(self) -> float:
        """Alias so cluster and single-device reports render uniformly."""
        return self.mean_utilization


class HeterogeneousCluster:
    """A mixed fleet of serving replicas behind a pluggable dispatcher.

    Args:
        specs: One :class:`ReplicaSpec` (or bare runner) per replica.
        model: Served DLRM configuration.
        dispatcher: Routing policy; defaults to round-robin.
        batching: Default batching policy for specs that do not set one;
            defaults to a 2 ms window capped at 64.
    """

    def __init__(
        self,
        specs: Sequence,
        model: DLRMConfig,
        dispatcher: Optional[Dispatcher] = None,
        batching: Optional[BatchingPolicy] = None,
    ):
        if not specs:
            raise SimulationError("a cluster needs at least one replica")
        fallback = batching if batching is not None else default_batching()
        self.specs: List[ReplicaSpec] = []
        for spec in specs:
            if not isinstance(spec, ReplicaSpec):
                spec = ReplicaSpec(runner=spec)
            if spec.batching is None:
                spec = ReplicaSpec(runner=spec.runner, batching=fallback)
            self.specs.append(spec)
        self.model = model
        self.dispatcher = dispatcher if dispatcher is not None else RoundRobinDispatcher()
        # One prediction cache per runner instance, shared across streams.
        self._caches = {}
        for spec in self.specs:
            self._caches.setdefault(id(spec.runner), {})

    @property
    def num_replicas(self) -> int:
        return len(self.specs)

    @property
    def design_point(self) -> str:
        """The fleet's design-point mix, e.g. ``"CPU-only+Centaur"``."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.runner.design_point not in seen:
                seen.append(spec.runner.design_point)
        return "+".join(seen)

    # ------------------------------------------------------------------
    def _build_replicas(self, sim: Simulator) -> List[ReplicaServer]:
        replicas = []
        for index, spec in enumerate(self.specs):
            service = ServiceModel(
                spec.runner, self.model, self._caches[id(spec.runner)]
            )
            replicas.append(
                ReplicaServer(
                    sim,
                    service,
                    spec.batching,
                    name=f"{spec.runner.design_point}:{index}",
                )
            )
        return replicas

    def serve(self, requests: Sequence[InferenceRequest]) -> ClusterReport:
        """Serve a request stream across the fleet."""
        if not requests:
            raise SimulationError("cannot serve an empty request stream")
        sim = Simulator()
        replicas = self._build_replicas(sim)
        self.dispatcher.reset()

        def route(request):
            index = self.dispatcher.select(replicas, request, sim.now)
            if not 0 <= index < len(replicas):
                raise SimulationError(
                    f"{self.dispatcher.name} selected invalid replica {index} "
                    f"of {len(replicas)}"
                )
            return replicas[index]

        drive_stream(sim, replicas, requests, route)

        reports: List[ServingReport] = []
        latencies: List[float] = []
        for replica in replicas:
            if not replica.arrivals:
                continue
            report = replica.build_report(self.model.name)
            reports.append(report)
            latencies.extend(report.latency.samples_s.tolist())
        if not reports:
            raise SimulationError("no replica received any requests")
        return ClusterReport(
            design_point=self.design_point,
            model_name=self.model.name,
            num_replicas=self.num_replicas,
            per_replica=reports,
            latency=LatencyDistribution(latencies),
            dispatcher=self.dispatcher.name,
        )

    def serve_poisson(
        self, rate_qps: float, duration_s: float, seed: int = 0
    ) -> ClusterReport:
        """Serve a Poisson stream of aggregate rate ``rate_qps``."""
        generator = PoissonRequestGenerator(rate_qps=rate_qps, seed=seed)
        requests = generator.generate(duration_s=duration_s)
        if not requests:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS"
            )
        return self.serve(requests)


class ClusterSimulator(HeterogeneousCluster):
    """``num_replicas`` identical devices behind a dispatcher.

    Args:
        runner: Design-point runner shared by every replica (they are
            identical devices).
        model: Served DLRM configuration.
        num_replicas: Number of devices behind the load balancer.
        batching: Per-replica batching policy (shared configuration).
        dispatcher: Routing policy; defaults to round-robin (the legacy
            behaviour).
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        num_replicas: int,
        batching: Optional[BatchingPolicy] = None,
        dispatcher: Optional[Dispatcher] = None,
    ):
        if num_replicas <= 0:
            raise SimulationError(f"num_replicas must be positive, got {num_replicas}")
        super().__init__(
            [ReplicaSpec(runner=runner) for _ in range(num_replicas)],
            model,
            dispatcher=dispatcher,
            batching=batching,
        )
        self.runner = runner
        self.batching = batching
