"""Multi-replica serving: load balancing a request stream over several devices.

Capacity planning (examples/datacenter_provisioning.py) asks "how many
sockets do I need for a target load?".  This module answers the follow-up
question — what the tail latency actually looks like when that many replicas
share the load.  The fleet lives on one shared event simulator: every
arrival is an event, the dispatcher picks a replica with live visibility
into queue depths, and each replica batches and executes independently.

Two front-ends share the same core:

* :class:`ClusterSimulator` — ``num_replicas`` identical devices behind a
  dispatcher (round-robin by default, matching the legacy behaviour).
* :class:`HeterogeneousCluster` — an arbitrary mix of CPU-only / CPU-GPU /
  Centaur replicas, each with its own batching policy, behind any
  :class:`~repro.serving.dispatch.Dispatcher`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.chaos.report import IncidentReport
    from repro.serving.sharded import ShardingStats

from repro.backends.registry import resolve_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.dispatch import Dispatcher, RoundRobinDispatcher
from repro.serving.metrics import LatencyDistribution, ServingReport
from repro.serving.replica import (
    DesignPointRunner,
    ReplicaServer,
    ServiceModel,
    StreamOutcome,
    drive_stream,
)
from repro.sim.engine import QueueSpec, Simulator
from repro.sim.profile import SimProfile
from repro.workloads.arrivals import InferenceRequest, PoissonArrivals
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica in a (possibly heterogeneous) fleet.

    Attributes:
        runner: Design-point runner backing the replica's device, or a
            backend-registry name (``"cpu"``, ``"centaur"``, ...) resolved
            against the cluster's ``system``.
        batching: Replica-local batching policy; ``None`` inherits the
            cluster default.
    """

    runner: Union[DesignPointRunner, str]
    batching: Optional[BatchingPolicy] = None


@dataclass(frozen=True)
class AutoscaleReport:
    """Elastic-fleet accounting of one autoscaled serving run.

    Attributes:
        policy: Name of the :class:`~repro.serving.autoscale.AutoscalerPolicy`.
        control_interval_s: Spacing of the controller's timed events.
        warmup_s: Commission-to-traffic delay each new replica paid.
        timeline: ``(time_s, commissioned_replicas)`` change points —
            commissioned means paid for: active, warming up, or draining.
        replica_seconds: Total commissioned time summed over the fleet (the
            replica-hours bill, in seconds).
        peak_replicas: Largest commissioned count the run reached.
        scale_up_events: Replica commissions (including drain reclaims).
        scale_down_events: Replica decommissions (including warm-up cancels).
        busy_energy_joules: Energy the devices spent executing batches.
        idle_energy_joules: Energy charged for commissioned-but-idle time
            (``idle_power_w`` times the non-busy replica-seconds).
        crashes: Replica crashes injected by a fault schedule.
        restarts: Crash restarts that recommissioned a replica.
    """

    policy: str
    control_interval_s: float
    warmup_s: float
    timeline: Tuple[Tuple[float, int], ...]
    replica_seconds: float
    peak_replicas: int
    scale_up_events: int
    scale_down_events: int
    busy_energy_joules: float
    idle_energy_joules: float
    crashes: int = 0
    restarts: int = 0

    @property
    def total_energy_joules(self) -> float:
        return self.busy_energy_joules + self.idle_energy_joules

    def replicas_at(self, time_s: float) -> int:
        """Commissioned replica count at a simulated time."""
        count = self.timeline[0][1]
        for change_s, changed in self.timeline:
            if change_s > time_s:
                break
            count = changed
        return count


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate serving behaviour of a replica group."""

    design_point: str
    model_name: str
    num_replicas: int
    per_replica: List[ServingReport]
    latency: LatencyDistribution
    dispatcher: str = "round-robin"
    autoscale: Optional[AutoscaleReport] = None
    #: Shard/cache accounting of a sharded group run (``None`` otherwise).
    sharding: Optional["ShardingStats"] = None
    #: Resilience accounting of a chaos-injected run (``None`` otherwise).
    incidents: Optional["IncidentReport"] = None

    @property
    def completed_requests(self) -> int:
        return sum(report.completed_requests for report in self.per_replica)

    @property
    def total_energy_joules(self) -> float:
        return sum(report.energy_joules for report in self.per_replica)

    @property
    def energy_per_request_joules(self) -> float:
        if self.completed_requests == 0:
            return 0.0
        return self.total_energy_joules / self.completed_requests

    @property
    def mean_utilization(self) -> float:
        return sum(report.device_utilization for report in self.per_replica) / len(
            self.per_replica
        )

    @property
    def makespan_s(self) -> float:
        """Time the slowest replica finished its last batch."""
        return max(report.makespan_s for report in self.per_replica)

    @property
    def replica_seconds(self) -> float:
        """The fleet's replica-hours bill, in seconds.

        A static fleet pays every replica for the whole run; an autoscaled
        fleet pays exactly the commissioned time its controller accounted.
        """
        if self.autoscale is not None:
            return self.autoscale.replica_seconds
        return self.num_replicas * self.makespan_s

    @property
    def device_utilization(self) -> float:
        """Alias so cluster and single-device reports render uniformly."""
        return self.mean_utilization


class HeterogeneousCluster:
    """A mixed fleet of serving replicas behind a pluggable dispatcher.

    Args:
        specs: One :class:`ReplicaSpec` (or bare runner / backend name) per
            replica.  Backend names are resolved through the registry and
            shared: replicas naming the same backend run on one device
            instance (mirroring how a shared runner behaves).
        model: Served DLRM configuration.
        dispatcher: Routing policy; defaults to round-robin.
        batching: Default batching policy for specs that do not set one;
            defaults to a 2 ms window capped at 64.
        system: Hardware platform used to resolve backend names; required
            only when a spec names a backend instead of carrying a runner.
        queue: Event-queue selector forwarded to the engine
            (``"auto"``/``"heap"``/``"calendar"``, or a queue class).
        profile: Record a per-event-label engine profile for every serve;
            the latest one is exposed as :attr:`last_profile`.
    """

    def __init__(
        self,
        specs: Sequence,
        model: DLRMConfig,
        dispatcher: Optional[Dispatcher] = None,
        batching: Optional[BatchingPolicy] = None,
        system: Optional[SystemConfig] = None,
        queue: QueueSpec = "auto",
        profile: bool = False,
    ):
        if not specs:
            raise SimulationError("a cluster needs at least one replica")
        fallback = batching if batching is not None else default_batching()
        resolved: dict = {}
        self.specs: List[ReplicaSpec] = []
        for spec in specs:
            if not isinstance(spec, ReplicaSpec):
                spec = ReplicaSpec(runner=spec)
            if isinstance(spec.runner, str):
                if system is None:
                    raise SimulationError(
                        f"replica names backend {spec.runner!r} but the cluster "
                        "was built without a system configuration"
                    )
                name = spec.runner
                if name not in resolved:
                    resolved[name] = resolve_backend(name, system)
                spec = ReplicaSpec(runner=resolved[name], batching=spec.batching)
            if spec.batching is None:
                spec = ReplicaSpec(runner=spec.runner, batching=fallback)
            self.specs.append(spec)
        self.model = model
        self.dispatcher = dispatcher if dispatcher is not None else RoundRobinDispatcher()
        # One prediction cache per runner instance, shared across streams.
        self._caches = {}
        for spec in self.specs:
            self._caches.setdefault(id(spec.runner), {})
        self.queue = queue
        self.profile = profile
        #: Engine profile of the most recent :meth:`serve` call (``None``
        #: until the first profiled run).
        self.last_profile: Optional[SimProfile] = None
        #: Conservation counters of the most recent :meth:`serve` call.
        self.last_outcome: Optional[StreamOutcome] = None

    @classmethod
    def from_backends(
        cls,
        backends: Sequence[str],
        model: DLRMConfig,
        system: SystemConfig,
        dispatcher: Optional[Dispatcher] = None,
        batching: Optional[BatchingPolicy] = None,
    ) -> "HeterogeneousCluster":
        """Build a fleet from backend-registry names, one replica per entry.

        Example::

            fleet = HeterogeneousCluster.from_backends(
                ["cpu", "cpu", "centaur"], DLRM2, HARPV2_SYSTEM,
                dispatcher=LeastLoadedDispatcher(),
            )
        """
        return cls(
            list(backends),
            model,
            dispatcher=dispatcher,
            batching=batching,
            system=system,
        )

    @property
    def num_replicas(self) -> int:
        return len(self.specs)

    @property
    def design_point(self) -> str:
        """The fleet's design-point mix, e.g. ``"CPU-only+Centaur"``."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.runner.design_point not in seen:
                seen.append(spec.runner.design_point)
        return "+".join(seen)

    # ------------------------------------------------------------------
    def _dispatch(self, replicas: Sequence[ReplicaServer], request, now: float) -> ReplicaServer:
        """Ask the dispatcher for a replica, validating its choice."""
        index = self.dispatcher.select(replicas, request, now)
        if not 0 <= index < len(replicas):
            raise SimulationError(
                f"{self.dispatcher.name} selected invalid replica {index} "
                f"of {len(replicas)}"
            )
        return replicas[index]

    def _collect_reports(
        self,
        replicas: Sequence[ReplicaServer],
        label: str,
        *,
        allow_empty: bool = False,
    ) -> Tuple[List[ServingReport], LatencyDistribution]:
        """Per-replica reports (replicas that served) + pooled latencies.

        ``allow_empty`` covers chaos runs where the fault schedule killed
        every replica before anything was served (a total outage sheds
        the whole stream): the report is then built over zero replicas
        instead of treating the outage as a configuration error.
        """
        reports: List[ServingReport] = []
        latencies: List[float] = []
        for replica in replicas:
            if not replica.arrival_count:
                continue
            report = replica.build_report(label)
            reports.append(report)
            latencies.extend(report.latency.samples_s.tolist())
        if not reports and not allow_empty:
            raise SimulationError("no replica received any requests")
        return reports, LatencyDistribution(latencies, allow_empty=allow_empty)

    def _build_replicas(
        self, sim: Simulator, extra_models: Sequence[DLRMConfig] = ()
    ) -> List[ReplicaServer]:
        replicas = []
        for index, spec in enumerate(self.specs):
            service = ServiceModel(
                spec.runner,
                self.model,
                self._caches[id(spec.runner)],
                extra_models=extra_models,
            )
            replicas.append(
                ReplicaServer(
                    sim,
                    service,
                    spec.batching,
                    name=f"{spec.runner.design_point}:{index}",
                )
            )
        return replicas

    def serve(
        self,
        requests: Union[Sequence[InferenceRequest], Iterable[InferenceRequest]],
        extra_models: Sequence[DLRMConfig] = (),
        report_label: Optional[str] = None,
    ) -> ClusterReport:
        """Serve a request stream across the fleet.

        ``requests`` may be an eager sequence (sorted internally) or a lazy
        time-ordered iterator, pulled one arrival at a time so stream length
        does not bound memory.
        """
        if isinstance(requests, Sequence) and not requests:
            raise SimulationError("cannot serve an empty request stream")
        sim = Simulator(queue=self.queue, profile=self.profile)
        replicas = self._build_replicas(sim, extra_models=extra_models)
        self.dispatcher.reset()

        def route(request):
            return self._dispatch(replicas, request, sim.now)

        outcome = drive_stream(sim, replicas, requests, route)
        if outcome.scheduled == 0:
            raise SimulationError("cannot serve an empty request stream")
        self.last_profile = sim.profile
        self.last_outcome = outcome

        label = report_label or self.model.name
        reports, latency = self._collect_reports(replicas, label)
        return ClusterReport(
            design_point=self.design_point,
            model_name=label,
            num_replicas=self.num_replicas,
            per_replica=reports,
            latency=latency,
            dispatcher=self.dispatcher.name,
        )

    def serve_workload(
        self,
        workload: Workload,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> ClusterReport:
        """Serve a :class:`~repro.workloads.Workload` stream across the fleet.

        The workload's arrival process streams lazily through the dispatcher;
        a multi-model traffic mix prices every mix model on every replica,
        and batches execute one per-model segment at a time.
        """
        label = workload.mix.label if workload.mix is not None else None
        return self.serve(
            workload.requests(duration_s=duration_s, num_requests=num_requests, seed=seed),
            extra_models=workload.models,
            report_label=label,
        )

    def serve_poisson(
        self, rate_qps: float, duration_s: float, seed: int = 0
    ) -> ClusterReport:
        """Serve a Poisson stream of aggregate rate ``rate_qps``."""
        stream = PoissonArrivals(rate_qps=rate_qps).arrivals(
            duration_s=duration_s, seed=seed
        )
        first = next(stream, None)
        if first is None:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS"
            )
        return self.serve(itertools.chain([first], stream))


class ClusterSimulator(HeterogeneousCluster):
    """``num_replicas`` identical devices behind a dispatcher.

    Args:
        runner: Design-point runner shared by every replica (they are
            identical devices), or a backend-registry name resolved against
            ``system``.
        model: Served DLRM configuration.
        num_replicas: Number of devices behind the load balancer.
        batching: Per-replica batching policy (shared configuration).
        dispatcher: Routing policy; defaults to round-robin (the legacy
            behaviour).
        system: Hardware platform; required only when ``runner`` is a
            backend name.
    """

    def __init__(
        self,
        runner: Union[DesignPointRunner, str],
        model: DLRMConfig,
        num_replicas: int,
        batching: Optional[BatchingPolicy] = None,
        dispatcher: Optional[Dispatcher] = None,
        system: Optional[SystemConfig] = None,
        queue: QueueSpec = "auto",
        profile: bool = False,
    ):
        if num_replicas <= 0:
            raise SimulationError(f"num_replicas must be positive, got {num_replicas}")
        if isinstance(runner, str):
            if system is None:
                raise SimulationError(
                    f"runner names backend {runner!r} but the cluster was built "
                    "without a system configuration"
                )
            runner = resolve_backend(runner, system)
        super().__init__(
            [ReplicaSpec(runner=runner) for _ in range(num_replicas)],
            model,
            dispatcher=dispatcher,
            batching=batching,
            queue=queue,
            profile=profile,
        )
        self.runner = runner
        self.batching = batching
