"""Sharded serving: one logical replica group spanning several device shards.

A :class:`ShardedReplicaGroup` serves a model whose embedding tables are
partitioned across ``num_shards`` device shards by a
:class:`~repro.sharding.plan.ShardingPlan`.  Each executed batch models the
paper's gather pipeline at fleet scale:

1. **Fan-out** — the batch's sparse lookups are drawn from the workload's
   trace model (so zipf / hot-cold skew shapes real row IDs) and routed to
   the shard owning each ``(table, row)``.
2. **Hot-row cache** — an optional per-shard
   :class:`~repro.sharding.cache.EmbeddingCache` intercepts lookups in
   front of the host-memory gather; hits skip the gather entirely.
3. **Per-shard gather** — each shard's host gather is priced from the
   existing runner cost model: the backend's ``EMB`` stage latency scaled
   by the shard's share of missed lookups.
4. **Fan-in** — non-coordinator shards ship their per-sample partial sums
   over a :class:`~repro.core.link.ChipletLink`; the straggler shard
   (gather + transfer) gates the embedding stage of the whole batch.

Everything rides the existing event core: arrivals, batch closes and batch
completions are :class:`repro.sim.engine.Simulator` events, and the group
reuses :class:`~repro.serving.replica.ReplicaServer` verbatim except for
the per-batch pricing hook.  With one shard and no cache the pricing hook
returns the runner's result object untouched, so the run is bit-identical
to the unsharded cluster path — the property the equivalence tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.chaos.faults import FaultSchedule

import numpy as np

from repro.backends.registry import resolve_backend
from repro.config.models import DTYPE_BYTES, DLRMConfig
from repro.config.system import SystemConfig
from repro.core.link import ChipletLink
from repro.errors import SimulationError
from repro.memsys.stats import CacheStats
from repro.results import InferenceResult, LatencyBreakdown
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.cluster import ClusterReport
from repro.serving.metrics import LatencyDistribution
from repro.serving.replica import (
    DesignPointRunner,
    ReplicaServer,
    ServiceModel,
    StreamOutcome,
    drive_stream,
)
from repro.sharding.cache import CacheConfig, EmbeddingCache
from repro.sharding.plan import ShardingPlan, ShardingStrategy, make_plan
from repro.sim.engine import QueueSpec, Simulator
from repro.sim.profile import SimProfile
from repro.workloads.arrivals import InferenceRequest
from repro.workloads.traces import TraceModel, UniformTrace
from repro.workloads.updates import EmbeddingUpdate, UpdateProcess
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ShardingStats:
    """Shard and cache accounting of one sharded serving run.

    Attributes:
        num_shards: Device shards in the group.
        strategy: Placement strategy of the plan.
        cache_policy: ``"lru"`` / ``"lfu"``, or ``None`` when cache-off.
        cache_capacity_rows: Per-shard cache capacity (``None`` cache-off).
        plan_imbalance: Max-over-mean resident bytes of the plan.
        shard_bytes: Resident embedding bytes per shard.
        cache: Hit/miss counters merged over every shard's cache.
        evictions: Rows evicted summed over shards.
        per_shard_lookups: Lookups *owned* by each shard (hits + misses).
        per_shard_gathered: Lookups each shard gathered from host memory
            (misses only; equals owned when cache-off).
        cross_shard_bytes: Partial-sum bytes shipped between shards.
        cross_shard_transfer_s: Link time of those transfers, summed.
        gather_s_total: Straggler-gated embedding-stage seconds, summed
            over executed batches.
        batches: Executed batch segments.
        total_lookups: Lookups drawn over the whole run.
    """

    num_shards: int
    strategy: str
    cache_policy: Optional[str]
    cache_capacity_rows: Optional[int]
    plan_imbalance: float
    shard_bytes: Tuple[float, ...]
    cache: CacheStats
    evictions: int
    per_shard_lookups: Tuple[int, ...]
    per_shard_gathered: Tuple[int, ...]
    cross_shard_bytes: float
    cross_shard_transfer_s: float
    gather_s_total: float
    batches: int
    total_lookups: int
    #: Lookups served by the *wrong* shard under re-hash failover — the
    #: run's correctness loss (0 without shard faults).
    degraded_lookups: int = 0
    #: Lookups served by the replica copy under promote failover.
    promoted_lookups: int = 0
    # ------------------------------------------------------------------
    # Freshness accounting (all zero/None on read-only runs, keeping the
    # zero-update path's record bit-identical modulo these defaults).
    #: Freshness mode of the update stream (``None`` without updates).
    update_mode: Optional[str] = None
    #: Embedding pushes applied over the run.
    update_events: int = 0
    #: Rows those pushes rewrote (before cache routing).
    update_rows: int = 0
    #: Cached rows dropped by invalidation pushes, summed over tiers.
    update_invalidations: int = 0
    #: Cached rows refreshed in place by write-through pushes.
    update_refreshes: int = 0
    #: Hits served from rows updated behind the cache (``"ignore"`` mode).
    stale_hits: int = 0
    #: Gather seconds spent applying write-through refreshes, summed.
    update_apply_s_total: float = 0.0
    #: Hit/miss counters of the shared second tier (``None`` when off).
    shared_cache: Optional[CacheStats] = None
    #: Misses the shared tier absorbed before the host gather.
    shared_hits: int = 0
    #: Link seconds spent fetching those shared-tier lines.
    shared_transfer_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def stale_hit_rate(self) -> float:
        """Share of cache hits that served rows a push had updated."""
        if self.cache.hits == 0:
            return 0.0
        return self.stale_hits / self.cache.hits

    @property
    def mean_gather_s(self) -> float:
        """Mean embedding-stage latency per executed batch."""
        if self.batches == 0:
            return 0.0
        return self.gather_s_total / self.batches

    @property
    def lookup_imbalance(self) -> float:
        """Max-over-mean of per-shard owned lookups (1.0 is perfect)."""
        total = sum(self.per_shard_lookups)
        if total == 0:
            return 1.0
        mean = total / len(self.per_shard_lookups)
        return max(self.per_shard_lookups) / mean

    @property
    def cache_enabled(self) -> bool:
        return self.cache_policy is not None


class _ShardingAccounting:
    """Mutable counters a :class:`ShardedReplicaServer` fills while serving."""

    def __init__(self, num_shards: int):
        self.owned = np.zeros(num_shards, dtype=np.int64)
        self.gathered = np.zeros(num_shards, dtype=np.int64)
        self.cross_shard_bytes = 0.0
        self.cross_shard_transfer_s = 0.0
        self.gather_s_total = 0.0
        self.batches = 0
        self.update_apply_s_total = 0.0
        self.shared_hits = 0
        self.shared_transfer_s = 0.0


class ShardedReplicaServer(ReplicaServer):
    """A :class:`ReplicaServer` whose batches execute on a shard group.

    Overrides only the pricing hook: every executed segment draws its
    sparse lookups from the trace model, routes them through the plan and
    the per-shard caches, and re-prices the runner result's ``EMB`` stage
    with the straggler shard's gather + transfer time.  All other event
    semantics (batching, FIFO device queue, completion events) are
    inherited unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        service: ServiceModel,
        batching: BatchingPolicy,
        plan: ShardingPlan,
        link: Optional[ChipletLink],
        trace_model: TraceModel,
        trace_rng: np.random.Generator,
        caches: Optional[List[EmbeddingCache]] = None,
        shared_cache: Optional[EmbeddingCache] = None,
        update_mode: Optional[str] = None,
        name: str = "sharded-group",
    ):
        super().__init__(sim, service, batching, name=name)
        self.plan = plan
        self.link = link
        self.trace_model = trace_model
        self.trace_rng = trace_rng
        self.caches = caches
        self.shared_cache = shared_cache
        self.accounting = _ShardingAccounting(plan.num_shards)
        # Freshness state (all inert on read-only runs).
        self.update_mode = update_mode
        self.update_events = 0
        self.update_rows = 0
        self._updates_active = False
        self._pending_update_s = np.zeros(plan.num_shards)
        self._row_cost_s: Optional[float] = None
        # Fault-injection state (all inert on fault-free runs).
        self._lost_shards: Dict[int, str] = {}
        self._link_slowdown = 1.0
        self.degraded_lookups = 0
        self.promoted_lookups = 0

    # ------------------------------------------------------------------
    # Fault-injection hooks (driven by repro.chaos.FaultInjector)
    # ------------------------------------------------------------------
    def lose_shard(self, shard: int, failover: str) -> bool:
        """Take one shard offline; False when it is already lost.

        While lost, lookups the plan routes to the shard fail over per
        ``failover``: ``"promote"`` sends them to the surviving shard
        holding the replica copy (the next live shard, wrapping);
        ``"rehash"`` spreads them over all survivors by row id, serving
        *wrong* rows — counted as degraded lookups (correctness loss).
        """
        if shard in self._lost_shards:
            return False
        if len(self._lost_shards) + 1 >= self.plan.num_shards:
            raise SimulationError(
                f"cannot lose shard {shard}: it is the group's last "
                "surviving shard"
            )
        self._lost_shards[shard] = failover
        return True

    def restore_shard(
        self, shard: int, fresh_cache: Optional[EmbeddingCache] = None
    ) -> bool:
        """Bring a lost shard back, with a cold hot-row cache when given.

        The fresh cache inherits the old one's hit/miss counters so the
        run's cache statistics stay continuous; only the *contents* are
        lost to the restart.
        """
        if shard not in self._lost_shards:
            return False
        del self._lost_shards[shard]
        if fresh_cache is not None and self.caches is not None:
            cold = self.caches[shard]
            fresh_cache.stats = cold.stats
            fresh_cache.evictions = cold.evictions
            fresh_cache.update_evictions = cold.update_evictions
            fresh_cache.update_refreshes = cold.update_refreshes
            fresh_cache.stale_hits = cold.stale_hits
            self.caches[shard] = fresh_cache
        return True

    def set_link_slowdown(self, factor: float) -> None:
        """Scale cross-shard transfer time (link degradation window)."""
        self._link_slowdown = factor

    def price_refill(self, resident_rows: int) -> Tuple[float, float]:
        """Price re-warming ``resident_rows`` cache rows after a restart.

        A restored shard comes back with a cold hot-row cache; every row
        the old cache held will be re-gathered from host memory before the
        cache is warm again.  That traffic is priced through the backend's
        own EMB cost model — per-lookup gather seconds derived from the
        default model's batch-1 result — so refill cost is comparable to
        the serving numbers on the same backend.  Returns
        ``(refill_seconds, refill_joules)``.
        """
        if resident_rows <= 0:
            return 0.0, 0.0
        model = self.service.model_for(None)
        lookups = sum(table.gathers for table in model.tables)
        if lookups <= 0:
            return 0.0, 0.0
        base = self.service.result(1, None)
        # Duck-typed runners may hand back a plain-dict breakdown whose
        # .get("EMB") is None; dense-only breakdowns price a refill at
        # zero rather than crashing on the division below.
        emb_s = base.breakdown.get("EMB") or 0.0
        if emb_s <= 0.0:
            return 0.0, 0.0
        refill_s = (emb_s / lookups) * resident_rows
        return refill_s, refill_s * base.power_watts

    def _remap_owners(self, owners: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Re-route lookups owned by lost shards to survivors."""
        owners = owners.copy()
        num_shards = self.plan.num_shards
        survivors = np.array(
            [s for s in range(num_shards) if s not in self._lost_shards],
            dtype=owners.dtype,
        )
        for shard, failover in self._lost_shards.items():
            mask = owners == shard
            count = int(np.count_nonzero(mask))
            if count == 0:
                continue
            if failover == "promote":
                # The replica copy lives on the next surviving shard
                # (wrapping), so the whole slice moves there.
                position = int(np.searchsorted(survivors, shard))
                owners[mask] = survivors[position % survivors.size]
                self.promoted_lookups += count
            else:
                owners[mask] = survivors[rows[mask] % survivors.size]
                self.degraded_lookups += count
        return owners

    # ------------------------------------------------------------------
    # Freshness hooks (driven by the update-stream event driver)
    # ------------------------------------------------------------------
    def _row_gather_s(self) -> float:
        """Per-lookup host-gather seconds of the backend's EMB cost model."""
        if self._row_cost_s is None:
            model = self.service.model_for(None)
            lookups = sum(table.gathers for table in model.tables)
            emb_s = self.service.result(1, None).breakdown.get("EMB") or 0.0
            self._row_cost_s = (
                emb_s / lookups if lookups > 0 and emb_s > 0.0 else 0.0
            )
        return self._row_cost_s

    def apply_update(self, update: EmbeddingUpdate) -> None:
        """Apply one embedding push to every cache tier at the current time.

        Rows route through the plan exactly like lookups do (pushes land
        on the owning shard's cache).  Write-through refreshes accrue the
        backend's per-row gather cost against the owning shard; the next
        executed batch pays it inside the straggler gate, modelling the
        refresh competing with reads for the shard's gather bandwidth.
        """
        self._updates_active = True
        self.update_events += 1
        rows = np.asarray(update.rows, dtype=np.int64)
        self.update_rows += int(rows.size)
        mode = self.update_mode or "invalidate"
        if self.caches is not None and rows.size:
            owners = self.plan.owner_of(update.table_index, rows)
            counts = np.bincount(owners, minlength=self.plan.num_shards)
            order = np.argsort(owners, kind="stable")
            sorted_rows = rows[order]
            ends = np.cumsum(counts)
            for shard in np.nonzero(counts)[0]:
                shard_rows = sorted_rows[ends[shard] - counts[shard] : ends[shard]]
                affected = self.caches[shard].apply_update(
                    update.table_index, shard_rows, mode
                )
                if mode == "write-through" and affected:
                    apply_s = affected * self._row_gather_s()
                    self._pending_update_s[int(shard)] += apply_s
                    self.accounting.update_apply_s_total += apply_s
        if self.shared_cache is not None and rows.size:
            # The shared tier is refreshed by the push pipeline itself, so
            # its write-through refreshes cost no serving-side gather time.
            self.shared_cache.apply_update(update.table_index, rows, mode)

    # ------------------------------------------------------------------
    def _execute_result(self, batch_size: int, model_name) -> InferenceResult:
        base = self.service.result(batch_size, model_name)
        accounting = self.accounting
        accounting.batches += 1
        model = self.service.model_for(model_name)
        if (
            self.plan.num_shards == 1
            and self.caches is None
            and self.shared_cache is None
        ):
            # Degenerate group: one shard owns everything and no cache
            # intercepts, so the unsharded result is returned *untouched*
            # (bit-identical to the plain cluster path).
            lookups = sum(batch_size * table.gathers for table in model.tables)
            accounting.owned[0] += lookups
            accounting.gathered[0] += lookups
            accounting.gather_s_total += base.breakdown.get("EMB")
            return base
        return self._priced_sharded(base, batch_size, model)

    def _priced_sharded(
        self, base: InferenceResult, batch_size: int, model: DLRMConfig
    ) -> InferenceResult:
        plan = self.plan
        num_shards = plan.num_shards
        accounting = self.accounting
        owned = np.zeros(num_shards, dtype=np.int64)
        gathered = np.zeros(num_shards, dtype=np.int64)
        contributed_tables = np.zeros(num_shards, dtype=np.int64)
        shared = self.shared_cache
        shared_lines = np.zeros(num_shards, dtype=np.int64) if shared is not None else None
        for table_index, table in enumerate(model.tables):
            count = batch_size * table.gathers
            if count == 0:
                continue
            rows = self.trace_model.draw(
                self.trace_rng, table.num_rows, count, table_index
            )
            owners = plan.owner_of(table_index, rows)
            if self._lost_shards:
                owners = self._remap_owners(owners, rows)
            counts = np.bincount(owners, minlength=num_shards)
            owned += counts
            contributed_tables += counts > 0
            if self.caches is None and shared is None:
                gathered += counts
                continue
            # One stable argsort groups each shard's rows contiguously in
            # their original draw order, so every cache sees the identical
            # reference stream the per-shard masking loop produced.
            order = np.argsort(owners, kind="stable")
            sorted_rows = rows[order]
            ends = np.cumsum(counts)
            for shard in np.nonzero(counts)[0]:
                shard_rows = sorted_rows[ends[shard] - counts[shard] : ends[shard]]
                if self.caches is not None:
                    hits = self.caches[shard].lookup(table_index, shard_rows)
                    if shared is None:
                        gathered[shard] += len(shard_rows) - int(hits.sum())
                        continue
                    miss_rows = shard_rows[~hits]
                else:
                    miss_rows = shard_rows
                if miss_rows.size:
                    # Local misses probe the shared tier next; its hits
                    # are fetched over the link instead of host-gathered.
                    shared_hits = shared.lookup(table_index, miss_rows)
                    absorbed = int(shared_hits.sum())
                    shared_lines[shard] += absorbed
                    gathered[shard] += miss_rows.size - absorbed

        total_lookups = int(owned.sum())
        emb_s = base.breakdown.get("EMB")
        row_bytes = model.embedding_dim * DTYPE_BYTES
        pending_s = self._pending_update_s if self._updates_active else None
        # The coordinator aggregates; pick the shard with the most owned
        # lookups (ties: lowest index) so the heaviest gather ships nothing.
        coordinator = int(np.argmax(owned)) if total_lookups else 0
        straggler_s = 0.0
        for shard in range(num_shards):
            apply_s = float(pending_s[shard]) if pending_s is not None else 0.0
            if owned[shard] == 0 and apply_s == 0.0:
                continue
            gather_s = (
                emb_s * (float(gathered[shard]) / total_lookups)
                if total_lookups
                else 0.0
            )
            fetch_s = 0.0
            if shared_lines is not None and shared_lines[shard]:
                # Shared-tier hits stream over the link at row granularity,
                # fully pipelined up to the link's outstanding-request cap.
                estimate = self.link.gather_stream(
                    int(shared_lines[shard]),
                    outstanding_requests=self.link.config.max_outstanding_requests,
                )
                fetch_s = estimate.latency_s
                if self._link_slowdown != 1.0:
                    fetch_s *= self._link_slowdown
                accounting.shared_hits += int(shared_lines[shard])
                accounting.shared_transfer_s += fetch_s
            transfer_s = 0.0
            if (
                shard != coordinator
                and self.link is not None
                and contributed_tables[shard] > 0
            ):
                transfer_bytes = batch_size * int(contributed_tables[shard]) * row_bytes
                estimate = self.link.bulk_transfer(transfer_bytes)
                transfer_s = estimate.latency_s
                if self._link_slowdown != 1.0:
                    transfer_s *= self._link_slowdown
                accounting.cross_shard_bytes += transfer_bytes
                accounting.cross_shard_transfer_s += transfer_s
            straggler_s = max(straggler_s, gather_s + fetch_s + transfer_s + apply_s)
        if pending_s is not None:
            # Pending write-through refreshes are consumed by this batch.
            pending_s[:] = 0.0

        accounting.owned += owned
        accounting.gathered += gathered
        accounting.gather_s_total += straggler_s

        breakdown = LatencyBreakdown()
        replaced = False
        for stage, seconds in base.breakdown.stages.items():
            if stage == "EMB":
                breakdown.add(stage, straggler_s)
                replaced = True
            else:
                breakdown.add(stage, seconds)
        if not replaced:
            breakdown.add("EMB", straggler_s)
        return InferenceResult(
            design_point=base.design_point,
            model_name=base.model_name,
            batch_size=batch_size,
            breakdown=breakdown,
            embedding_traffic=base.embedding_traffic,
            mlp_traffic=base.mlp_traffic,
            power_watts=base.power_watts,
            extra=dict(base.extra),
        )

    # ------------------------------------------------------------------
    def sharding_stats(self) -> ShardingStats:
        """Freeze the run's shard/cache counters into a report record."""
        accounting = self.accounting
        cache_stats = CacheStats()
        evictions = 0
        update_invalidations = 0
        update_refreshes = 0
        stale_hits = 0
        if self.caches is not None:
            for cache in self.caches:
                cache_stats = cache_stats.merge(cache.stats)
                evictions += cache.evictions
                update_invalidations += cache.update_evictions
                update_refreshes += cache.update_refreshes
                stale_hits += cache.stale_hits
        if self.shared_cache is not None:
            update_invalidations += self.shared_cache.update_evictions
            update_refreshes += self.shared_cache.update_refreshes
            stale_hits += self.shared_cache.stale_hits
        first_cache = self.caches[0] if self.caches else None
        return ShardingStats(
            num_shards=self.plan.num_shards,
            strategy=self.plan.strategy,
            cache_policy=first_cache.policy if first_cache else None,
            cache_capacity_rows=first_cache.capacity_rows if first_cache else None,
            plan_imbalance=self.plan.imbalance,
            shard_bytes=self.plan.shard_bytes,
            cache=cache_stats,
            evictions=evictions,
            per_shard_lookups=tuple(int(value) for value in accounting.owned),
            per_shard_gathered=tuple(int(value) for value in accounting.gathered),
            cross_shard_bytes=accounting.cross_shard_bytes,
            cross_shard_transfer_s=accounting.cross_shard_transfer_s,
            gather_s_total=accounting.gather_s_total,
            batches=accounting.batches,
            total_lookups=int(accounting.owned.sum()),
            degraded_lookups=self.degraded_lookups,
            promoted_lookups=self.promoted_lookups,
            update_mode=self.update_mode,
            update_events=self.update_events,
            update_rows=self.update_rows,
            update_invalidations=update_invalidations,
            update_refreshes=update_refreshes,
            stale_hits=stale_hits,
            update_apply_s_total=accounting.update_apply_s_total,
            shared_cache=(
                self.shared_cache.stats if self.shared_cache is not None else None
            ),
            shared_hits=accounting.shared_hits,
            shared_transfer_s=accounting.shared_transfer_s,
        )


class _TrackedRequests:
    """Iterator wrapper exposing ``exhausted`` (True once the source ends).

    Exposing the attribute deliberately flips the stream driver into its
    unbuffered one-pull-per-event mode, so ``exhausted`` becomes True at
    the moment the *last arrival fires* in simulated time — the signal the
    update driver uses to stop pulling pushes from its infinite stream.
    """

    def __init__(self, requests: Iterable[InferenceRequest]):
        self._iterator = iter(requests)
        self.exhausted = False

    def __iter__(self) -> "_TrackedRequests":
        return self

    def __next__(self) -> InferenceRequest:
        try:
            return next(self._iterator)
        except StopIteration:
            self.exhausted = True
            raise


class _UpdateDriver:
    """Feeds an update stream into the engine, one event outstanding.

    Mirrors the request-side stream driver: exactly one ``update:push``
    event is scheduled at a time, each firing applies the push to the
    shard group's cache tiers and pulls the next one.  The stream is
    infinite, so the driver stops pulling once the request stream is
    exhausted and the group has no work in flight (at most one trailing
    push fires after the final completion — it finds every batch done and
    schedules nothing further).
    """

    def __init__(
        self,
        sim: Simulator,
        replica: ShardedReplicaServer,
        updates: Iterable[EmbeddingUpdate],
        requests: _TrackedRequests,
    ):
        self.sim = sim
        self.replica = replica
        self.updates = iter(updates)
        self.requests = requests

    def arm(self) -> None:
        self._pump()

    def _pump(self) -> None:
        update = next(self.updates, None)
        if update is None:  # pragma: no cover - streams are infinite
            return
        self.sim.schedule_at(
            update.time_s, lambda: self._fire(update), label="update:push"
        )

    def _fire(self, update: EmbeddingUpdate) -> None:
        self.replica.apply_update(update)
        if not self.requests.exhausted or self.replica.outstanding > 0:
            self._pump()


class ShardedReplicaGroup:
    """A model served by ``num_shards`` embedding shards behind one queue.

    The group is one *logical* replica: requests join a single batching
    queue, every batch fans out to all owning shards and fans back in
    through the coordinator, and the straggler shard gates completion.

    Args:
        runner: Design-point runner backing the shard devices, or a
            backend-registry name resolved against ``system``.
        model: Served DLRM configuration.
        num_shards: Shard count when no explicit ``plan`` is given.
        strategy: Placement strategy name/instance for the implicit plan.
        plan: Explicit :class:`~repro.sharding.plan.ShardingPlan`
            (overrides ``num_shards``/``strategy``); must describe ``model``.
        cache: Optional :class:`~repro.sharding.cache.CacheConfig`; one
            cache instance is built per shard per stream.
        batching: Batching policy of the group's shared queue.
        system: Hardware platform — prices the cross-shard link and
            resolves backend names; defaults to the runner's own system.
        queue: Event-queue selector forwarded to the engine.
        profile: Record a per-event-label engine profile for every serve;
            the latest one is exposed as :attr:`last_profile`.
        updates: Optional :class:`~repro.workloads.updates.UpdateProcess`;
            its pushes ride the same event engine as arrivals, driving the
            cache tiers per the process's freshness mode.  ``None`` keeps
            the read-only path bit-identical.
        shared_cache: Optional :class:`~repro.sharding.cache.CacheConfig`
            for a second cache tier shared across every shard; local
            misses probe it before the host gather, and its hits are
            priced as row-granularity streams over the system link.
    """

    def __init__(
        self,
        runner: Union[DesignPointRunner, str],
        model: DLRMConfig,
        num_shards: int = 1,
        strategy: Union[str, ShardingStrategy] = "table",
        plan: Optional[ShardingPlan] = None,
        cache: Optional[CacheConfig] = None,
        batching: Optional[BatchingPolicy] = None,
        system: Optional[SystemConfig] = None,
        queue: QueueSpec = "auto",
        profile: bool = False,
        updates: Optional[UpdateProcess] = None,
        shared_cache: Optional[CacheConfig] = None,
    ):
        if isinstance(runner, str):
            if system is None:
                raise SimulationError(
                    f"group names backend {runner!r} but was built without a "
                    "system configuration"
                )
            runner = resolve_backend(runner, system)
        self.runner = runner
        self.model = model
        if plan is None:
            plan = make_plan(model, num_shards, strategy)
        elif plan.model != model:
            raise SimulationError(
                f"plan partitions model {plan.model.name!r} but the group "
                f"serves {model.name!r}"
            )
        self.plan = plan
        if cache is not None and not isinstance(cache, CacheConfig):
            raise SimulationError(f"cache must be a CacheConfig or None, got {cache!r}")
        self.cache_config = cache
        if shared_cache is not None and not isinstance(shared_cache, CacheConfig):
            raise SimulationError(
                f"shared_cache must be a CacheConfig or None, got {shared_cache!r}"
            )
        self.shared_cache_config = shared_cache
        if updates is not None and not isinstance(updates, UpdateProcess):
            raise SimulationError(
                f"updates must be an UpdateProcess or None, got {updates!r}"
            )
        self.updates = updates
        self.batching = batching if batching is not None else default_batching()
        self.system = system if system is not None else getattr(runner, "system", None)
        if self.plan.num_shards > 1 and self.system is None:
            raise SimulationError(
                "a multi-shard group needs a system configuration to price "
                "cross-shard transfers"
            )
        if self.shared_cache_config is not None and self.system is None:
            raise SimulationError(
                "a shared cache tier needs a system configuration to price "
                "its link fetches"
            )
        self.queue = queue
        self.profile = profile
        #: Engine profile of the most recent serve (``None`` until the
        #: first profiled run).
        self.last_profile: Optional[SimProfile] = None
        # Shared runner-prediction cache, one per group (mirrors clusters).
        self._service_cache: Dict = {}
        #: Conservation counters of the most recent serve call.
        self.last_outcome: Optional[StreamOutcome] = None

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def design_point(self) -> str:
        return self.runner.design_point

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Union[Sequence[InferenceRequest], Iterable[InferenceRequest]],
        trace: Optional[TraceModel] = None,
        trace_seed: Union[int, np.random.SeedSequence] = 0,
        report_label: Optional[str] = None,
        faults: Optional["FaultSchedule"] = None,
        update_seed: Union[int, np.random.SeedSequence] = 0,
    ) -> ClusterReport:
        """Serve a request stream through the shard group.

        ``trace`` shapes the row IDs every batch gathers (uniform by
        default); ``trace_seed`` seeds the draw stream.  Prefer
        :meth:`serve_workload`, which wires both from the workload.
        ``faults`` injects a :class:`~repro.chaos.faults.FaultSchedule`
        (shard loss, link degradation, brownout); an empty or ``None``
        schedule takes the fault-free path verbatim.  ``update_seed``
        seeds the group's :class:`~repro.workloads.updates.UpdateProcess`
        push stream (unused when the group has no update stream).
        """
        if isinstance(requests, Sequence) and not requests:
            raise SimulationError("cannot serve an empty request stream")
        chaos = faults is not None and not faults.empty
        sim = Simulator(queue=self.queue, profile=self.profile)
        service = ServiceModel(self.runner, self.model, self._service_cache)
        caches = None
        if self.cache_config is not None:
            caches = [
                self.cache_config.build(self.model)
                for _ in range(self.plan.num_shards)
            ]
        shared_cache = (
            self.shared_cache_config.build(self.model)
            if self.shared_cache_config is not None
            else None
        )
        updates = self.updates
        link = ChipletLink(self.system.link) if self.system is not None else None
        trace_model = trace if trace is not None else UniformTrace()
        replica = ShardedReplicaServer(
            sim,
            service,
            self.batching,
            plan=self.plan,
            link=link,
            trace_model=trace_model,
            trace_rng=np.random.default_rng(trace_seed),
            caches=caches,
            shared_cache=shared_cache,
            update_mode=updates.mode if updates is not None else None,
            name=f"{self.runner.design_point}:0",
        )
        if updates is not None:
            # Pushes and arrivals interleave on one event clock.  The
            # request stream is wrapped so the update driver can observe
            # its exhaustion and stop pulling from the infinite push
            # stream; ``updates is None`` skips all of this, keeping the
            # read-only path bit-identical.
            if isinstance(requests, Sequence):
                requests = sorted(requests, key=lambda request: request.arrival_time_s)
            requests = _TrackedRequests(requests)
            _UpdateDriver(
                sim,
                replica,
                updates.events(self.model, seed=update_seed, default_trace=trace_model),
                requests,
            ).arm()
        injector = None
        if chaos:
            # Imported lazily: repro.chaos depends on this module's report
            # types, so the top-level import would be circular.
            from repro.chaos.injector import FaultInjector

            injector = FaultInjector(
                sim,
                faults,
                sharded=replica,
                cache_config=self.cache_config,
                model=self.model,
            )
            injector.arm()
            outcome = drive_stream(
                sim,
                [replica],
                requests,
                lambda request: replica,
                lost=injector.shed_count,
            )
        else:
            outcome = drive_stream(sim, [replica], requests, lambda request: replica)
        if outcome.scheduled == 0:
            raise SimulationError("cannot serve an empty request stream")
        self.last_profile = sim.profile
        self.last_outcome = outcome

        label = report_label or self.model.name
        report = replica.build_report(label)
        cluster_report = ClusterReport(
            design_point=self.design_point,
            model_name=label,
            num_replicas=self.plan.num_shards,
            per_replica=[report],
            latency=LatencyDistribution(report.latency.samples_s.tolist()),
            dispatcher="shard-fan-out",
            sharding=replica.sharding_stats(),
        )
        if injector is not None:
            incidents = injector.finalize([report], horizon_s=sim.now)
            cluster_report = replace(cluster_report, incidents=incidents)
        return cluster_report

    def serve_workload(
        self,
        workload: Workload,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
        faults: Optional["FaultSchedule"] = None,
    ) -> ClusterReport:
        """Serve a workload: its arrivals drive the queue, its trace model
        shapes every batch's gathered rows (the path where zipf / hot-cold
        skew actually changes cache hit rates and shard traffic)."""
        if workload.mix is not None:
            if workload.mix.is_multi_model:
                raise SimulationError(
                    "sharded groups serve a single model; multi-model traffic "
                    "mixes are not supported"
                )
            # A single-model mix must name the sharded model — anything else
            # would pass the gate and fail mid-run at batch pricing.
            mixed = workload.models[0]
            if mixed != self.model:
                raise SimulationError(
                    f"workload mix targets model {mixed.name!r} but the group "
                    f"shards {self.model.name!r}"
                )
        if self.updates is not None:
            # SeedSequence children are keyed by spawn index, so the first
            # three of spawn(4) equal spawn(3)'s — the trace stream is
            # untouched and the update stream gets its own child.
            _, _, trace_seed, update_seed = np.random.SeedSequence(seed).spawn(4)
        else:
            _, _, trace_seed = np.random.SeedSequence(seed).spawn(3)
            update_seed = 0
        return self.serve(
            workload.requests(
                duration_s=duration_s, num_requests=num_requests, seed=seed
            ),
            trace=workload.trace,
            trace_seed=trace_seed,
            faults=faults,
            update_seed=update_seed,
        )
