"""Event-driven serving replica: one batching queue + one device on a Simulator.

This is the core the serving stack is built on.  A :class:`ReplicaServer`
lives on a shared :class:`repro.sim.engine.Simulator`; arrivals, batch-close
timers, device starts and completions are all scheduled events, so batching
policies can react to the queue as it evolves (close when the device idles,
shrink the window as the queue deepens) and dispatchers can inspect live
replica state at each arrival.

The replica reproduces the legacy replay semantics exactly for open-loop
policies: a batch closed at time ``t`` enters a FIFO device queue, and the
device serves batches in close order starting each at
``max(close_time, device_free_time)`` — the same ``start = max(ready,
free)`` recurrence the legacy simulator iterated, now emerging from event
order.

Memory discipline: replicas hold request objects only while they are in
flight (pending batch, closed-batch queue, executing batch).  Everything a
report needs about the past is kept as counters and running aggregates, so
a multi-million-request streaming run (see :func:`drive_stream`) stays
O(max in-flight) in resident requests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.results import InferenceResult
from repro.serving.batching import BatchingPolicy, BatchSignal
from repro.serving.metrics import ExecutedBatch, LatencyDistribution, ServingReport
from repro.sim.engine import Event, Simulator
from repro.workloads.arrivals import InferenceRequest


class DesignPointRunner(Protocol):
    """The slice of the runner interface the serving simulation needs."""

    @property
    def design_point(self) -> str: ...

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult: ...


class ServiceModel:
    """Caches the design-point runner's per-batch-size predictions.

    Runner calls are deterministic in ``(model, batch_size)``, so one cache
    per (runner, model-set) pair serves every replica and dispatcher
    estimate.  Beyond the default model, a service may carry *extra* models
    (one per :class:`~repro.workloads.mix.TrafficMix` component) addressed
    by name, which is what lets one replica price multi-model traffic.
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        cache: Optional[Dict[Tuple[str, int], InferenceResult]] = None,
        extra_models: Sequence[DLRMConfig] = (),
    ):
        self.runner = runner
        self.model = model
        self._models: Dict[Optional[str], DLRMConfig] = {None: model, model.name: model}
        for extra in extra_models:
            existing = self._models.get(extra.name)
            if existing is not None and existing != extra:
                raise SimulationError(
                    f"two different model configurations share the name {extra.name!r}"
                )
            self._models[extra.name] = extra
        self._cache: Dict[Tuple[str, int], InferenceResult] = (
            cache if cache is not None else {}
        )
        #: True when the service prices more than one model configuration
        #: (checked on every closed batch, so resolved once here).
        self.multi_model: bool = (
            len({config.name for config in self._models.values()}) > 1
        )

    @property
    def design_point(self) -> str:
        return self.runner.design_point

    def model_for(self, model_name: Optional[str]) -> DLRMConfig:
        config = self._models.get(model_name)
        if config is None:
            raise SimulationError(
                f"replica cannot price model {model_name!r}; it serves: "
                f"{sorted(name for name in self._models if name)}"
            )
        return config

    def result(self, batch_size: int, model_name: Optional[str] = None) -> InferenceResult:
        config = self.model_for(model_name)
        key = (config.name, batch_size)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.runner.run(config, batch_size)
            self._cache[key] = cached
        return cached


#: One device occupancy: when it starts, when it ends, and the arrival
#: times of the requests it serves.  Completion accounting only needs the
#: arrival times; the executing batch's request objects are kept on the
#: replica (``_executing``) so a chaos crash can salvage them, and are
#: released when the batch completes.
_Segment = Tuple[float, float, List[float]]

#: Below this segment size the scalar completion loop beats numpy's
#: fixed per-call overhead; above it the vectorized path wins.
_VECTORIZE_MIN = 16


class ReplicaServer:
    """One device behind a batching queue, driven by simulator events.

    Args:
        sim: The shared event simulator.
        service: Cached runner predictions for this replica's device.
        batching: Batching policy (immutable; may be shared across replicas).
        name: Label used on scheduled events (debugging/tracing).
        record_latency_samples: Keep every per-request latency/queueing
            sample for exact percentile reporting (the default).  Disable
            for huge streaming runs: counters and running aggregates are
            still maintained, but :meth:`build_report` (which needs the full
            distribution) becomes unavailable.
    """

    def __init__(
        self,
        sim: Simulator,
        service: ServiceModel,
        batching: BatchingPolicy,
        name: str = "replica",
        record_latency_samples: bool = True,
    ):
        self.sim = sim
        self.service = service
        self.batching = batching
        self.name = name
        self.record_latency_samples = record_latency_samples
        # Open batch accumulating arrivals (+ arrival times, kept in step so
        # batch completion can vectorize over them without re-touching the
        # request objects).
        self._pending: List[InferenceRequest] = []
        self._pending_times: List[float] = []
        self._close_timer: Optional[Event] = None
        # Closed batches waiting for the device, FIFO.
        self._batch_queue: Deque[
            Tuple[float, List[InferenceRequest], List[float]]
        ] = deque()
        self._busy = False
        self._in_flight = 0
        self._outstanding = 0
        self.device_free_at = 0.0
        # Accounting: counters + aggregates (O(1) memory), optional samples.
        self.arrival_count = 0
        self.last_arrival_s = 0.0
        self.completed_count = 0
        self.peak_outstanding = 0
        self.latency_sum_s = 0.0
        self.latency_max_s = 0.0
        self.queueing_sum_s = 0.0
        self.batch_count = 0
        self.batch_size_sum = 0
        self.last_finish_s = 0.0
        # Per-batch boundary records; like the latency samples, only kept
        # when sample recording is on — otherwise a long streaming run would
        # retain O(num batches) memory through these records.
        self.executed: List[ExecutedBatch] = []
        self.request_latency_s: List[float] = []
        self.request_queueing_s: List[float] = []
        self.busy_time_s = 0.0
        self.energy_joules = 0.0
        #: Invoked with the completed-request count of each finished batch;
        #: installed by :func:`drive_stream` to track global conservation.
        self.completion_listener: Optional[Callable[[int], None]] = None
        #: Multiplies every executed segment's duration (chaos brownouts
        #: inflate it above 1.0; the fault-free value of exactly 1.0 skips
        #: the multiply so untouched runs stay bit-identical).
        self.latency_multiplier = 1.0
        # In-flight execution state a chaos crash() needs to roll back:
        # the scheduled completion event and one tuple of (start, finish,
        # previous last_finish_s, busy/energy deltas, segment count, batch).
        self._completion_event: Optional[Event] = None
        self._executing: Optional[
            Tuple[float, float, float, float, float, int, List[InferenceRequest]]
        ] = None

    # -- live state inspected by dispatchers ---------------------------
    @property
    def device_idle(self) -> bool:
        """True when the device has nothing running and nothing queued."""
        return not self._busy and not self._batch_queue

    @property
    def outstanding(self) -> int:
        """Requests routed here that have not yet completed.

        Maintained as a counter (incremented per arrival, decremented per
        completed batch) so dispatchers and autoscalers can poll it per
        event without re-summing the batch queue.
        """
        return self._outstanding

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def mean_latency_s(self) -> float:
        """Running mean request latency (available even without samples)."""
        if self.completed_count == 0:
            return 0.0
        return self.latency_sum_s / self.completed_count

    def estimated_backlog_s(self, now: float) -> float:
        """Predicted time to drain everything currently routed here.

        Accounts for the device's speed, so a fast replica with a deeper
        queue can legitimately beat a slow idle one under least-loaded
        dispatch.
        """
        backlog = max(self.device_free_at - now, 0.0) if self._busy else 0.0
        for _, batch, _ in self._batch_queue:
            backlog += self._batch_cost_s(batch)
        if self._pending:
            backlog += self._batch_cost_s(self._pending)
        return backlog

    def _batch_cost_s(self, batch: Sequence[InferenceRequest]) -> float:
        """Predicted execution time of one batch, segment-accurate for mixes."""
        if not self.service.multi_model:
            size = self.batching.execution_batch_size(len(batch))
            return self.service.result(size).latency_seconds
        return sum(
            self.service.result(
                self.batching.execution_batch_size(len(group)), model_name
            ).latency_seconds
            for group, model_name in self._segment_batch(list(batch))
        )

    # -- event handlers ------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept a request at the current simulated time."""
        now = self.sim.now
        self.arrival_count += 1
        arrival_time = request.arrival_time_s
        if arrival_time > self.last_arrival_s:
            self.last_arrival_s = arrival_time
        self._pending.append(request)
        self._pending_times.append(arrival_time)
        outstanding = self._outstanding + 1
        self._outstanding = outstanding
        if outstanding > self.peak_outstanding:
            self.peak_outstanding = outstanding
        signal = self.batching.on_enqueue(
            self._pending, now, not self._busy and not self._batch_queue
        )
        # _apply() inlined: submit runs once per request, the two attribute
        # checks are not worth a call there.
        if signal.timer_at is not None:
            self._arm_timer(signal.timer_at)
        if signal.close and self._pending:
            self._close_batch(now)

    def flush(self) -> None:
        """Close any pending batch immediately (end-of-stream drain)."""
        if self._pending:
            self._close_batch(self.sim.now)

    def _apply(self, signal: BatchSignal, now: float) -> None:
        if signal.timer_at is not None:
            self._arm_timer(signal.timer_at)
        if signal.close and self._pending:
            self._close_batch(now)

    def _arm_timer(self, time: float) -> None:
        if self._close_timer is not None:
            self._close_timer.cancel()
        self._close_timer = self.sim.schedule_at(
            max(time, self.sim.now), self._on_timer, label=f"{self.name}:batch-close"
        )

    def _on_timer(self) -> None:
        self._close_timer = None
        if not self._pending:
            return
        now = self.sim.now
        signal = self.batching.on_timer(self._pending, now, self.device_idle)
        self._apply(signal, now)

    def _close_batch(self, now: float) -> None:
        if self._close_timer is not None:
            self._close_timer.cancel()
            self._close_timer = None
        batch = self._pending
        times = self._pending_times
        self._pending = []
        self._pending_times = []
        self._batch_queue.append((now, batch, times))
        self._maybe_start()

    def _segment_batch(
        self, batch: List[InferenceRequest]
    ) -> List[Tuple[List[InferenceRequest], Optional[str]]]:
        """Split a closed batch into per-model execution segments.

        Single-model services (the common case) execute the batch as one
        segment; mixed-traffic batches execute one segment per target model,
        back to back, in first-appearance order.
        """
        if not self.service.multi_model:
            return [(batch, None)]
        groups: Dict[Optional[str], List[InferenceRequest]] = {}
        order: List[Optional[str]] = []
        for request in batch:
            key = request.model_name
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(request)
        return [(groups[key], key) for key in order]

    def _execute_result(
        self, batch_size: int, model_name: Optional[str]
    ) -> InferenceResult:
        """Price one executed segment (hook: sharded replicas price per batch)."""
        return self.service.result(batch_size, model_name)

    def _maybe_start(self) -> None:
        if self._busy or not self._batch_queue:
            return
        ready, batch, times = self._batch_queue.popleft()
        start = self.sim.now
        segments: List[_Segment] = []
        clock = start
        previous_finish = self.last_finish_s
        busy_delta = 0.0
        energy_delta = 0.0
        if not self.service.multi_model:
            segmented = [(batch, None, times)]
        else:
            segmented = [
                (group, model_name, [request.arrival_time_s for request in group])
                for group, model_name in self._segment_batch(batch)
            ]
        for group, model_name, group_times in segmented:
            result = self._execute_result(
                self.batching.execution_batch_size(len(group)), model_name
            )
            duration = result.latency_seconds
            if self.latency_multiplier != 1.0:
                duration *= self.latency_multiplier
            seg_start = clock
            clock = seg_start + duration
            busy_delta += duration
            energy_delta += result.energy_joules
            self.busy_time_s += duration
            self.energy_joules += result.energy_joules
            self.batch_count += 1
            self.batch_size_sum += len(group)
            if clock > self.last_finish_s:
                self.last_finish_s = clock
            if self.record_latency_samples:
                self.executed.append(
                    ExecutedBatch(
                        ready_time_s=ready,
                        start_time_s=seg_start,
                        finish_time_s=clock,
                        batch_size=len(group),
                    )
                )
            segments.append((seg_start, clock, group_times))
        finish = clock
        self._busy = True
        self._in_flight = len(batch)
        self.device_free_at = finish
        self._executing = (
            start,
            finish,
            previous_finish,
            busy_delta,
            energy_delta,
            len(segmented),
            batch,
        )
        self._completion_event = self.sim.schedule_at(
            finish,
            lambda segs=segments: self._on_complete(segs),
            label=f"{self.name}:complete",
        )

    def crash(self) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
        """Chaos hook: kill the device mid-flight at the current sim time.

        Cancels any batch-close timer and the in-flight completion event,
        rolls the executing batch's accounting back to the crash instant
        (the device is charged the busy time and energy it actually burned
        before dying, but completes nothing), removes every in-flight
        request from this replica's counters, and returns them as
        ``(queued, executing)`` lists for the caller to re-dispatch or
        shed.  Afterwards the replica is clean: idle, empty queues, and
        per-replica conservation (``completed == arrivals``) still holds.
        """
        now = self.sim.now
        queued: List[InferenceRequest] = []
        if self._close_timer is not None:
            self._close_timer.cancel()
            self._close_timer = None
        if self._pending:
            queued.extend(self._pending)
            self._pending = []
            self._pending_times = []
        for _, batch, _ in self._batch_queue:
            queued.extend(batch)
        self._batch_queue.clear()
        executing: List[InferenceRequest] = []
        if self._busy:
            start, finish, previous_finish, busy_delta, energy_delta, seg_count, batch = (
                self._executing
            )
            executing.extend(batch)
            self._completion_event.cancel()
            span = finish - start
            burned = min(max(now - start, 0.0), span) / span if span > 0.0 else 1.0
            self.busy_time_s -= busy_delta * (1.0 - burned)
            self.energy_joules -= energy_delta * (1.0 - burned)
            self.batch_count -= seg_count
            self.batch_size_sum -= len(batch)
            if self.record_latency_samples:
                del self.executed[len(self.executed) - seg_count :]
            self.last_finish_s = previous_finish
            self._busy = False
            self._in_flight = 0
            self.device_free_at = now
        self._completion_event = None
        self._executing = None
        removed = len(queued) + len(executing)
        self.arrival_count -= removed
        self._outstanding -= removed
        return queued, executing

    def _on_complete(self, segments: List[_Segment]) -> None:
        self._completion_event = None
        self._executing = None
        completed = 0
        record = self.record_latency_samples
        for seg_start, seg_finish, times in segments:
            count = len(times)
            if count >= _VECTORIZE_MIN:
                # Chunk-vectorized accounting: one numpy pass per segment
                # instead of one Python iteration per request.  Latency and
                # queueing values are elementwise identical to the scalar
                # path; only the *order of additions* into the running sums
                # differs (per-segment subtotal vs per-request), which no
                # report or artifact depends on.
                arrivals = np.asarray(times)
                latencies = seg_finish - arrivals
                queueings = seg_start - arrivals
                self.latency_sum_s += float(latencies.sum())
                self.queueing_sum_s += float(queueings.sum())
                peak = float(latencies.max())
                if peak > self.latency_max_s:
                    self.latency_max_s = peak
                if record:
                    self.request_latency_s.extend(latencies.tolist())
                    self.request_queueing_s.extend(queueings.tolist())
            else:
                for arrival_time in times:
                    latency = seg_finish - arrival_time
                    queueing = seg_start - arrival_time
                    self.latency_sum_s += latency
                    self.queueing_sum_s += queueing
                    if latency > self.latency_max_s:
                        self.latency_max_s = latency
                    if record:
                        self.request_latency_s.append(latency)
                        self.request_queueing_s.append(queueing)
            completed += count
        self.completed_count += completed
        self._outstanding -= completed
        self._busy = False
        self._in_flight = 0
        if self.completion_listener is not None:
            self.completion_listener(completed)
        # Only a truly idle device (no closed batches waiting) triggers the
        # policy hook; with work still queued, greedy policies should keep
        # accumulating the pending batch.
        if self._pending and not self._batch_queue:
            signal = self.batching.on_device_idle(self._pending, self.sim.now)
            self._apply(signal, self.sim.now)
        self._maybe_start()

    # -- reporting -----------------------------------------------------
    def build_report(self, model_name: str) -> ServingReport:
        """Summarize everything this replica served into a ServingReport."""
        if self.batch_count == 0:
            raise SimulationError(f"{self.name} executed no batches")
        completed = self.completed_count
        if completed != self.arrival_count:
            raise SimulationError(
                f"{self.name} lost requests: {self.arrival_count} arrived, "
                f"{completed} completed"
            )
        if not self.record_latency_samples:
            raise SimulationError(
                f"{self.name} ran with latency samples disabled; percentile "
                "reports are unavailable (read the counters/aggregates instead)"
            )
        makespan = max(batch.finish_time_s for batch in self.executed)
        return ServingReport(
            design_point=self.service.design_point,
            model_name=model_name,
            offered_load_qps=completed / max(self.last_arrival_s, 1e-12),
            completed_requests=completed,
            makespan_s=makespan,
            latency=LatencyDistribution(self.request_latency_s),
            queueing=LatencyDistribution(self.request_queueing_s),
            average_batch_size=sum(b.batch_size for b in self.executed)
            / len(self.executed),
            device_busy_s=self.busy_time_s,
            energy_joules=self.energy_joules,
            extra={"num_batches": float(len(self.executed))},
            executed_batches=tuple(self.executed),
            ordered_latency_s=tuple(self.request_latency_s),
        )


@dataclass(frozen=True)
class StreamOutcome:
    """What a :func:`drive_stream` run did, in counters.

    Attributes:
        scheduled: Requests pulled from the stream and scheduled.
        completed: Requests that finished execution.
        peak_resident: Largest number of requests materialized (pulled but
            not yet completed) at any instant — the memory high-water mark
            of the streaming run, bounded by the in-flight work plus the
            single look-ahead arrival the driver keeps scheduled.
        shed: Requests dropped by chaos fault injection (crashed replicas
            whose in-flight work was not re-dispatched, or arrivals during
            a total outage).  Zero on every fault-free run; conservation
            holds as ``scheduled == completed + shed``.
    """

    scheduled: int
    completed: int
    peak_resident: int
    shed: int = 0


#: Arrivals pulled from the stream per refill: amortizes the generator
#: round-trip over a constant-size block without changing event order (the
#: driver still schedules exactly one arrival event ahead of the clock).
_STREAM_CHUNK = 1024


class _StreamDriver:
    """Pulls arrivals from an iterator one event at a time.

    Exactly one arrival *event* is outstanding at any moment: when it
    fires, the driver first schedules its successor (so simultaneous
    arrivals keep their stream order ahead of any timers the submission
    arms) and then routes the request.  The iterator itself is drained in
    :data:`_STREAM_CHUNK` blocks, so memory is O(chunk) — constant in
    stream length.

    Streams that expose live arrival accounting (an ``exhausted``
    attribute, e.g. the autoscaler's counting wrapper) are pulled one
    request per event instead: controllers observe their counters between
    events, so draining them a chunk ahead of simulated time would make
    exhaustion and arrival-rate observations run ahead of the clock.
    """

    def __init__(
        self,
        sim: Simulator,
        iterator: Iterator[InferenceRequest],
        route: Callable[[InferenceRequest], "ReplicaServer"],
        lost: Optional[Callable[[], int]] = None,
    ):
        self.sim = sim
        self.iterator = iterator
        self.route = route
        self.lost = lost
        self.scheduled = 0
        self.completed = 0
        self.peak_resident = 0
        self._current: Optional[InferenceRequest] = None
        self._last_time = 0.0
        self._buffer: List[InferenceRequest] = []
        self._next = 0
        self._buffered = not hasattr(iterator, "exhausted")
        # Arrivals are already validated monotone (the raise in pump), so
        # push straight onto the queue — it still enforces the causality
        # floor — instead of going through Simulator.schedule_at.
        self._push = sim.queue.push

    def note_completion(self, count: int) -> None:
        self.completed += count

    def pump(self) -> None:
        if self._buffered:
            index = self._next
            buffer = self._buffer
            if index >= len(buffer):
                buffer = list(islice(self.iterator, _STREAM_CHUNK))
                if not buffer:
                    return
                self._buffer = buffer
                index = 0
            request = buffer[index]
            self._next = index + 1
        else:
            request = next(self.iterator, None)
            if request is None:
                return
        arrival_time = request.arrival_time_s
        if arrival_time < self._last_time:
            raise SimulationError(
                "streaming arrivals must be time-ordered: got "
                f"{arrival_time} after {self._last_time}"
            )
        self._last_time = arrival_time
        self.scheduled += 1
        self._current = request
        self._push(arrival_time, self._fire, "arrival")

    def _fire(self) -> None:
        request = self._current
        self.pump()
        self.route(request).submit(request)
        resident = self.scheduled - self.completed
        if self.lost is not None:
            resident -= self.lost()
        if resident > self.peak_resident:
            self.peak_resident = resident


def drive_stream(
    sim: Simulator,
    replicas: Sequence[ReplicaServer],
    requests: Union[Sequence[InferenceRequest], Iterable[InferenceRequest]],
    route: Callable[[InferenceRequest], ReplicaServer],
    lost: Optional[Callable[[], int]] = None,
) -> StreamOutcome:
    """Drive a request stream through the fleet and run to completion.

    Arrivals are pulled lazily: only one arrival event is scheduled ahead of
    the simulation clock, so an arbitrarily long stream holds just the
    in-flight requests in memory.  Sequences are sorted first (the legacy
    contract); bare iterators must already be time-ordered.

    Args:
        sim: The shared simulator all replicas live on.
        replicas: The replica fleet.
        requests: The arrival stream — a sequence (any order) or a lazy,
            time-ordered iterator (e.g. ``Workload.requests(...)``).
        route: Callable ``(request) -> ReplicaServer`` evaluated *at arrival
            time*, so routing sees live queue state.
        lost: Optional zero-argument callable returning the number of
            requests chaos fault injection has shed so far.  When given,
            conservation relaxes to ``scheduled == completed + lost()``;
            without it (every fault-free run) the strict identity holds.
    """
    if isinstance(requests, Sequence):
        iterator = iter(sorted(requests, key=lambda request: request.arrival_time_s))
    else:
        iterator = iter(requests)
    driver = _StreamDriver(sim, iterator, route, lost=lost)
    previous_listeners = [replica.completion_listener for replica in replicas]
    for replica in replicas:
        replica.completion_listener = driver.note_completion
    try:
        driver.pump()
        sim.run()
        # Policies without a close timer (e.g. FixedSizeBatching with no wait
        # cap) can strand a trailing partial batch once the stream ends; flush
        # and keep running until every replica drains.
        guard = 0
        while any(replica.has_pending for replica in replicas):
            guard += 1
            if guard > driver.scheduled + 1:
                raise SimulationError(
                    "serving simulation failed to drain pending requests"
                )
            for replica in replicas:
                replica.flush()
            sim.run()
    finally:
        for replica, listener in zip(replicas, previous_listeners):
            replica.completion_listener = listener
    shed = lost() if lost is not None else 0
    if driver.completed + shed != driver.scheduled:
        raise SimulationError(
            f"request conservation violated: {driver.scheduled} arrived, "
            f"{driver.completed} served, {shed} shed"
        )
    return StreamOutcome(
        scheduled=driver.scheduled,
        completed=driver.completed,
        peak_resident=driver.peak_resident,
        shed=shed,
    )
