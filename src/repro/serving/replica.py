"""Event-driven serving replica: one batching queue + one device on a Simulator.

This is the core the serving stack is built on.  A :class:`ReplicaServer`
lives on a shared :class:`repro.sim.engine.Simulator`; arrivals, batch-close
timers, device starts and completions are all scheduled events, so batching
policies can react to the queue as it evolves (close when the device idles,
shrink the window as the queue deepens) and dispatchers can inspect live
replica state at each arrival.

The replica reproduces the legacy replay semantics exactly for open-loop
policies: a batch closed at time ``t`` enters a FIFO device queue, and the
device serves batches in close order starting each at
``max(close_time, device_free_time)`` — the same ``start = max(ready,
free)`` recurrence the legacy simulator iterated, now emerging from event
order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.results import InferenceResult
from repro.serving.batching import BatchingPolicy, BatchSignal
from repro.serving.metrics import ExecutedBatch, LatencyDistribution, ServingReport
from repro.serving.requests import InferenceRequest
from repro.sim.engine import Event, Simulator


class DesignPointRunner(Protocol):
    """The slice of the runner interface the serving simulation needs."""

    @property
    def design_point(self) -> str: ...

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult: ...


class ServiceModel:
    """Caches the design-point runner's per-batch-size predictions.

    Runner calls are deterministic in ``(model, batch_size)``, so one cache
    per (runner, model) pair serves every replica and dispatcher estimate.
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        cache: Optional[Dict[int, InferenceResult]] = None,
    ):
        self.runner = runner
        self.model = model
        self._cache: Dict[int, InferenceResult] = cache if cache is not None else {}

    @property
    def design_point(self) -> str:
        return self.runner.design_point

    def result(self, batch_size: int) -> InferenceResult:
        cached = self._cache.get(batch_size)
        if cached is None:
            cached = self.runner.run(self.model, batch_size)
            self._cache[batch_size] = cached
        return cached


class ReplicaServer:
    """One device behind a batching queue, driven by simulator events.

    Args:
        sim: The shared event simulator.
        service: Cached runner predictions for this replica's device.
        batching: Batching policy (immutable; may be shared across replicas).
        name: Label used on scheduled events (debugging/tracing).
    """

    def __init__(
        self,
        sim: Simulator,
        service: ServiceModel,
        batching: BatchingPolicy,
        name: str = "replica",
    ):
        self.sim = sim
        self.service = service
        self.batching = batching
        self.name = name
        # Open batch accumulating arrivals.
        self._pending: List[InferenceRequest] = []
        self._close_timer: Optional[Event] = None
        # Closed batches waiting for the device, FIFO.
        self._batch_queue: Deque[Tuple[float, List[InferenceRequest]]] = deque()
        self._busy = False
        self._in_flight = 0
        self.device_free_at = 0.0
        # Accounting.
        self.arrivals: List[InferenceRequest] = []
        self.executed: List[ExecutedBatch] = []
        self.request_latency_s: List[float] = []
        self.request_queueing_s: List[float] = []
        self.busy_time_s = 0.0
        self.energy_joules = 0.0

    # -- live state inspected by dispatchers ---------------------------
    @property
    def device_idle(self) -> bool:
        """True when the device has nothing running and nothing queued."""
        return not self._busy and not self._batch_queue

    @property
    def outstanding(self) -> int:
        """Requests routed here that have not yet completed."""
        queued = sum(len(batch) for _, batch in self._batch_queue)
        return len(self._pending) + queued + self._in_flight

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def estimated_backlog_s(self, now: float) -> float:
        """Predicted time to drain everything currently routed here.

        Accounts for the device's speed, so a fast replica with a deeper
        queue can legitimately beat a slow idle one under least-loaded
        dispatch.
        """
        backlog = max(self.device_free_at - now, 0.0) if self._busy else 0.0
        for _, batch in self._batch_queue:
            size = self.batching.execution_batch_size(len(batch))
            backlog += self.service.result(size).latency_seconds
        if self._pending:
            size = self.batching.execution_batch_size(len(self._pending))
            backlog += self.service.result(size).latency_seconds
        return backlog

    # -- event handlers ------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept a request at the current simulated time."""
        now = self.sim.now
        self.arrivals.append(request)
        self._pending.append(request)
        signal = self.batching.on_enqueue(self._pending, now, self.device_idle)
        self._apply(signal, now)

    def flush(self) -> None:
        """Close any pending batch immediately (end-of-stream drain)."""
        if self._pending:
            self._close_batch(self.sim.now)

    def _apply(self, signal: BatchSignal, now: float) -> None:
        if signal.timer_at is not None:
            self._arm_timer(signal.timer_at)
        if signal.close and self._pending:
            self._close_batch(now)

    def _arm_timer(self, time: float) -> None:
        if self._close_timer is not None:
            self._close_timer.cancel()
        self._close_timer = self.sim.schedule_at(
            max(time, self.sim.now), self._on_timer, label=f"{self.name}:batch-close"
        )

    def _on_timer(self) -> None:
        self._close_timer = None
        if not self._pending:
            return
        now = self.sim.now
        signal = self.batching.on_timer(self._pending, now, self.device_idle)
        self._apply(signal, now)

    def _close_batch(self, now: float) -> None:
        if self._close_timer is not None:
            self._close_timer.cancel()
            self._close_timer = None
        batch = self._pending
        self._pending = []
        self._batch_queue.append((now, batch))
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or not self._batch_queue:
            return
        ready, batch = self._batch_queue.popleft()
        result = self.service.result(self.batching.execution_batch_size(len(batch)))
        start = self.sim.now
        finish = start + result.latency_seconds
        self._busy = True
        self._in_flight = len(batch)
        self.device_free_at = finish
        self.busy_time_s += result.latency_seconds
        self.energy_joules += result.energy_joules
        self.executed.append(
            ExecutedBatch(
                ready_time_s=ready,
                start_time_s=start,
                finish_time_s=finish,
                batch_size=len(batch),
            )
        )
        self.sim.schedule_at(
            finish,
            lambda b=batch, s=start, f=finish: self._on_complete(b, s, f),
            label=f"{self.name}:complete",
        )

    def _on_complete(
        self, batch: List[InferenceRequest], start: float, finish: float
    ) -> None:
        for request in batch:
            self.request_latency_s.append(finish - request.arrival_time_s)
            self.request_queueing_s.append(start - request.arrival_time_s)
        self._busy = False
        self._in_flight = 0
        # Only a truly idle device (no closed batches waiting) triggers the
        # policy hook; with work still queued, greedy policies should keep
        # accumulating the pending batch.
        if self._pending and not self._batch_queue:
            signal = self.batching.on_device_idle(self._pending, self.sim.now)
            self._apply(signal, self.sim.now)
        self._maybe_start()

    # -- reporting -----------------------------------------------------
    def build_report(self, model_name: str) -> ServingReport:
        """Summarize everything this replica served into a ServingReport."""
        if not self.executed:
            raise SimulationError(f"{self.name} executed no batches")
        completed = len(self.request_latency_s)
        if completed != len(self.arrivals):
            raise SimulationError(
                f"{self.name} lost requests: {len(self.arrivals)} arrived, "
                f"{completed} completed"
            )
        last_arrival = max(request.arrival_time_s for request in self.arrivals)
        makespan = max(batch.finish_time_s for batch in self.executed)
        return ServingReport(
            design_point=self.service.design_point,
            model_name=model_name,
            offered_load_qps=completed / max(last_arrival, 1e-12),
            completed_requests=completed,
            makespan_s=makespan,
            latency=LatencyDistribution(self.request_latency_s),
            queueing=LatencyDistribution(self.request_queueing_s),
            average_batch_size=sum(b.batch_size for b in self.executed)
            / len(self.executed),
            device_busy_s=self.busy_time_s,
            energy_joules=self.energy_joules,
            extra={"num_batches": float(len(self.executed))},
            executed_batches=tuple(self.executed),
        )


def drive_stream(
    sim: Simulator,
    replicas: Sequence[ReplicaServer],
    requests: Sequence[InferenceRequest],
    route,
) -> None:
    """Schedule a request stream and run the simulation to completion.

    Args:
        sim: The shared simulator all replicas live on.
        replicas: The replica fleet.
        requests: The arrival stream (any order; scheduled by arrival time).
        route: Callable ``(request) -> ReplicaServer`` evaluated *at arrival
            time*, so routing sees live queue state.
    """
    ordered = sorted(requests, key=lambda request: request.arrival_time_s)
    for request in ordered:
        sim.schedule_at(
            request.arrival_time_s,
            lambda r=request: route(r).submit(r),
            label="arrival",
        )
    sim.run()
    # Policies without a close timer (e.g. FixedSizeBatching with no wait
    # cap) can strand a trailing partial batch once the stream ends; flush
    # and keep running until every replica drains.
    guard = 0
    while any(replica.has_pending for replica in replicas):
        guard += 1
        if guard > len(requests) + 1:
            raise SimulationError("serving simulation failed to drain pending requests")
        for replica in replicas:
            replica.flush()
        sim.run()
    served = sum(len(replica.request_latency_s) for replica in replicas)
    if served != len(ordered):
        raise SimulationError(
            f"request conservation violated: {len(ordered)} arrived, {served} served"
        )
