"""Capacity planning: the minimal fleet meeting a p99 SLA per backend.

Where the autoscaler answers "how should the fleet breathe with the load",
the planner answers the question that precedes it: how many replicas of
each backend does a workload need at all?  :class:`CapacityPlanner`
searches replica counts per backend (exponential probe, then binary
search over the bracketed range) and keeps the smallest fleet whose
simulated p99 SLA attainment reaches the target.  Every evaluation is a
full event-driven :class:`~repro.serving.cluster.ClusterSimulator` run of
the workload at a fixed seed, so plans are deterministic and directly
comparable across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.registry import available_backends, get_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import ClusterReport, ClusterSimulator
from repro.serving.dispatch import Dispatcher
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class CapacityPoint:
    """The minimal-fleet answer for one backend.

    Attributes:
        backend: Registry name of the backend.
        replicas: Smallest fleet meeting the target, or ``None`` when even
            ``max_replicas`` falls short.
        attainment: SLA attainment of the chosen fleet (of the largest
            fleet tried, when infeasible).
        p99_s: p99 latency of that fleet.
        replica_seconds: Replica-hours bill (in seconds) of that fleet.
        energy_per_request_joules: Busy energy per completed request.
        evaluated: Replica counts the search actually simulated, in order.
    """

    backend: str
    replicas: Optional[int]
    attainment: float
    p99_s: float
    replica_seconds: float
    energy_per_request_joules: float
    evaluated: Tuple[int, ...]

    @property
    def feasible(self) -> bool:
        return self.replicas is not None


@dataclass(frozen=True)
class CapacityPlan:
    """All per-backend answers for one workload and SLA target."""

    workload_name: str
    model_name: str
    sla_s: float
    target_attainment: float
    points: Tuple[CapacityPoint, ...]

    def get(self, backend: str) -> CapacityPoint:
        for point in self.points:
            if point.backend == backend:
                return point
        raise KeyError(f"no capacity point for backend {backend!r}")

    def best(self) -> Optional[CapacityPoint]:
        """The cheapest feasible fleet: fewest replicas, ties by energy."""
        feasible = [point for point in self.points if point.feasible]
        if not feasible:
            return None
        return min(
            feasible,
            key=lambda point: (point.replicas, point.energy_per_request_joules),
        )


class CapacityPlanner:
    """Searches the minimal replica count per backend for an SLA target.

    Args:
        system: Hardware platform backends are resolved against.
        sla_s: Per-request latency budget the p99 target is written against.
        target_attainment: Fraction of requests that must finish within the
            SLA (0.99 asks for the p99 tail to meet the budget).
        max_replicas: Search ceiling per backend.
        batching: Batching policy for every simulated fleet.
        dispatcher: Dispatcher for every simulated fleet (fresh default:
            round-robin).
        seed: Workload stream seed shared by every evaluation.
        jobs: Worker processes for :meth:`plan` — backends search in
            parallel, each backend's exponential+binary search stays
            sequential (every probe depends on the previous verdict).
            ``1`` = serial, ``0`` = one worker per CPU.
    """

    def __init__(
        self,
        system: SystemConfig,
        sla_s: float,
        target_attainment: float = 0.99,
        max_replicas: int = 64,
        batching: Optional[BatchingPolicy] = None,
        dispatcher: Optional[Dispatcher] = None,
        seed: int = 0,
        jobs: int = 1,
    ):
        from repro.experiment.executor import resolve_jobs

        if sla_s <= 0:
            raise SimulationError(f"sla_s must be positive, got {sla_s}")
        if not 0.0 < target_attainment <= 1.0:
            raise SimulationError(
                f"target_attainment must be in (0, 1], got {target_attainment}"
            )
        if max_replicas <= 0:
            raise SimulationError(f"max_replicas must be positive, got {max_replicas}")
        resolve_jobs(jobs)  # validate eagerly; keep the raw setting
        self.system = system
        self.sla_s = sla_s
        self.target_attainment = target_attainment
        self.max_replicas = max_replicas
        self.batching = batching
        self.dispatcher = dispatcher
        self.seed = seed
        self.jobs = int(jobs)

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        backend,
        model: DLRMConfig,
        workload: Workload,
        replicas: int,
        duration_s: Optional[float],
        num_requests: Optional[int],
    ) -> ClusterReport:
        cluster = ClusterSimulator(
            backend,
            model,
            num_replicas=replicas,
            batching=self.batching,
            dispatcher=self.dispatcher,
        )
        return cluster.serve_workload(
            workload,
            duration_s=duration_s,
            num_requests=num_requests,
            seed=self.seed,
        )

    def plan_backend(
        self,
        backend_name: str,
        model: DLRMConfig,
        workload: Workload,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> CapacityPoint:
        """Minimal-fleet search for one backend.

        Doubles the fleet until the target is met (or ``max_replicas`` is
        hit), then binary-searches the bracketed range.  Attainment is
        treated as monotone in fleet size, which holds for open-loop
        arrival streams: more replicas never see more load each.
        """
        from repro.experiment.serving import check_workload_support

        check_workload_support(backend_name, workload)
        backend = get_backend(backend_name, self.system)
        evaluated: List[int] = []
        reports: Dict[int, ClusterReport] = {}

        def meets(count: int) -> bool:
            if count not in reports:
                evaluated.append(count)
                reports[count] = self._evaluate(
                    backend, model, workload, count, duration_s, num_requests
                )
            attainment = reports[count].latency.sla_attainment(self.sla_s)
            return attainment >= self.target_attainment

        probe = 1
        while not meets(probe):
            if probe >= self.max_replicas:
                report = reports[probe]
                return CapacityPoint(
                    backend=backend_name,
                    replicas=None,
                    attainment=report.latency.sla_attainment(self.sla_s),
                    p99_s=report.latency.p99_s,
                    replica_seconds=report.replica_seconds,
                    energy_per_request_joules=report.energy_per_request_joules,
                    evaluated=tuple(evaluated),
                )
            probe = min(probe * 2, self.max_replicas)
        low, high = (probe // 2 + 1, probe) if probe > 1 else (1, 1)
        while low < high:
            middle = (low + high) // 2
            if meets(middle):
                high = middle
            else:
                low = middle + 1
        report = reports[high]
        return CapacityPoint(
            backend=backend_name,
            replicas=high,
            attainment=report.latency.sla_attainment(self.sla_s),
            p99_s=report.latency.p99_s,
            replica_seconds=report.replica_seconds,
            energy_per_request_joules=report.energy_per_request_joules,
            evaluated=tuple(evaluated),
        )

    def plan(
        self,
        workload: Workload,
        model: DLRMConfig,
        backends: Optional[Sequence[str]] = None,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> CapacityPlan:
        """Minimal fleets for every backend (default: all registered).

        With ``jobs > 1`` the per-backend searches run in worker
        processes; plans are deterministic either way, so the answer is
        identical at any setting.
        """
        from repro.experiment.executor import (
            GridExecutor,
            PlanBackendTask,
            _run_plan_backend,
            resolve_jobs,
        )

        if (duration_s is None) == (num_requests is None):
            raise SimulationError("provide exactly one of duration_s or num_requests")
        names = tuple(backends) if backends else available_backends()
        if resolve_jobs(self.jobs) == 1 or len(names) == 1:
            points = tuple(
                self.plan_backend(
                    name,
                    model,
                    workload,
                    duration_s=duration_s,
                    num_requests=num_requests,
                )
                for name in names
            )
        else:
            tasks = [
                PlanBackendTask(
                    system=self.system,
                    sla_s=self.sla_s,
                    target_attainment=self.target_attainment,
                    max_replicas=self.max_replicas,
                    batching=self.batching,
                    dispatcher=self.dispatcher,
                    seed=self.seed,
                    backend_name=name,
                    model=model,
                    workload=workload,
                    duration_s=duration_s,
                    num_requests=num_requests,
                )
                for name in names
            ]
            executor = GridExecutor(self.jobs)
            points = tuple(executor.map(_run_plan_backend, tasks))
        return CapacityPlan(
            workload_name=workload.name,
            model_name=model.name,
            sla_s=self.sla_s,
            target_attainment=self.target_attainment,
            points=points,
        )
