"""SLA-driven autoscaling: elastic replica fleets on the event simulator.

A statically provisioned fleet sized for peak traffic wastes replica-hours
all night; one sized for the mean gives back the SLA at every crest.  This
module closes that gap: an :class:`AutoscalingCluster` serves a request
stream through a pool of replicas whose *active* subset is adjusted by an
:class:`AutoscalerPolicy` at periodic control ticks — timed events on the
shared :class:`repro.sim.engine.Simulator`, exactly like arrivals and batch
closes.

Lifecycle semantics mirror real fleets:

* **Warm-up** — a commissioned replica takes ``warmup_s`` simulated seconds
  before it can receive traffic (model load, FPGA reconfiguration); it is
  paid for (accrues replica-seconds) from the moment it is commissioned.
* **Drain-before-stop** — a decommissioned replica stops receiving new
  requests immediately but finishes everything already routed to it; it is
  paid for until its last batch completes.  No request is ever dropped, so
  the conservation invariant of :func:`repro.serving.replica.drive_stream`
  holds unchanged.
* **Cost accounting** — the run's :class:`AutoscaleReport` (attached to the
  :class:`~repro.serving.cluster.ClusterReport`) tracks replica-seconds,
  the replica-count timeline, scale events, and busy vs. idle energy
  (idle energy is ``idle_power_w`` times the commissioned-but-not-busy
  time).

Policies:

* :class:`QueueDepthPolicy` — reactive: scale on outstanding requests per
  active replica, with high/low watermark hysteresis and a cooldown.
* :class:`TargetUtilizationPolicy` — reactive: hold device utilization near
  a target (the classic horizontal-pod-autoscaler rule), with a deadband
  and a cooldown.
* :class:`ScheduledPolicy` — an explicit (time, replicas) schedule.
* :class:`EWMAPolicy` — predictive: an exponentially weighted moving
  average of the observed arrival rate, divided by per-replica capacity.

A policy disabled run (``policy=None``) takes the static
:class:`~repro.serving.cluster.HeterogeneousCluster` path verbatim and is
bit-identical to it — autoscaling is strictly opt-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.chaos.faults import FaultSchedule

from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import (
    AutoscaleReport,
    ClusterReport,
    HeterogeneousCluster,
    ReplicaSpec,
)
from repro.serving.dispatch import Dispatcher
from repro.serving.replica import ReplicaServer, drive_stream
from repro.sim.engine import QueueSpec, Simulator
from repro.workloads.arrivals import InferenceRequest


# ----------------------------------------------------------------------
# Observations and the policy interface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterObservation:
    """What an autoscaler sees at one control tick.

    Attributes:
        time_s: Simulated time of the tick.
        interval_s: Control interval (time since the previous tick).
        active_replicas: Replicas currently accepting traffic.
        starting_replicas: Replicas commissioned but still warming up.
        draining_replicas: Replicas finishing their last requests.
        total_outstanding: Requests routed to active replicas and not yet
            completed.
        queue_depth_per_replica: ``total_outstanding / active_replicas``.
        utilization: Fraction of the last interval the active fleet's
            devices spent executing (may exceed 1.0 when a batch longer
            than the interval was started).
        arrival_rate_qps: Arrivals observed over the last interval,
            divided by the interval.
        replica_capacity_qps: Saturation throughput of one replica
            (best batch-size throughput of the template device).
        min_replicas: Lower fleet bound the controller enforces.
        max_replicas: Upper fleet bound the controller enforces.
    """

    time_s: float
    interval_s: float
    active_replicas: int
    starting_replicas: int
    draining_replicas: int
    total_outstanding: int
    queue_depth_per_replica: float
    utilization: float
    arrival_rate_qps: float
    replica_capacity_qps: float
    min_replicas: int
    max_replicas: int

    @property
    def committed_replicas(self) -> int:
        """Replicas being paid for that will serve traffic (active + warming)."""
        return self.active_replicas + self.starting_replicas


class AutoscalerPolicy:
    """Interface: map one :class:`ClusterObservation` to a fleet size.

    The controller clamps the returned value into ``[min_replicas,
    max_replicas]``, so policies may return any integer.  Policies carry
    per-stream state (cooldown clocks, EWMA accumulators); :meth:`reset` is
    called once before every stream so one instance can drive many runs
    deterministically.
    """

    #: Human-readable policy name used in reports.
    name = "autoscaler"

    def reset(self) -> None:
        """Clear per-stream state; called once before each request stream."""

    def desired_replicas(self, observation: ClusterObservation) -> int:
        """Fleet size this policy wants after observing one control tick."""
        raise NotImplementedError


class _HysteresisPolicy(AutoscalerPolicy):
    """Shared cooldown bookkeeping for the reactive policies."""

    def __init__(self, cooldown_s: float):
        if cooldown_s < 0:
            raise SimulationError(f"cooldown_s must be non-negative, got {cooldown_s}")
        self.cooldown_s = cooldown_s
        self._last_change_s = -math.inf

    def reset(self) -> None:
        self._last_change_s = -math.inf

    def _cooling_down(self, now: float) -> bool:
        return now - self._last_change_s < self.cooldown_s

    def _decide(self, observation: ClusterObservation, desired: int) -> int:
        """Clamp a raw desire into the fleet bounds and account for it.

        The cooldown clock restarts only when the *clamped* decision moves
        the fleet: a policy pinned at ``max_replicas`` under sustained
        overload keeps asking for more, and those no-ops must not hold the
        eventual scale-in hostage for a cooldown each.
        """
        clamped = max(
            observation.min_replicas, min(observation.max_replicas, desired)
        )
        if clamped != observation.committed_replicas:
            self._last_change_s = observation.time_s
        return clamped


class QueueDepthPolicy(_HysteresisPolicy):
    """Reactive scaling on outstanding requests per active replica.

    Scale out by ``step`` when the per-replica queue depth exceeds
    ``high_watermark``; scale in by ``step`` when it falls below
    ``low_watermark``.  The gap between the watermarks is the hysteresis
    band that keeps the fleet from thrashing, and ``cooldown_s`` bounds how
    often the fleet may change at all.
    """

    name = "queue-depth"

    def __init__(
        self,
        high_watermark: float = 8.0,
        low_watermark: float = 1.0,
        step: int = 1,
        cooldown_s: float = 0.0,
    ):
        super().__init__(cooldown_s)
        if high_watermark <= low_watermark:
            raise SimulationError(
                f"high_watermark ({high_watermark}) must exceed low_watermark "
                f"({low_watermark}); the gap is the hysteresis band"
            )
        if low_watermark < 0:
            raise SimulationError(
                f"low_watermark must be non-negative, got {low_watermark}"
            )
        if step <= 0:
            raise SimulationError(f"step must be positive, got {step}")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.step = step

    def desired_replicas(self, observation: ClusterObservation) -> int:
        committed = observation.committed_replicas
        if self._cooling_down(observation.time_s):
            return committed
        depth = observation.queue_depth_per_replica
        if depth > self.high_watermark:
            return self._decide(observation, committed + self.step)
        if depth < self.low_watermark:
            return self._decide(observation, committed - self.step)
        return committed


class TargetUtilizationPolicy(_HysteresisPolicy):
    """Reactive scaling toward a device-utilization target.

    Applies the proportional rule horizontal autoscalers use::

        desired = ceil(committed * utilization / target)

    but only when utilization leaves the ``target ± deadband`` band — the
    deadband plus ``cooldown_s`` is the hysteresis that keeps a fleet
    hovering near its target from oscillating.
    """

    name = "target-utilization"

    def __init__(
        self,
        target: float = 0.6,
        deadband: float = 0.1,
        cooldown_s: float = 0.0,
    ):
        super().__init__(cooldown_s)
        if not 0.0 < target <= 1.0:
            raise SimulationError(f"target must be in (0, 1], got {target}")
        if deadband < 0 or deadband >= target:
            raise SimulationError(
                f"deadband must be in [0, target), got {deadband} (target {target})"
            )
        self.target = target
        self.deadband = deadband

    def desired_replicas(self, observation: ClusterObservation) -> int:
        committed = observation.committed_replicas
        if self._cooling_down(observation.time_s):
            return committed
        utilization = observation.utilization
        if abs(utilization - self.target) <= self.deadband:
            return committed
        return self._decide(
            observation, math.ceil(committed * utilization / self.target)
        )


class ScheduledPolicy(AutoscalerPolicy):
    """Time-of-day scaling from an explicit ``(time_s, replicas)`` schedule.

    At any tick the fleet size is the count of the latest schedule entry at
    or before the tick; before the first entry the controller's
    ``min_replicas`` floor applies (the policy returns 0, which the
    controller clamps up).
    """

    name = "scheduled"

    def __init__(self, schedule: Sequence[Tuple[float, int]]):
        entries = [(float(time_s), int(count)) for time_s, count in schedule]
        if not entries:
            raise SimulationError("a schedule needs at least one (time, replicas) entry")
        for (earlier, _), (later, _) in zip(entries, entries[1:]):
            if later <= earlier:
                raise SimulationError(
                    f"schedule times must be strictly increasing, got {later} "
                    f"after {earlier}"
                )
        for time_s, count in entries:
            if time_s < 0:
                raise SimulationError(f"schedule times must be non-negative, got {time_s}")
            if count <= 0:
                raise SimulationError(f"scheduled replica counts must be positive, got {count}")
        self.schedule: Tuple[Tuple[float, int], ...] = tuple(entries)

    def desired_replicas(self, observation: ClusterObservation) -> int:
        desired = 0
        for time_s, count in self.schedule:
            if time_s > observation.time_s:
                break
            desired = count
        return desired


class EWMAPolicy(AutoscalerPolicy):
    """Predictive scaling on a smoothed estimate of the arrival rate.

    Tracks ``rate <- alpha * observed + (1 - alpha) * rate`` across ticks
    and sizes the fleet at ``ceil(rate * headroom / capacity)``, where
    capacity is per-replica saturation throughput (taken from the
    observation when not given explicitly).  ``headroom > 1`` buys slack
    for the burstiness the moving average smooths away.
    """

    name = "ewma"

    def __init__(
        self,
        alpha: float = 0.3,
        headroom: float = 1.2,
        replica_capacity_qps: Optional[float] = None,
    ):
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(f"alpha must be in (0, 1], got {alpha}")
        if headroom <= 0:
            raise SimulationError(f"headroom must be positive, got {headroom}")
        if replica_capacity_qps is not None and replica_capacity_qps <= 0:
            raise SimulationError(
                f"replica_capacity_qps must be positive, got {replica_capacity_qps}"
            )
        self.alpha = alpha
        self.headroom = headroom
        self.replica_capacity_qps = replica_capacity_qps
        self._rate_qps: Optional[float] = None

    def reset(self) -> None:
        self._rate_qps = None

    def desired_replicas(self, observation: ClusterObservation) -> int:
        observed = observation.arrival_rate_qps
        if self._rate_qps is None:
            self._rate_qps = observed
        else:
            self._rate_qps = self.alpha * observed + (1.0 - self.alpha) * self._rate_qps
        capacity = (
            self.replica_capacity_qps
            if self.replica_capacity_qps is not None
            else observation.replica_capacity_qps
        )
        if capacity <= 0:
            raise SimulationError(
                "EWMA policy needs a positive per-replica capacity; pass "
                "replica_capacity_qps or serve through a cluster that derives it"
            )
        return math.ceil(self._rate_qps * self.headroom / capacity)


# ----------------------------------------------------------------------
# The elastic cluster
# ----------------------------------------------------------------------
_STOPPED = "stopped"
_STARTING = "starting"
_ACTIVE = "active"
_DRAINING = "draining"


@dataclass
class _ReplicaLifecycle:
    """Commission/stop bookkeeping for one pool slot."""

    state: str = _STOPPED
    intervals: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    drain_marked_s: float = 0.0
    activation_event: Optional[object] = None

    def commission(self, now: float) -> None:
        self.intervals.append((now, None))

    def stop(self, now: float) -> None:
        start, _ = self.intervals[-1]
        self.intervals[-1] = (start, max(now, start))
        self.state = _STOPPED

    def commissioned_seconds(self, horizon_s: float) -> float:
        total = 0.0
        for start, stop in self.intervals:
            total += (stop if stop is not None else max(horizon_s, start)) - start
        return total


class _CountingStream:
    """Wraps the request iterator to expose arrival counts and exhaustion."""

    def __init__(self, iterator):
        self._iterator = iterator
        self.count = 0
        self.exhausted = False

    def __iter__(self):
        return self

    def __next__(self) -> InferenceRequest:
        try:
            request = next(self._iterator)
        except StopIteration:
            self.exhausted = True
            raise
        self.count += 1
        return request


class AutoscalingCluster(HeterogeneousCluster):
    """An elastic fleet of identical replicas behind a dispatcher.

    The pool holds ``max_replicas`` slots of one template replica;
    ``initial_replicas`` of them are active when the stream starts and an
    :class:`AutoscalerPolicy` adjusts the active subset at every control
    tick.  With ``policy=None`` the run takes the static
    :class:`HeterogeneousCluster` path with ``initial_replicas`` replicas,
    bit-identically.

    Args:
        runner: Template device — a design-point runner or a backend
            registry name (resolved against ``system``).
        model: Served DLRM configuration.
        policy: Autoscaling policy, or ``None`` for a static fleet.
        min_replicas: Floor the controller never goes below (>= 1).
        max_replicas: Pool size and scaling ceiling.
        initial_replicas: Active replicas at time zero (defaults to
            ``min_replicas``).
        control_interval_s: Spacing of the controller's timed events.
        warmup_s: Delay between commissioning a replica and it accepting
            traffic.
        idle_power_w: Power drawn by a commissioned replica while its
            device is not executing, charged to the run's idle energy.
        dispatcher: Routing policy over the *active* replicas.
        batching: Per-replica batching policy.
        system: Hardware platform (required when ``runner`` is a name).
    """

    def __init__(
        self,
        runner,
        model: DLRMConfig,
        policy: Optional[AutoscalerPolicy] = None,
        min_replicas: int = 1,
        max_replicas: int = 8,
        initial_replicas: Optional[int] = None,
        control_interval_s: float = 10e-3,
        warmup_s: float = 0.0,
        idle_power_w: float = 0.0,
        dispatcher: Optional[Dispatcher] = None,
        batching: Optional[BatchingPolicy] = None,
        system: Optional[SystemConfig] = None,
        queue: QueueSpec = "auto",
        profile: bool = False,
    ):
        if min_replicas <= 0:
            raise SimulationError(f"min_replicas must be positive, got {min_replicas}")
        if max_replicas < min_replicas:
            raise SimulationError(
                f"max_replicas ({max_replicas}) must be >= min_replicas ({min_replicas})"
            )
        if initial_replicas is None:
            initial_replicas = min_replicas
        if not min_replicas <= initial_replicas <= max_replicas:
            raise SimulationError(
                f"initial_replicas ({initial_replicas}) must lie in "
                f"[{min_replicas}, {max_replicas}]"
            )
        if control_interval_s <= 0:
            raise SimulationError(
                f"control_interval_s must be positive, got {control_interval_s}"
            )
        if warmup_s < 0:
            raise SimulationError(f"warmup_s must be non-negative, got {warmup_s}")
        if idle_power_w < 0:
            raise SimulationError(f"idle_power_w must be non-negative, got {idle_power_w}")
        if policy is not None and not isinstance(policy, AutoscalerPolicy):
            raise SimulationError(
                f"policy must be an AutoscalerPolicy or None, got {policy!r}"
            )
        super().__init__(
            [ReplicaSpec(runner=runner) for _ in range(max_replicas)],
            model,
            dispatcher=dispatcher,
            batching=batching,
            system=system,
            queue=queue,
            profile=profile,
        )
        self.policy = policy
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.initial_replicas = initial_replicas
        self.control_interval_s = control_interval_s
        self.warmup_s = warmup_s
        self.idle_power_w = idle_power_w
        self.runner = self.specs[0].runner
        self._capacity_qps: Optional[float] = None

    # ------------------------------------------------------------------
    def _replica_capacity_qps(self) -> float:
        """Saturation throughput of one template replica, priced once.

        The batch-size sweep behind it runs on the first serve of this
        cluster and is memoized — grids and search loops that serve many
        streams through one cluster pay it a single time.
        """
        if self._capacity_qps is None:
            from repro.serving.simulator import ServingSimulator

            simulator = ServingSimulator(
                self.runner, self.model, batching=self.specs[0].batching
            )
            simulator._service._cache = self._caches[id(self.runner)]
            self._capacity_qps = simulator.saturation_throughput()
        return self._capacity_qps

    # ------------------------------------------------------------------
    def serve(
        self,
        requests,
        extra_models: Sequence[DLRMConfig] = (),
        report_label: Optional[str] = None,
        faults: Optional["FaultSchedule"] = None,
    ) -> ClusterReport:
        """Serve a stream; elastic when a policy is set, static otherwise.

        ``faults`` injects a :class:`~repro.chaos.faults.FaultSchedule`
        into the run; an empty (or ``None``) schedule takes the fault-free
        code paths verbatim, bit-identically.
        """
        chaos = faults is not None and not faults.empty
        if self.policy is None and not chaos:
            static = HeterogeneousCluster(
                self.specs[: self.initial_replicas],
                self.model,
                dispatcher=self.dispatcher,
                batching=None,
                system=None,
                queue=self.queue,
                profile=self.profile,
            )
            # Share the template's prediction cache so disabled and static
            # runs price device points identically (and only once).
            static._caches = self._caches
            report = static.serve(
                requests, extra_models=extra_models, report_label=report_label
            )
            self.last_outcome = static.last_outcome
            self.last_profile = static.last_profile
            return report
        if isinstance(requests, Sequence):
            iterator = iter(
                sorted(requests, key=lambda request: request.arrival_time_s)
            )
        else:
            iterator = iter(requests)
        sim = Simulator(queue=self.queue, profile=self.profile)
        replicas = self._build_replicas(sim, extra_models=extra_models)
        self.dispatcher.reset()
        if self.policy is not None:
            self.policy.reset()
        controller = _AutoscaleController(self, sim, replicas)
        stream = _CountingStream(iterator)
        controller.stream = stream

        injector = None
        if chaos:
            # Imported lazily: repro.chaos depends on this module's report
            # types, so the top-level import would be circular.
            from repro.chaos.injector import FaultInjector

            injector = FaultInjector(sim, faults, controller=controller)
            injector.arm()
            outcome = drive_stream(
                sim, replicas, stream, controller.route, lost=injector.shed_count
            )
        else:
            outcome = drive_stream(sim, replicas, stream, controller.route)
        if outcome.scheduled == 0:
            raise SimulationError("cannot serve an empty request stream")
        self.last_profile = sim.profile
        self.last_outcome = outcome
        report = controller.build_report(report_label or self.model.name)
        if injector is not None:
            incidents = injector.finalize(report.per_replica, horizon_s=sim.now)
            report = replace(report, incidents=incidents)
        return report

    def serve_workload(
        self,
        workload,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
        faults: Optional["FaultSchedule"] = None,
    ) -> ClusterReport:
        """Serve a workload stream, optionally under a fault schedule."""
        label = workload.mix.label if workload.mix is not None else None
        return self.serve(
            workload.requests(
                duration_s=duration_s, num_requests=num_requests, seed=seed
            ),
            extra_models=workload.models,
            report_label=label,
            faults=faults,
        )


class _AutoscaleController:
    """Owns replica lifecycle state and the periodic control events."""

    def __init__(
        self,
        cluster: AutoscalingCluster,
        sim: Simulator,
        replicas: Sequence[ReplicaServer],
    ):
        self.cluster = cluster
        self.sim = sim
        self.replicas = list(replicas)
        self.stream: Optional[_CountingStream] = None
        self.lifecycles = [_ReplicaLifecycle() for _ in replicas]
        for index in range(cluster.initial_replicas):
            lifecycle = self.lifecycles[index]
            lifecycle.state = _ACTIVE
            lifecycle.commission(0.0)
        self.timeline: List[Tuple[float, int]] = [(0.0, cluster.initial_replicas)]
        self.scale_up_events = 0
        self.scale_down_events = 0
        self.crash_events = 0
        self.restart_events = 0
        self._shed_sink = None
        self._arrivals_at_last_tick = 0
        self._busy_at_last_tick = 0.0
        if cluster.policy is not None:
            self._capacity_qps = cluster._replica_capacity_qps()
            sim.schedule_at(
                cluster.control_interval_s, self._on_tick, label="autoscale:tick"
            )
        else:
            # Chaos on a static fleet: the controller only tracks lifecycle
            # state for crash/restore hooks — no policy, no control ticks,
            # and no capacity sweep to pay for.
            self._capacity_qps = 0.0

    # -- routing -------------------------------------------------------
    def _active_indices(self) -> List[int]:
        return [
            index
            for index, lifecycle in enumerate(self.lifecycles)
            if lifecycle.state == _ACTIVE
        ]

    def route(self, request: InferenceRequest) -> ReplicaServer:
        active = self._active_indices()
        if not active:
            if self._shed_sink is not None:
                # Total outage under fault injection: arrivals are shed
                # (counted, never completed) instead of crashing the run.
                return self._shed_sink
            raise SimulationError(
                "autoscaling left no active replica to route to (controller bug)"
            )
        routable = [self.replicas[index] for index in active]
        return self.cluster._dispatch(routable, request, self.sim.now)

    # -- fault-injection hooks -----------------------------------------
    def install_shed_sink(self, sink) -> None:
        """Arm the total-outage sink (chaos runs only)."""
        self._shed_sink = sink

    def highest_active_index(self) -> Optional[int]:
        """Default crash/brownout target: mirrors the scale-down order."""
        active = self._active_indices()
        return active[-1] if active else None

    def commissioned_seconds(self, now: float) -> float:
        """Replica-seconds billed up to ``now`` (incident cost snapshots)."""
        return sum(
            lifecycle.commissioned_seconds(now) for lifecycle in self.lifecycles
        )

    def crash_replica(
        self, index: int, on_inflight: str
    ) -> Tuple[Optional[str], int, int]:
        """Kill one pool slot immediately (no drain).

        Returns ``(state_before, redispatched, shed)``; ``state_before`` is
        ``None`` when the slot was already stopped (the crash is a no-op).
        A warming replica dies before serving, so it has nothing in flight;
        an active or draining replica's salvaged requests are re-dispatched
        to the surviving fleet or shed, per ``on_inflight``.
        """
        now = self.sim.now
        lifecycle = self.lifecycles[index]
        state = lifecycle.state
        if state == _STOPPED:
            return None, 0, 0
        if state == _STARTING:
            if lifecycle.activation_event is not None:
                lifecycle.activation_event.cancel()
                lifecycle.activation_event = None
            lifecycle.stop(now)
            self.crash_events += 1
            self._record_timeline(now)
            return state, 0, 0
        replica = self.replicas[index]
        queued, executing = replica.crash()
        lifecycle.stop(now)
        self.crash_events += 1
        salvaged = executing + queued
        redispatched = 0
        shed = 0
        if salvaged:
            if on_inflight == "redispatch" and self._active_indices():
                # Original arrival times are preserved, so the crash delay
                # shows up in the re-dispatched requests' latencies.
                for request in salvaged:
                    self.route(request).submit(request)
                redispatched = len(salvaged)
            else:
                shed = len(salvaged)
        self._record_timeline(now)
        return state, redispatched, shed

    def restore_replica(self, index: int, warmup_s: float) -> bool:
        """Recommission a crashed slot; False when the autoscaler already
        reclaimed it (service was restored through the scaling path)."""
        lifecycle = self.lifecycles[index]
        if lifecycle.state != _STOPPED:
            return False
        now = self.sim.now
        lifecycle.commission(now)
        self.restart_events += 1
        if warmup_s <= 0.0:
            lifecycle.state = _ACTIVE
        else:
            lifecycle.state = _STARTING
            lifecycle.activation_event = self.sim.schedule_at(
                now + warmup_s,
                lambda i=index: self._on_warm(i),
                label="autoscale:warm",
            )
        self._record_timeline(now)
        return True

    # -- control loop --------------------------------------------------
    def _observe(self) -> ClusterObservation:
        now = self.sim.now
        interval = self.cluster.control_interval_s
        states = [lifecycle.state for lifecycle in self.lifecycles]
        active = states.count(_ACTIVE)
        starting = states.count(_STARTING)
        draining = states.count(_DRAINING)
        outstanding = sum(
            self.replicas[index].outstanding for index in self._active_indices()
        )
        arrivals = self.stream.count if self.stream is not None else 0
        arrival_rate = (arrivals - self._arrivals_at_last_tick) / interval
        self._arrivals_at_last_tick = arrivals
        busy = sum(
            replica.busy_time_s
            for replica, lifecycle in zip(self.replicas, self.lifecycles)
            if lifecycle.state != _STOPPED or lifecycle.intervals
        )
        utilization = (busy - self._busy_at_last_tick) / (interval * max(active, 1))
        self._busy_at_last_tick = busy
        return ClusterObservation(
            time_s=now,
            interval_s=interval,
            active_replicas=active,
            starting_replicas=starting,
            draining_replicas=draining,
            total_outstanding=outstanding,
            queue_depth_per_replica=outstanding / max(active, 1),
            utilization=utilization,
            arrival_rate_qps=arrival_rate,
            replica_capacity_qps=self._capacity_qps,
            min_replicas=self.cluster.min_replicas,
            max_replicas=self.cluster.max_replicas,
        )

    def _on_tick(self) -> None:
        now = self.sim.now
        self._reap_drained(now)
        observation = self._observe()
        desired = self.cluster.policy.desired_replicas(observation)
        desired = max(self.cluster.min_replicas, min(self.cluster.max_replicas, desired))
        committed = observation.committed_replicas
        if desired > committed:
            self._scale_up(desired - committed, now)
        elif desired < committed:
            self._scale_down(committed - desired, now)
        self._record_timeline(now)
        if not self._finished():
            self.sim.schedule_at(
                now + self.cluster.control_interval_s,
                self._on_tick,
                label="autoscale:tick",
            )

    def _finished(self) -> bool:
        """True when the control loop has nothing left to manage.

        After the stream ends the controller keeps ticking only while work
        is executing or queued behind a device.  A replica whose device is
        idle but still holds a *pending* batch (a policy that never closed
        it, or a batching window yet to elapse) needs no controller: any
        armed close timer is its own simulator event, and a stranded
        partial batch is flushed by :func:`drive_stream` once the event
        queue drains — which requires the tick chain to stop, not to keep
        the simulation alive forever.
        """
        if self.stream is None or not self.stream.exhausted:
            return False
        return all(
            replica.outstanding == 0 or replica.device_idle
            for replica in self.replicas
        )

    def _reap_drained(self, now: float) -> None:
        """Stop draining replicas whose last routed request has completed.

        The stop time is the replica's actual last batch-finish (tracked by
        the server), not the tick that observed it, so replica-seconds are
        exact rather than quantized to the control interval.
        """
        for index, lifecycle in enumerate(self.lifecycles):
            if lifecycle.state != _DRAINING:
                continue
            replica = self.replicas[index]
            if replica.outstanding == 0 and not replica.has_pending:
                lifecycle.stop(max(lifecycle.drain_marked_s, replica.last_finish_s))

    def _scale_up(self, count: int, now: float) -> None:
        # Reclaim draining replicas first: they are still warm, so
        # re-activating one is free and keeps its accounting interval open.
        for index, lifecycle in enumerate(self.lifecycles):
            if count == 0:
                return
            if lifecycle.state == _DRAINING:
                lifecycle.state = _ACTIVE
                self.scale_up_events += 1
                count -= 1
        for index, lifecycle in enumerate(self.lifecycles):
            if count == 0:
                return
            if lifecycle.state == _STOPPED:
                lifecycle.commission(now)
                self.scale_up_events += 1
                count -= 1
                if self.cluster.warmup_s == 0.0:
                    lifecycle.state = _ACTIVE
                else:
                    lifecycle.state = _STARTING
                    lifecycle.activation_event = self.sim.schedule_at(
                        now + self.cluster.warmup_s,
                        lambda i=index: self._on_warm(i),
                        label="autoscale:warm",
                    )

    def _on_warm(self, index: int) -> None:
        lifecycle = self.lifecycles[index]
        lifecycle.activation_event = None
        if lifecycle.state == _STARTING:
            lifecycle.state = _ACTIVE
            self._record_timeline(self.sim.now)

    def _scale_down(self, count: int, now: float) -> None:
        # Cancel still-warming replicas first (they never served traffic),
        # then drain active replicas from the highest pool index down so the
        # choice is deterministic.
        for index in range(len(self.lifecycles) - 1, -1, -1):
            if count == 0:
                return
            lifecycle = self.lifecycles[index]
            if lifecycle.state == _STARTING:
                if lifecycle.activation_event is not None:
                    lifecycle.activation_event.cancel()
                    lifecycle.activation_event = None
                lifecycle.stop(now)
                self.scale_down_events += 1
                count -= 1
        for index in reversed(self._active_indices()):
            if count == 0:
                return
            # Never drain below one active replica, whatever the policy asked.
            if sum(
                1 for lifecycle in self.lifecycles if lifecycle.state == _ACTIVE
            ) <= 1:
                return
            lifecycle = self.lifecycles[index]
            lifecycle.state = _DRAINING
            lifecycle.drain_marked_s = now
            self.scale_down_events += 1
            count -= 1

    def _record_timeline(self, now: float) -> None:
        commissioned = sum(
            1
            for lifecycle in self.lifecycles
            if lifecycle.state in (_ACTIVE, _STARTING, _DRAINING)
        )
        if self.timeline[-1][1] != commissioned:
            self.timeline.append((now, commissioned))

    # -- reporting -----------------------------------------------------
    def build_report(self, label: str) -> ClusterReport:
        now = self.sim.now
        self._reap_drained(now)
        # The tick chain may have stopped before observing the last drains;
        # the timeline must agree with the billing intervals just closed.
        self._record_timeline(now)
        makespan = max(
            [replica.last_finish_s for replica in self.replicas if replica.batch_count],
            default=now,
        )
        horizon = max(now, makespan)
        for lifecycle in self.lifecycles:
            if lifecycle.state in (_ACTIVE, _STARTING, _DRAINING):
                # Still-commissioned replicas are paid through end of run.
                start, _ = lifecycle.intervals[-1]
                lifecycle.intervals[-1] = (start, max(horizon, start))
        replica_seconds = sum(
            lifecycle.commissioned_seconds(horizon) for lifecycle in self.lifecycles
        )
        busy_seconds = sum(replica.busy_time_s for replica in self.replicas)
        busy_energy = sum(replica.energy_joules for replica in self.replicas)
        idle_energy = self.cluster.idle_power_w * max(
            replica_seconds - busy_seconds, 0.0
        )
        # A chaos run (shed sink armed) may have crashed the whole fleet
        # before anything completed; the report must still build.
        reports, latency = self.cluster._collect_reports(
            self.replicas, label, allow_empty=self._shed_sink is not None
        )
        policy = self.cluster.policy
        autoscale = AutoscaleReport(
            policy=policy.name if policy is not None else "static",
            control_interval_s=self.cluster.control_interval_s,
            warmup_s=self.cluster.warmup_s,
            timeline=tuple(self.timeline),
            replica_seconds=replica_seconds,
            peak_replicas=max(count for _, count in self.timeline),
            scale_up_events=self.scale_up_events,
            scale_down_events=self.scale_down_events,
            busy_energy_joules=busy_energy,
            idle_energy_joules=idle_energy,
            crashes=self.crash_events,
            restarts=self.restart_events,
        )
        return ClusterReport(
            design_point=self.cluster.design_point,
            model_name=label,
            num_replicas=len(reports),
            per_replica=reports,
            latency=latency,
            dispatcher=self.cluster.dispatcher.name,
            autoscale=autoscale,
        )


# ----------------------------------------------------------------------
# Compact text specs (CLI)
# ----------------------------------------------------------------------
def _parse_policy_kv(body: str, defaults: Dict[str, float], kind: str) -> Dict[str, float]:
    values = dict(defaults)
    if not body:
        return values
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigurationError(
                f"autoscaler spec parameters must be key=value, got {item!r} "
                f"(known keys for {kind}: {', '.join(defaults)})"
            )
        key, _, raw = item.partition("=")
        key = key.strip()
        if key not in defaults:
            raise ConfigurationError(
                f"unknown {kind} parameter {key!r} (known: {', '.join(defaults)})"
            )
        try:
            values[key] = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"{kind} parameter {key!r} is not a number: {raw!r}"
            )
    return values


def parse_autoscaler_spec(spec: str) -> AutoscalerPolicy:
    """Build an :class:`AutoscalerPolicy` from a compact text spec.

    Supported forms::

        queue[:high=8,low=1,step=1,cooldown=0]
        util[:target=0.6,deadband=0.1,cooldown=0]
        ewma[:alpha=0.3,headroom=1.2,rate=<qps>]
        schedule:0=1,0.5=4,1.0=2        (time_s=replicas pairs)
    """
    text = spec.strip()
    if not text:
        raise ConfigurationError("autoscaler spec must be non-empty")
    kind, _, body = text.partition(":")
    kind = kind.strip().lower()
    body = body.strip()
    if kind in ("queue", "queue-depth"):
        values = _parse_policy_kv(
            body, {"high": 8.0, "low": 1.0, "step": 1.0, "cooldown": 0.0}, kind
        )
        return QueueDepthPolicy(
            high_watermark=values["high"],
            low_watermark=values["low"],
            step=int(values["step"]),
            cooldown_s=values["cooldown"],
        )
    if kind in ("util", "utilization", "target-utilization"):
        values = _parse_policy_kv(
            body, {"target": 0.6, "deadband": 0.1, "cooldown": 0.0}, kind
        )
        return TargetUtilizationPolicy(
            target=values["target"],
            deadband=values["deadband"],
            cooldown_s=values["cooldown"],
        )
    if kind in ("ewma", "predictive"):
        values = _parse_policy_kv(
            body, {"alpha": 0.3, "headroom": 1.2, "rate": 0.0}, kind
        )
        return EWMAPolicy(
            alpha=values["alpha"],
            headroom=values["headroom"],
            replica_capacity_qps=values["rate"] if values["rate"] > 0 else None,
        )
    if kind == "schedule":
        if not body:
            raise ConfigurationError(
                "schedule spec needs time=replicas pairs, e.g. schedule:0=1,0.5=4"
            )
        entries: List[Tuple[float, int]] = []
        for item in body.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(
                    f"schedule entries must be time=replicas, got {item!r}"
                )
            time_text, _, count_text = item.partition("=")
            try:
                entries.append((float(time_text), int(count_text)))
            except ValueError:
                raise ConfigurationError(
                    f"schedule entry {item!r} is not time=replicas numbers"
                )
        return ScheduledPolicy(entries)
    raise ConfigurationError(
        f"unknown autoscaler kind {kind!r}; known kinds: queue, util, ewma, schedule"
    )
