"""Online-serving simulation substrate (beyond-paper extension).

The paper motivates Centaur with user-facing recommendation services that
must meet firm SLA targets under bursty load.  This package closes the loop:
it feeds Poisson request arrivals through a batching policy and a
single-device queue whose service times come from the calibrated design-point
runners, and reports the throughput/tail-latency trade-off of CPU-only,
CPU-GPU and Centaur under identical load.
"""

from repro.serving.requests import InferenceRequest, PoissonRequestGenerator
from repro.serving.batching import BatchingPolicy, FixedSizeBatching, TimeoutBatching
from repro.serving.metrics import LatencyDistribution, ServingReport
from repro.serving.simulator import ServingSimulator
from repro.serving.cluster import ClusterReport, ClusterSimulator

__all__ = [
    "InferenceRequest",
    "PoissonRequestGenerator",
    "BatchingPolicy",
    "FixedSizeBatching",
    "TimeoutBatching",
    "LatencyDistribution",
    "ServingReport",
    "ServingSimulator",
    "ClusterReport",
    "ClusterSimulator",
]
