"""Online-serving simulation substrate (beyond-paper extension).

The paper motivates Centaur with user-facing recommendation services that
must meet firm SLA targets under bursty load.  This package closes the loop
with an event-driven serving core built on :mod:`repro.sim.engine`: request
arrivals, batch-close timers, device busy/free transitions and completions
are all scheduled events.  On top of the core sit queue-reactive batching
policies, pluggable dispatchers (round-robin, join-shortest-queue,
least-loaded, power-of-two-choices) and heterogeneous fleets mixing
CPU-only, CPU-GPU and Centaur replicas — reporting the throughput /
tail-latency trade-off under identical load.
"""

from repro.workloads.arrivals import InferenceRequest, PoissonRequestGenerator
from repro.serving.batching import (
    AdaptiveWindowBatching,
    BatchingPolicy,
    BatchSignal,
    CloseOnFullBatching,
    FixedSizeBatching,
    SizeBucketedBatching,
    TimeoutBatching,
)
from repro.serving.metrics import ExecutedBatch, LatencyDistribution, ServingReport
from repro.serving.replica import ReplicaServer, ServiceModel
from repro.serving.simulator import ServingSimulator
from repro.serving.legacy import LegacyServingSimulator
from repro.serving.dispatch import (
    Dispatcher,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
    RoundRobinDispatcher,
)
from repro.serving.cluster import (
    AutoscaleReport,
    ClusterReport,
    ClusterSimulator,
    HeterogeneousCluster,
    ReplicaSpec,
)
from repro.serving.autoscale import (
    AutoscalerPolicy,
    AutoscalingCluster,
    ClusterObservation,
    EWMAPolicy,
    QueueDepthPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    parse_autoscaler_spec,
)
from repro.serving.planner import CapacityPlan, CapacityPlanner, CapacityPoint
from repro.serving.sharded import (
    ShardedReplicaGroup,
    ShardedReplicaServer,
    ShardingStats,
)

__all__ = [
    "InferenceRequest",
    "PoissonRequestGenerator",
    "BatchingPolicy",
    "BatchSignal",
    "FixedSizeBatching",
    "TimeoutBatching",
    "CloseOnFullBatching",
    "AdaptiveWindowBatching",
    "SizeBucketedBatching",
    "ExecutedBatch",
    "LatencyDistribution",
    "ServingReport",
    "ReplicaServer",
    "ServiceModel",
    "ServingSimulator",
    "LegacyServingSimulator",
    "Dispatcher",
    "RoundRobinDispatcher",
    "JoinShortestQueueDispatcher",
    "LeastLoadedDispatcher",
    "PowerOfTwoChoicesDispatcher",
    "ClusterReport",
    "ClusterSimulator",
    "HeterogeneousCluster",
    "ReplicaSpec",
    "AutoscaleReport",
    "AutoscalerPolicy",
    "AutoscalingCluster",
    "ClusterObservation",
    "QueueDepthPolicy",
    "TargetUtilizationPolicy",
    "ScheduledPolicy",
    "EWMAPolicy",
    "parse_autoscaler_spec",
    "CapacityPlan",
    "CapacityPlanner",
    "CapacityPoint",
    "ShardedReplicaGroup",
    "ShardedReplicaServer",
    "ShardingStats",
]
