"""Single-device serving simulation driven by the design-point runners.

The simulator is event-driven: request arrivals, batch-close timers, device
starts and completions are all events on a :class:`repro.sim.engine.Simulator`,
executed in time order by a :class:`repro.serving.replica.ReplicaServer`.
Per-request latency is queueing delay (waiting for the batch to form and for
the device to become free) plus the batch's execution time — exactly the
quantity an SLA is written against.

For open-loop policies (:class:`~repro.serving.batching.TimeoutBatching`,
:class:`~repro.serving.batching.FixedSizeBatching`) the event-driven run
reproduces the legacy replay (:mod:`repro.serving.legacy`) batch-for-batch;
queue-reactive policies (close-on-full, adaptive window) additionally react
to device state, which only the event core can express.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.metrics import ServingReport
from repro.serving.replica import (
    DesignPointRunner,
    ReplicaServer,
    ServiceModel,
    drive_stream,
)
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator
from repro.sim.engine import Simulator

__all__ = ["DesignPointRunner", "ServingSimulator"]


class ServingSimulator:
    """Simulates one inference device serving a batched request stream.

    Args:
        runner: A design-point runner (CPU-only, CPU-GPU or Centaur).
        model: Workload configuration served by the device.
        batching: Batching policy; defaults to a 2 ms window capped at 64.
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        batching: Optional[BatchingPolicy] = None,
    ):
        self.runner = runner
        self.model = model
        self.batching = batching if batching is not None else default_batching()
        self._service = ServiceModel(runner, model)

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve an explicit request stream and report latency statistics."""
        if not requests:
            raise SimulationError("cannot serve an empty request stream")
        sim = Simulator()
        replica = ReplicaServer(
            sim,
            self._service,
            self.batching,
            name=f"{self.runner.design_point}:0",
        )
        drive_stream(sim, [replica], requests, lambda request: replica)
        return replica.build_report(self.model.name)

    # ------------------------------------------------------------------
    def serve_poisson(
        self,
        rate_qps: float,
        duration_s: float,
        seed: int = 0,
    ) -> ServingReport:
        """Serve a Poisson arrival stream of the given rate and duration."""
        generator = PoissonRequestGenerator(rate_qps=rate_qps, seed=seed)
        requests = generator.generate(duration_s=duration_s)
        if not requests:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS; "
                "increase the duration or the rate"
            )
        return self.serve(requests)

    # ------------------------------------------------------------------
    def saturation_throughput(
        self, max_batch_size: int = 128
    ) -> float:
        """Upper bound on sustainable QPS: best batch-size throughput."""
        if max_batch_size <= 0:
            raise SimulationError(f"max_batch_size must be positive, got {max_batch_size}")
        best = 0.0
        batch_size = 1
        while batch_size <= max_batch_size:
            result = self._service.result(batch_size)
            best = max(best, result.throughput_samples_per_second)
            batch_size *= 2
        return best
