"""Single-device serving simulation driven by the design-point runners.

The simulator plays a request stream through a batching policy and a
single-server queue: batches execute one at a time on the device, each with
the end-to-end latency the design-point runner predicts for its batch size.
Per-request latency is queueing delay (waiting for the batch to form and for
the device to become free) plus the batch's execution time — exactly the
quantity an SLA is written against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.results import InferenceResult
from repro.serving.batching import BatchingPolicy, TimeoutBatching
from repro.serving.metrics import LatencyDistribution, ServingReport
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator


class DesignPointRunner(Protocol):
    """The slice of the runner interface the serving simulation needs."""

    @property
    def design_point(self) -> str: ...

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult: ...


@dataclass(frozen=True)
class _ExecutedBatch:
    ready_time_s: float
    start_time_s: float
    finish_time_s: float
    batch_size: int


class ServingSimulator:
    """Simulates one inference device serving a batched request stream.

    Args:
        runner: A design-point runner (CPU-only, CPU-GPU or Centaur).
        model: Workload configuration served by the device.
        batching: Batching policy; defaults to a 2 ms window capped at 64.
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        batching: Optional[BatchingPolicy] = None,
    ):
        self.runner = runner
        self.model = model
        self.batching = batching if batching is not None else TimeoutBatching(
            window_s=2e-3, max_batch_size=64
        )
        self._latency_cache: Dict[int, InferenceResult] = {}

    # ------------------------------------------------------------------
    def _result_for_batch(self, batch_size: int) -> InferenceResult:
        cached = self._latency_cache.get(batch_size)
        if cached is None:
            cached = self.runner.run(self.model, batch_size)
            self._latency_cache[batch_size] = cached
        return cached

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve an explicit request stream and report latency statistics."""
        if not requests:
            raise SimulationError("cannot serve an empty request stream")
        ordered = sorted(requests, key=lambda request: request.arrival_time_s)
        batches = self.batching.form_batches(ordered)
        if not batches:
            raise SimulationError("the batching policy produced no batches")

        executed: List[_ExecutedBatch] = []
        per_request_latency: List[float] = []
        per_request_queueing: List[float] = []
        device_free_at = 0.0
        busy_time = 0.0
        energy = 0.0

        for ready_time, batch_requests in batches:
            result = self._result_for_batch(len(batch_requests))
            start = max(ready_time, device_free_at)
            finish = start + result.latency_seconds
            device_free_at = finish
            busy_time += result.latency_seconds
            energy += result.energy_joules
            executed.append(
                _ExecutedBatch(
                    ready_time_s=ready_time,
                    start_time_s=start,
                    finish_time_s=finish,
                    batch_size=len(batch_requests),
                )
            )
            for request in batch_requests:
                per_request_latency.append(finish - request.arrival_time_s)
                per_request_queueing.append(start - request.arrival_time_s)

        makespan = executed[-1].finish_time_s
        offered_qps = len(ordered) / max(ordered[-1].arrival_time_s, 1e-12)
        return ServingReport(
            design_point=self.runner.design_point,
            model_name=self.model.name,
            offered_load_qps=offered_qps,
            completed_requests=len(ordered),
            makespan_s=makespan,
            latency=LatencyDistribution(per_request_latency),
            queueing=LatencyDistribution(per_request_queueing),
            average_batch_size=sum(b.batch_size for b in executed) / len(executed),
            device_busy_s=busy_time,
            energy_joules=energy,
            extra={"num_batches": float(len(executed))},
        )

    # ------------------------------------------------------------------
    def serve_poisson(
        self,
        rate_qps: float,
        duration_s: float,
        seed: int = 0,
    ) -> ServingReport:
        """Serve a Poisson arrival stream of the given rate and duration."""
        generator = PoissonRequestGenerator(rate_qps=rate_qps, seed=seed)
        requests = generator.generate(duration_s=duration_s)
        if not requests:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS; "
                "increase the duration or the rate"
            )
        return self.serve(requests)

    # ------------------------------------------------------------------
    def saturation_throughput(
        self, max_batch_size: int = 128
    ) -> float:
        """Upper bound on sustainable QPS: best batch-size throughput."""
        if max_batch_size <= 0:
            raise SimulationError(f"max_batch_size must be positive, got {max_batch_size}")
        best = 0.0
        batch_size = 1
        while batch_size <= max_batch_size:
            result = self._result_for_batch(batch_size)
            best = max(best, result.throughput_samples_per_second)
            batch_size *= 2
        return best
