"""Single-device serving simulation driven by the design-point runners.

The simulator is event-driven: request arrivals, batch-close timers, device
starts and completions are all events on a :class:`repro.sim.engine.Simulator`,
executed in time order by a :class:`repro.serving.replica.ReplicaServer`.
Per-request latency is queueing delay (waiting for the batch to form and for
the device to become free) plus the batch's execution time — exactly the
quantity an SLA is written against.

Request streams come from :mod:`repro.workloads`: :meth:`ServingSimulator.serve`
accepts either an eager sequence or a lazy, time-ordered iterator (pulled on
demand, so stream length does not bound memory), and
:meth:`ServingSimulator.serve_workload` drives a full
:class:`~repro.workloads.Workload` — bursty/diurnal arrivals and multi-model
traffic mixes included.

For open-loop policies (:class:`~repro.serving.batching.TimeoutBatching`,
:class:`~repro.serving.batching.FixedSizeBatching`) the event-driven run
reproduces the legacy replay (:mod:`repro.serving.legacy`) batch-for-batch;
queue-reactive policies (close-on-full, adaptive window) additionally react
to device state, which only the event core can express.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Union

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.metrics import ServingReport
from repro.serving.replica import (
    DesignPointRunner,
    ReplicaServer,
    ServiceModel,
    drive_stream,
)
from repro.sim.engine import QueueSpec, Simulator
from repro.sim.profile import SimProfile
from repro.workloads.arrivals import InferenceRequest, PoissonArrivals
from repro.workloads.workload import Workload

__all__ = ["DesignPointRunner", "ServingSimulator"]


class ServingSimulator:
    """Simulates one inference device serving a batched request stream.

    Args:
        runner: A design-point runner (CPU-only, CPU-GPU or Centaur).
        model: Workload configuration served by the device.
        batching: Batching policy; defaults to a 2 ms window capped at 64.
        queue: Event-queue selector forwarded to the engine
            (``"auto"``/``"heap"``/``"calendar"``, an instance, or a class).
        profile: Record a per-event-label engine profile for every serve;
            the latest one is exposed as :attr:`last_profile`.
    """

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        batching: Optional[BatchingPolicy] = None,
        queue: QueueSpec = "auto",
        profile: bool = False,
    ):
        self.runner = runner
        self.model = model
        self.batching = batching if batching is not None else default_batching()
        self.queue = queue
        self.profile = profile
        #: Engine profile of the most recent serve (``None`` until the first
        #: profiled run).
        self.last_profile: Optional[SimProfile] = None
        self._service = ServiceModel(runner, model)

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Union[Sequence[InferenceRequest], Iterable[InferenceRequest]],
        extra_models: Sequence[DLRMConfig] = (),
        report_label: Optional[str] = None,
    ) -> ServingReport:
        """Serve a request stream and report latency statistics.

        ``requests`` may be an eager sequence (sorted internally, the legacy
        contract) or a lazy time-ordered iterator — e.g.
        ``Workload.requests(...)`` — which is pulled one arrival at a time.
        """
        if isinstance(requests, Sequence) and not requests:
            raise SimulationError("cannot serve an empty request stream")
        service = (
            self._service
            if not extra_models
            else ServiceModel(
                self.runner,
                self.model,
                cache=self._service._cache,
                extra_models=extra_models,
            )
        )
        sim = Simulator(queue=self.queue, profile=self.profile)
        replica = ReplicaServer(
            sim,
            service,
            self.batching,
            name=f"{self.runner.design_point}:0",
        )
        outcome = drive_stream(sim, [replica], requests, lambda request: replica)
        if outcome.scheduled == 0:
            raise SimulationError("cannot serve an empty request stream")
        self.last_profile = sim.profile
        return replica.build_report(report_label or self.model.name)

    # ------------------------------------------------------------------
    def serve_workload(
        self,
        workload: Workload,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> ServingReport:
        """Serve a :class:`~repro.workloads.Workload` stream end to end.

        The workload's arrival process is streamed lazily; if it carries a
        multi-model traffic mix, every mix model is priced on this device
        and batches execute one per-model segment at a time.
        """
        label = workload.mix.label if workload.mix is not None else self.model.name
        return self.serve(
            workload.requests(duration_s=duration_s, num_requests=num_requests, seed=seed),
            extra_models=workload.models,
            report_label=label,
        )

    # ------------------------------------------------------------------
    def serve_poisson(
        self,
        rate_qps: float,
        duration_s: float,
        seed: int = 0,
    ) -> ServingReport:
        """Serve a Poisson arrival stream of the given rate and duration."""
        stream = PoissonArrivals(rate_qps=rate_qps).arrivals(
            duration_s=duration_s, seed=seed
        )
        first = next(stream, None)
        if first is None:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS; "
                "increase the duration or the rate"
            )
        return self.serve(itertools.chain([first], stream))

    # ------------------------------------------------------------------
    def saturation_throughput(
        self, max_batch_size: int = 128
    ) -> float:
        """Upper bound on sustainable QPS: best batch-size throughput."""
        if max_batch_size <= 0:
            raise SimulationError(f"max_batch_size must be positive, got {max_batch_size}")
        best = 0.0
        batch_size = 1
        while batch_size <= max_batch_size:
            result = self._service.result(batch_size)
            best = max(best, result.throughput_samples_per_second)
            batch_size *= 2
        return best
