"""Batching policies for the serving simulation.

Recommendation servers trade latency for throughput by batching requests
before dispatching them to the inference engine.  Policies expose two
complementary interfaces:

* The *offline* interface (:meth:`BatchingPolicy.form_batches`) groups a
  complete, pre-sorted arrival stream into batches ahead of time.  It exists
  for policies whose decisions depend only on arrival times, and it is what
  the legacy replay simulator (:mod:`repro.serving.legacy`) consumes.
* The *online* interface (:meth:`BatchingPolicy.on_enqueue` /
  :meth:`BatchingPolicy.on_timer` / :meth:`BatchingPolicy.on_device_idle`)
  is driven by the event-driven serving core (:mod:`repro.serving.replica`).
  The policy reacts to queue events as they happen — which is what makes
  *queue-reactive* policies (close when the device idles, shrink the window
  as the queue deepens) expressible at all.

Provided policies:

* :class:`FixedSizeBatching` — wait until exactly ``batch_size`` requests
  have queued (optionally bounded by a maximum wait), then dispatch.
* :class:`TimeoutBatching` — dispatch whatever has queued after a fixed
  batching window, capped at a maximum batch size (the policy most
  user-facing services deploy).
* :class:`CloseOnFullBatching` — work-conserving greedy batching: dispatch
  immediately while the device is idle, otherwise accumulate up to a cap
  (requires the event-driven simulator).
* :class:`AdaptiveWindowBatching` — a batching window that shrinks as the
  queue deepens (requires the event-driven simulator).
* :class:`SizeBucketedBatching` — close on a timeout or when the largest
  size bucket fills, and execute each batch padded up to the next bucket
  (models kernels compiled for a fixed set of batch shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.workloads.arrivals import InferenceRequest


@dataclass(frozen=True)
class BatchSignal:
    """What a batching policy wants the replica to do after a queue event.

    Attributes:
        close: Dispatch the entire pending batch now.
        timer_at: Absolute simulated time at which to (re-)arm the batch
            close timer; ``None`` leaves any armed timer untouched.
    """

    close: bool = False
    timer_at: Optional[float] = None


#: Signal meaning "no action".
NO_ACTION = BatchSignal()


class BatchingPolicy:
    """Interface: groups queued requests into dispatchable batches.

    Policies are immutable; all decision state is derived from the pending
    queue passed to each hook, so one policy instance can safely drive many
    replicas at once.
    """

    # -- offline interface ---------------------------------------------
    def form_batches(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Tuple[float, List[InferenceRequest]]]:
        """Group arrivals into batches ahead of time.

        Args:
            requests: All arrivals, sorted by arrival time.

        Returns:
            A list of ``(ready_time_s, batch_requests)`` tuples where
            ``ready_time_s`` is the earliest time the batch may start
            executing (all members have arrived and any batching window has
            elapsed).

        Raises:
            SimulationError: For queue-reactive policies whose decisions
                depend on device state and therefore cannot be formed
                open-loop.
        """
        raise SimulationError(
            f"{type(self).__name__} is queue-reactive and cannot form batches "
            "open-loop; serve it through the event-driven ServingSimulator"
        )

    # -- online interface ----------------------------------------------
    def on_enqueue(
        self,
        pending: Sequence[InferenceRequest],
        now: float,
        device_idle: bool,
    ) -> BatchSignal:
        """React to a request joining the pending batch (it is already in
        ``pending``)."""
        return NO_ACTION

    def on_timer(
        self,
        pending: Sequence[InferenceRequest],
        now: float,
        device_idle: bool,
    ) -> BatchSignal:
        """React to the batch-close timer firing with a non-empty pending
        batch.  The default closes the batch."""
        return BatchSignal(close=True)

    def on_device_idle(
        self,
        pending: Sequence[InferenceRequest],
        now: float,
    ) -> BatchSignal:
        """React to the device going idle with requests still pending."""
        return NO_ACTION

    def execution_batch_size(self, formed_size: int) -> int:
        """Batch size the device actually executes for a formed batch.

        Policies that pad batches to preferred shapes override this; the
        default executes exactly what was formed.
        """
        return formed_size


def default_batching() -> "TimeoutBatching":
    """The serving stack's shared default: a 2 ms window capped at 64.

    Every simulator front-end (event-driven, legacy oracle, cluster) must
    default to the *same* policy or the equivalence contract between them
    silently breaks — construct it here only.
    """
    return TimeoutBatching(window_s=2e-3, max_batch_size=64)


@dataclass(frozen=True)
class FixedSizeBatching(BatchingPolicy):
    """Dispatch once ``batch_size`` requests are available (or a wait cap hits).

    Attributes:
        batch_size: Target batch size.
        max_wait_s: Upper bound on how long the oldest queued request may
            wait for the batch to fill; a partial batch dispatches when it is
            reached.
    """

    batch_size: int
    max_wait_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {self.batch_size}")
        if self.max_wait_s <= 0:
            raise SimulationError(f"max_wait_s must be positive, got {self.max_wait_s}")

    def form_batches(self, requests):
        batches: List[Tuple[float, List[InferenceRequest]]] = []
        pending: List[InferenceRequest] = []
        for request in requests:
            # Before admitting this request, flush the pending batch if its
            # oldest member would exceed the wait cap by waiting for it.
            while pending and request.arrival_time_s > pending[0].arrival_time_s + self.max_wait_s:
                ready = pending[0].arrival_time_s + self.max_wait_s
                batches.append((ready, pending))
                pending = []
            pending.append(request)
            if len(pending) >= self.batch_size:
                batches.append((pending[-1].arrival_time_s, pending))
                pending = []
        if pending:
            ready = (
                pending[0].arrival_time_s + self.max_wait_s
                if self.max_wait_s != float("inf")
                else pending[-1].arrival_time_s
            )
            batches.append((ready, pending))
        return batches

    def on_enqueue(self, pending, now, device_idle):
        if len(pending) >= self.batch_size:
            return BatchSignal(close=True)
        if len(pending) == 1 and self.max_wait_s != float("inf"):
            return BatchSignal(timer_at=pending[0].arrival_time_s + self.max_wait_s)
        return NO_ACTION


@dataclass(frozen=True)
class TimeoutBatching(BatchingPolicy):
    """Dispatch whatever arrived within a batching window.

    Attributes:
        window_s: Length of the batching window, measured from the arrival
            of the first request of the batch.
        max_batch_size: Hard cap; a full batch dispatches immediately.
    """

    window_s: float
    max_batch_size: int = 128

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise SimulationError(f"window_s must be positive, got {self.window_s}")
        if self.max_batch_size <= 0:
            raise SimulationError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )

    def form_batches(self, requests):
        batches: List[Tuple[float, List[InferenceRequest]]] = []
        pending: List[InferenceRequest] = []
        window_end = 0.0
        for request in requests:
            if not pending:
                pending = [request]
                window_end = request.arrival_time_s + self.window_s
                continue
            if request.arrival_time_s <= window_end and len(pending) < self.max_batch_size:
                pending.append(request)
                if len(pending) >= self.max_batch_size:
                    batches.append((request.arrival_time_s, pending))
                    pending = []
            else:
                batches.append((window_end, pending))
                pending = [request]
                window_end = request.arrival_time_s + self.window_s
        if pending:
            batches.append((window_end, pending))
        return batches

    def on_enqueue(self, pending, now, device_idle):
        if len(pending) >= self.max_batch_size:
            return BatchSignal(close=True)
        if len(pending) == 1:
            return BatchSignal(timer_at=pending[0].arrival_time_s + self.window_s)
        return NO_ACTION


@dataclass(frozen=True)
class CloseOnFullBatching(BatchingPolicy):
    """Work-conserving greedy batching (queue-reactive; event-driven only).

    While the device is idle every arrival dispatches immediately (latency
    first); while the device is busy arrivals accumulate and dispatch as one
    batch the moment the device frees, capped at ``batch_size`` (throughput
    recovers exactly when the queue needs it).  This is the policy dynamic
    batching systems such as continuous-batching servers implement, and it
    cannot be expressed open-loop because its decisions depend on device
    state.

    Attributes:
        batch_size: Hard cap on a dispatched batch.
        max_wait_s: Safety timeout so requests cannot starve if the device
            never reports idle (defaults to no timeout).
    """

    batch_size: int = 64
    max_wait_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {self.batch_size}")
        if self.max_wait_s <= 0:
            raise SimulationError(f"max_wait_s must be positive, got {self.max_wait_s}")

    def on_enqueue(self, pending, now, device_idle):
        if device_idle or len(pending) >= self.batch_size:
            return BatchSignal(close=True)
        if len(pending) == 1 and self.max_wait_s != float("inf"):
            return BatchSignal(timer_at=pending[0].arrival_time_s + self.max_wait_s)
        return NO_ACTION

    def on_device_idle(self, pending, now):
        return BatchSignal(close=True)


@dataclass(frozen=True)
class AdaptiveWindowBatching(BatchingPolicy):
    """A batching window that shrinks as the queue deepens (event-driven only).

    With one pending request the policy waits the full ``base_window_s`` for
    batching partners; every additional pending request divides the window,
    so bursts dispatch quickly while trickles still batch.  The effective
    deadline for a pending batch of ``n`` requests is::

        first_arrival + max(min_window_s, base_window_s / (1 + depth_sensitivity * (n - 1)))

    Attributes:
        base_window_s: Window applied to a lone pending request.
        max_batch_size: Hard cap; a full batch dispatches immediately.
        depth_sensitivity: How aggressively depth shortens the window.
        min_window_s: Floor so the window never collapses entirely.
    """

    base_window_s: float
    max_batch_size: int = 128
    depth_sensitivity: float = 1.0
    min_window_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_window_s <= 0:
            raise SimulationError(
                f"base_window_s must be positive, got {self.base_window_s}"
            )
        if self.max_batch_size <= 0:
            raise SimulationError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.depth_sensitivity < 0:
            raise SimulationError(
                f"depth_sensitivity must be non-negative, got {self.depth_sensitivity}"
            )
        if self.min_window_s < 0:
            raise SimulationError(
                f"min_window_s must be non-negative, got {self.min_window_s}"
            )

    def _deadline(self, pending) -> float:
        window = self.base_window_s / (1.0 + self.depth_sensitivity * (len(pending) - 1))
        return pending[0].arrival_time_s + max(self.min_window_s, window)

    def on_enqueue(self, pending, now, device_idle):
        if len(pending) >= self.max_batch_size:
            return BatchSignal(close=True)
        deadline = self._deadline(pending)
        if deadline <= now:
            return BatchSignal(close=True)
        return BatchSignal(timer_at=deadline)


@dataclass(frozen=True)
class SizeBucketedBatching(BatchingPolicy):
    """Close on a window or when the largest bucket fills; execute padded.

    Models serving stacks whose kernels are compiled for a fixed set of batch
    shapes: a formed batch of ``n`` requests executes with the latency and
    energy of the smallest bucket >= ``n``.  (Event-driven only.)

    Attributes:
        window_s: Batching window measured from the first pending arrival.
        buckets: Strictly increasing executable batch sizes.
    """

    window_s: float
    buckets: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise SimulationError(f"window_s must be positive, got {self.window_s}")
        if not self.buckets:
            raise SimulationError("buckets must be non-empty")
        if any(b <= 0 for b in self.buckets):
            raise SimulationError(f"buckets must be positive, got {self.buckets}")
        if any(b >= c for b, c in zip(self.buckets, self.buckets[1:])):
            raise SimulationError(f"buckets must be strictly increasing, got {self.buckets}")

    def on_enqueue(self, pending, now, device_idle):
        if len(pending) >= self.buckets[-1]:
            return BatchSignal(close=True)
        if len(pending) == 1:
            return BatchSignal(timer_at=pending[0].arrival_time_s + self.window_s)
        return NO_ACTION

    def execution_batch_size(self, formed_size: int) -> int:
        for bucket in self.buckets:
            if bucket >= formed_size:
                return bucket
        return formed_size
