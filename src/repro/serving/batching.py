"""Batching policies for the serving simulation.

Recommendation servers trade latency for throughput by batching requests
before dispatching them to the inference engine.  Two canonical policies are
provided:

* :class:`FixedSizeBatching` — wait until exactly ``batch_size`` requests
  have queued (optionally bounded by a maximum wait), then dispatch.
* :class:`TimeoutBatching` — dispatch whatever has queued after a fixed
  batching window, capped at a maximum batch size (the policy most
  user-facing services deploy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.serving.requests import InferenceRequest


class BatchingPolicy:
    """Interface: groups queued requests into dispatchable batches."""

    def form_batches(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Tuple[float, List[InferenceRequest]]]:
        """Group arrivals into batches.

        Args:
            requests: All arrivals, sorted by arrival time.

        Returns:
            A list of ``(ready_time_s, batch_requests)`` tuples where
            ``ready_time_s`` is the earliest time the batch may start
            executing (all members have arrived and any batching window has
            elapsed).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSizeBatching(BatchingPolicy):
    """Dispatch once ``batch_size`` requests are available (or a wait cap hits).

    Attributes:
        batch_size: Target batch size.
        max_wait_s: Upper bound on how long the oldest queued request may
            wait for the batch to fill; a partial batch dispatches when it is
            reached.
    """

    batch_size: int
    max_wait_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {self.batch_size}")
        if self.max_wait_s <= 0:
            raise SimulationError(f"max_wait_s must be positive, got {self.max_wait_s}")

    def form_batches(self, requests):
        batches: List[Tuple[float, List[InferenceRequest]]] = []
        pending: List[InferenceRequest] = []
        for request in requests:
            # Before admitting this request, flush the pending batch if its
            # oldest member would exceed the wait cap by waiting for it.
            while pending and request.arrival_time_s > pending[0].arrival_time_s + self.max_wait_s:
                ready = pending[0].arrival_time_s + self.max_wait_s
                batches.append((ready, pending))
                pending = []
            pending.append(request)
            if len(pending) >= self.batch_size:
                batches.append((pending[-1].arrival_time_s, pending))
                pending = []
        if pending:
            ready = (
                pending[0].arrival_time_s + self.max_wait_s
                if self.max_wait_s != float("inf")
                else pending[-1].arrival_time_s
            )
            batches.append((ready, pending))
        return batches


@dataclass(frozen=True)
class TimeoutBatching(BatchingPolicy):
    """Dispatch whatever arrived within a batching window.

    Attributes:
        window_s: Length of the batching window, measured from the arrival
            of the first request of the batch.
        max_batch_size: Hard cap; a full batch dispatches immediately.
    """

    window_s: float
    max_batch_size: int = 128

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise SimulationError(f"window_s must be positive, got {self.window_s}")
        if self.max_batch_size <= 0:
            raise SimulationError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )

    def form_batches(self, requests):
        batches: List[Tuple[float, List[InferenceRequest]]] = []
        pending: List[InferenceRequest] = []
        window_end = 0.0
        for request in requests:
            if not pending:
                pending = [request]
                window_end = request.arrival_time_s + self.window_s
                continue
            if request.arrival_time_s <= window_end and len(pending) < self.max_batch_size:
                pending.append(request)
                if len(pending) >= self.max_batch_size:
                    batches.append((request.arrival_time_s, pending))
                    pending = []
            else:
                batches.append((window_end, pending))
                pending = [request]
                window_end = request.arrival_time_s + self.window_s
        if pending:
            batches.append((window_end, pending))
        return batches
