"""Legacy open-loop serving replay, kept as a differential-testing oracle.

This is the original serving model: sort arrivals, form every batch ahead of
time with the policy's offline :meth:`~repro.serving.batching.BatchingPolicy.form_batches`,
then replay the batches through a single-server queue with ``start =
max(ready, device_free)``.  The event-driven :class:`repro.serving.simulator.
ServingSimulator` must reproduce this replay exactly for open-loop policies
(see ``tests/serving/test_event_equivalence.py``); queue-reactive policies
have no open-loop equivalent and only run on the event core.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.serving.batching import BatchingPolicy, default_batching
from repro.serving.metrics import ExecutedBatch, LatencyDistribution, ServingReport
from repro.serving.replica import DesignPointRunner, ServiceModel
from repro.workloads.arrivals import InferenceRequest, PoissonRequestGenerator


class LegacyServingSimulator:
    """Open-loop replay of one device serving a batched request stream."""

    def __init__(
        self,
        runner: DesignPointRunner,
        model: DLRMConfig,
        batching: Optional[BatchingPolicy] = None,
    ):
        self.runner = runner
        self.model = model
        self.batching = batching if batching is not None else default_batching()
        self._service = ServiceModel(runner, model)

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[InferenceRequest]) -> ServingReport:
        """Serve an explicit request stream and report latency statistics."""
        if not requests:
            raise SimulationError("cannot serve an empty request stream")
        ordered = sorted(requests, key=lambda request: request.arrival_time_s)
        batches = self.batching.form_batches(ordered)
        if not batches:
            raise SimulationError("the batching policy produced no batches")

        executed: List[ExecutedBatch] = []
        per_request_latency: List[float] = []
        per_request_queueing: List[float] = []
        device_free_at = 0.0
        busy_time = 0.0
        energy = 0.0

        for ready_time, batch_requests in batches:
            result = self._service.result(
                self.batching.execution_batch_size(len(batch_requests))
            )
            start = max(ready_time, device_free_at)
            finish = start + result.latency_seconds
            device_free_at = finish
            busy_time += result.latency_seconds
            energy += result.energy_joules
            executed.append(
                ExecutedBatch(
                    ready_time_s=ready_time,
                    start_time_s=start,
                    finish_time_s=finish,
                    batch_size=len(batch_requests),
                )
            )
            for request in batch_requests:
                per_request_latency.append(finish - request.arrival_time_s)
                per_request_queueing.append(start - request.arrival_time_s)

        makespan = executed[-1].finish_time_s
        offered_qps = len(ordered) / max(ordered[-1].arrival_time_s, 1e-12)
        return ServingReport(
            design_point=self.runner.design_point,
            model_name=self.model.name,
            offered_load_qps=offered_qps,
            completed_requests=len(ordered),
            makespan_s=makespan,
            latency=LatencyDistribution(per_request_latency),
            queueing=LatencyDistribution(per_request_queueing),
            average_batch_size=sum(b.batch_size for b in executed) / len(executed),
            device_busy_s=busy_time,
            energy_joules=energy,
            extra={"num_batches": float(len(executed))},
            executed_batches=tuple(executed),
        )

    # ------------------------------------------------------------------
    def serve_poisson(
        self,
        rate_qps: float,
        duration_s: float,
        seed: int = 0,
    ) -> ServingReport:
        """Serve a Poisson arrival stream of the given rate and duration."""
        generator = PoissonRequestGenerator(rate_qps=rate_qps, seed=seed)
        requests = generator.generate(duration_s=duration_s)
        if not requests:
            raise SimulationError(
                f"no requests arrived in {duration_s}s at {rate_qps} QPS; "
                "increase the duration or the rate"
            )
        return self.serve(requests)
