"""Latency/throughput metrics for the serving simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class ExecutedBatch:
    """One batch as the device executed it (boundary record).

    Attributes:
        ready_time_s: Time the batching policy closed the batch.
        start_time_s: Time the device started executing it.
        finish_time_s: Time the device finished it.
        batch_size: Number of requests in the batch (as formed, before any
            bucket padding).
    """

    ready_time_s: float
    start_time_s: float
    finish_time_s: float
    batch_size: int


class LatencyDistribution:
    """A collection of per-request latencies with percentile queries.

    Samples are sorted once at construction; every statistic and percentile
    query reads the sorted array, and the common tail percentiles
    (p50/p95/p99) are computed together in a single vectorized pass.

    Distributions are non-empty by default (a serving run that completed
    nothing is a bug, not a statistic).  Pass ``allow_empty=True`` for
    windowed views — e.g. one bucket of an autoscaling attainment timeline
    in which no request happened to complete.  An empty distribution answers
    :meth:`sla_attainment` vacuously (1.0) and raises a clear
    :class:`~repro.errors.SimulationError` from every statistic that needs
    at least one sample.
    """

    _COMMON_PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, latencies_s: Sequence[float], allow_empty: bool = False):
        if len(latencies_s) == 0 and not allow_empty:
            raise SimulationError("latency distribution needs at least one sample")
        array = np.asarray(latencies_s, dtype=np.float64)
        if np.any(array < 0):
            raise SimulationError("latencies must be non-negative")
        self._latencies = np.sort(array)
        self._common: Dict[float, float] = {}

    def __len__(self) -> int:
        return int(self._latencies.size)

    @property
    def samples_s(self) -> "np.ndarray":
        """A copy of the individual latencies (sorted ascending)."""
        return self._latencies.copy()

    def _require_samples(self, what: str) -> None:
        if self._latencies.size == 0:
            raise SimulationError(
                f"latency distribution is empty; {what} needs at least one sample"
            )

    @property
    def mean_s(self) -> float:
        self._require_samples("mean_s")
        return float(self._latencies.mean())

    @property
    def max_s(self) -> float:
        self._require_samples("max_s")
        return float(self._latencies[-1])

    def percentiles(self, percentiles: Sequence[float]) -> "np.ndarray":
        """Latencies at several percentiles in one vectorized pass."""
        self._require_samples("percentiles")
        values = np.asarray(percentiles, dtype=np.float64)
        if values.size and (values.min() < 0.0 or values.max() > 100.0):
            raise SimulationError(
                f"percentiles must be in [0, 100], got {list(percentiles)}"
            )
        return np.percentile(self._latencies, values)

    def percentile(self, percentile: float) -> float:
        """Latency at a percentile (e.g. ``99.0`` for the p99 tail)."""
        self._require_samples("percentile")
        if not 0.0 <= percentile <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {percentile}")
        return float(np.percentile(self._latencies, percentile))

    def _common_percentile(self, percentile: float) -> float:
        if not self._common:
            values = self.percentiles(self._COMMON_PERCENTILES)
            self._common = dict(zip(self._COMMON_PERCENTILES, values.tolist()))
        return self._common[percentile]

    @property
    def p50_s(self) -> float:
        return self._common_percentile(50.0)

    @property
    def p95_s(self) -> float:
        return self._common_percentile(95.0)

    @property
    def p99_s(self) -> float:
        return self._common_percentile(99.0)

    def sla_attainment(self, sla_s: float) -> float:
        """Fraction of requests finishing within an SLA budget.

        An empty distribution attains any SLA vacuously (1.0): zero of zero
        requests missed the budget.  This guard is what keeps windowed
        attainment views (timeline buckets with no completions) from dividing
        by zero.
        """
        if sla_s <= 0:
            raise SimulationError(f"sla_s must be positive, got {sla_s}")
        if len(self) == 0:
            return 1.0
        # The array is sorted, so attainment is one binary search.
        return float(np.searchsorted(self._latencies, sla_s, side="right")) / len(self)


@dataclass
class ServingReport:
    """Outcome of serving one request stream on one design point."""

    design_point: str
    model_name: str
    offered_load_qps: float
    completed_requests: int
    makespan_s: float
    latency: LatencyDistribution
    queueing: LatencyDistribution
    average_batch_size: float
    device_busy_s: float
    energy_joules: float
    extra: Dict[str, float] = field(default_factory=dict)
    executed_batches: Tuple[ExecutedBatch, ...] = ()
    #: Per-request latencies in completion order (``latency`` sorts them
    #: away); zipping against ``executed_batches`` sizes recovers each
    #: request's completion time, which timeline renderers bucket by.
    ordered_latency_s: Tuple[float, ...] = ()

    def completion_samples(self) -> List[Tuple[float, float]]:
        """``(completion_time_s, latency_s)`` pairs in completion order."""
        if not self.ordered_latency_s:
            return []
        pairs: List[Tuple[float, float]] = []
        cursor = 0
        for batch in self.executed_batches:
            for latency in self.ordered_latency_s[cursor : cursor + batch.batch_size]:
                pairs.append((batch.finish_time_s, latency))
            cursor += batch.batch_size
        return pairs

    @property
    def achieved_qps(self) -> float:
        if self.makespan_s == 0:
            return 0.0
        return self.completed_requests / self.makespan_s

    @property
    def device_utilization(self) -> float:
        if self.makespan_s == 0:
            return 0.0
        return min(1.0, self.device_busy_s / self.makespan_s)

    @property
    def energy_per_request_joules(self) -> float:
        if self.completed_requests == 0:
            return 0.0
        return self.energy_joules / self.completed_requests

    def summary_row(self) -> Dict[str, float]:
        """Flat dictionary used by the reporting/benchmark layers."""
        return {
            "offered_qps": self.offered_load_qps,
            "achieved_qps": self.achieved_qps,
            "p50_ms": self.latency.p50_s * 1e3,
            "p95_ms": self.latency.p95_s * 1e3,
            "p99_ms": self.latency.p99_s * 1e3,
            "mean_batch": self.average_batch_size,
            "utilization": self.device_utilization,
            "energy_per_request_mj": self.energy_per_request_joules * 1e3,
        }
