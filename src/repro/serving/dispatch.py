"""Pluggable request dispatchers for multi-replica serving.

A dispatcher picks the replica each request joins, *at arrival time*, with
full visibility into live replica state (queue depths, device speed,
predicted backlog).  All dispatchers are deterministic given their
constructor arguments: :class:`PowerOfTwoChoicesDispatcher` derives its
randomness from a seed and is reset before every stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.serving.replica import ReplicaServer


class Dispatcher:
    """Interface: route one request to one replica."""

    #: Human-readable policy name used in reports.
    name = "dispatcher"

    def reset(self) -> None:
        """Clear per-stream state; called once before each request stream."""

    def select(
        self, replicas: Sequence[ReplicaServer], request, now: float
    ) -> int:
        """Index of the replica the request should join."""
        raise NotImplementedError


class RoundRobinDispatcher(Dispatcher):
    """Cycle through replicas in arrival order (the legacy cluster policy)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select(self, replicas, request, now):
        index = self._next % len(replicas)
        self._next += 1
        return index


class JoinShortestQueueDispatcher(Dispatcher):
    """Join the replica with the fewest outstanding requests (ties: lowest index)."""

    name = "join-shortest-queue"

    def select(self, replicas, request, now):
        return min(range(len(replicas)), key=lambda i: (replicas[i].outstanding, i))


class LeastLoadedDispatcher(Dispatcher):
    """Join the replica with the smallest predicted time-to-drain.

    Unlike JSQ this weights queue depth by device speed, so a Centaur
    replica with a deeper queue can still win over an idle-but-slow CPU
    replica in a heterogeneous fleet.
    """

    name = "least-loaded"

    def select(self, replicas, request, now):
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].estimated_backlog_s(now), i),
        )


class PowerOfTwoChoicesDispatcher(Dispatcher):
    """Sample two distinct replicas uniformly, join the shorter queue.

    The classic load-balancing result: two random choices capture most of
    JSQ's benefit while probing only two queues.  Deterministic given the
    seed; degenerates to the single replica when only one exists.
    """

    name = "power-of-two-choices"

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise SimulationError(f"seed must be non-negative, got {seed}")
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def select(self, replicas, request, now):
        if len(replicas) == 1:
            return 0
        first, second = self._rng.choice(len(replicas), size=2, replace=False)
        candidates = (int(first), int(second))
        return min(candidates, key=lambda i: (replicas[i].outstanding, i))
