"""Pluggable request dispatchers for multi-replica serving.

A dispatcher picks the replica each request joins, *at arrival time*, with
full visibility into live replica state (queue depths, device speed,
predicted backlog).  All dispatchers are deterministic given their
constructor arguments: :class:`PowerOfTwoChoicesDispatcher` derives its
randomness from a seed and is reset before every stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.serving.replica import ReplicaServer


class Dispatcher:
    """Interface: route one request to one replica."""

    #: Human-readable policy name used in reports.
    name = "dispatcher"

    def reset(self) -> None:
        """Clear per-stream state; called once before each request stream."""

    def select(
        self, replicas: Sequence[ReplicaServer], request, now: float
    ) -> int:
        """Index of the replica the request should join."""
        raise NotImplementedError


class RoundRobinDispatcher(Dispatcher):
    """Cycle through replicas in arrival order (the legacy cluster policy).

    The rotation is anchored to the *identity* of the last-served replica,
    not a monotonic counter: when an elastic fleet grows or shrinks
    mid-stream the dispatcher simply continues with the replica after the
    one it served last, so no replica is skipped or double-hit by a modulus
    change.  If the last-served replica itself left the fleet, the
    dispatcher walks its *remembered* rotation forward from the vanished
    anchor and resumes at the first remembered successor still present —
    drains only ever remove a suffix of the active list, for which this
    degrades to "the slot the anchor occupied", but a crash can take the
    anchor *and* replicas before it in one step, where the old slot
    heuristic restarted the rotation at the wrong replica.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last: Optional[ReplicaServer] = None
        self._last_index = 0
        self._order: Tuple[ReplicaServer, ...] = ()

    def reset(self) -> None:
        self._last = None
        self._last_index = 0
        self._order = ()

    def _resume_after_anchor_lost(self, replicas) -> int:
        order = self._order
        size = len(order)
        # The anchor's position in the remembered order is the index it was
        # served at; walk forward (wrapping) to its nearest remembered
        # successor that survived into the current fleet.
        for step in range(1, size + 1):
            candidate = order[(self._last_index + step) % size]
            for position, replica in enumerate(replicas):
                if replica is candidate:
                    return position
        # Nothing remembered survived (fleet fully replaced): restart at
        # the anchor's old slot if it still exists, else wrap.
        return self._last_index if self._last_index < len(replicas) else 0

    def select(self, replicas, request, now):
        if self._last is None:
            index = 0
        elif (
            self._last_index < len(replicas)
            and replicas[self._last_index] is self._last
        ):
            # Fast path: unchanged fleet (the overwhelmingly common case)
            # advances in O(1), exactly like the old counter.
            index = (self._last_index + 1) % len(replicas)
        else:
            for position, replica in enumerate(replicas):
                if replica is self._last:
                    index = (position + 1) % len(replicas)
                    break
            else:
                index = self._resume_after_anchor_lost(replicas)
        self._last = replicas[index]
        self._last_index = index
        self._order = tuple(replicas)
        return index


class JoinShortestQueueDispatcher(Dispatcher):
    """Join the replica with the fewest outstanding requests (ties: lowest index)."""

    name = "join-shortest-queue"

    def select(self, replicas, request, now):
        return min(range(len(replicas)), key=lambda i: (replicas[i].outstanding, i))


class LeastLoadedDispatcher(Dispatcher):
    """Join the replica with the smallest predicted time-to-drain.

    Unlike JSQ this weights queue depth by device speed, so a Centaur
    replica with a deeper queue can still win over an idle-but-slow CPU
    replica in a heterogeneous fleet.
    """

    name = "least-loaded"

    def select(self, replicas, request, now):
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].estimated_backlog_s(now), i),
        )


class PowerOfTwoChoicesDispatcher(Dispatcher):
    """Sample two distinct replicas uniformly, join the shorter queue.

    The classic load-balancing result: two random choices capture most of
    JSQ's benefit while probing only two queues.  Deterministic given the
    seed, with a consumption contract that holds under elastic fleets:
    *every* :meth:`select` call advances the RNG, including the degenerate
    single-replica fleet an autoscaler can shrink to mid-stream (which
    previously consumed nothing and silently froze the decision stream).
    Ties on ``outstanding`` are broken by the lower index in the *current*
    replica list — never by an extra draw — so a drain that shifts indices
    changes which physical replica wins a tie, but the same seed over the
    same fleet trajectory always reproduces the same choices; ``reset()``
    is the only way to rewind the stream.
    """

    name = "power-of-two-choices"

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise SimulationError(f"seed must be non-negative, got {seed}")
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def select(self, replicas, request, now):
        count = len(replicas)
        if count == 1:
            # The choice is forced but the stream must still advance: a
            # fleet that dips to one active replica and later scales back
            # up would otherwise resume from a stale generator state.
            self._rng.random()
            return 0
        first, second = self._rng.choice(count, size=2, replace=False)
        candidates = (int(first), int(second))
        return min(candidates, key=lambda i: (replicas[i].outstanding, i))
