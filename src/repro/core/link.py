"""CPU<->FPGA chiplet communication link model.

HARPv2 exposes two PCIe links and one UPI cache-coherent link between the
Xeon and the Arria 10, for an aggregate theoretical uni-directional bandwidth
of 28.8 GB/s; after protocol overheads roughly 17-18 GB/s is achievable, and
the paper's EB-Streamer reaches about 68% of that for irregular gathers.

The link model answers two kinds of questions:

* bulk transfers (index arrays, dense features, results): latency plus
  bytes over the effective bandwidth,
* gather streams (many independent cache-line-granularity reads): the
  sustained bandwidth is the smaller of a protocol-efficiency cap and the
  Little's-law bound set by how many requests can be kept in flight.

The "proposed architecture" of the paper's Fig. 8 adds a cache-bypassing
path provisioned at (or above) DRAM bandwidth; enabling it on the
:class:`~repro.config.system.LinkConfig` switches gather streams onto that
path, which the Section VII ablation benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import LinkConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class LinkTransferEstimate:
    """Latency decomposition of one transfer (bulk or gather stream)."""

    bytes_transferred: float
    latency_s: float
    fixed_s: float
    streaming_s: float
    sustained_bandwidth: float

    @property
    def achieved_bandwidth(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.bytes_transferred / self.latency_s


class ChipletLink:
    """Performance model of the package-level CPU<->FPGA interconnect."""

    def __init__(self, config: LinkConfig, gather_efficiency: float = 0.68):
        if not 0.0 < gather_efficiency <= 1.0:
            raise SimulationError(
                f"gather_efficiency must be in (0, 1], got {gather_efficiency}"
            )
        self.config = config
        self.gather_efficiency = gather_efficiency
        self.bytes_transferred = 0.0
        self.transfers = 0

    # ------------------------------------------------------------------
    @property
    def effective_bandwidth(self) -> float:
        return self.config.effective_bandwidth

    @property
    def peak_gather_bandwidth(self) -> float:
        """Sustained gather bandwidth when fully pipelined (the ~11.9 GB/s point)."""
        return self.gather_efficiency * self._gather_path_bandwidth()

    def _gather_path_bandwidth(self) -> float:
        """Raw bandwidth of the path gathers use (bypass path when available)."""
        if self.config.cache_bypass_available and self.config.bypass_bandwidth:
            return self.config.bypass_bandwidth
        return self.config.effective_bandwidth

    # ------------------------------------------------------------------
    def bulk_transfer(self, num_bytes: float) -> LinkTransferEstimate:
        """A contiguous transfer (index array upload, dense features, results)."""
        if num_bytes < 0:
            raise SimulationError(f"num_bytes must be non-negative, got {num_bytes}")
        self.transfers += 1
        self.bytes_transferred += num_bytes
        if num_bytes == 0:
            return LinkTransferEstimate(0.0, 0.0, 0.0, 0.0, 0.0)
        streaming_s = num_bytes / self.config.effective_bandwidth
        fixed_s = self.config.latency_s
        return LinkTransferEstimate(
            bytes_transferred=float(num_bytes),
            latency_s=fixed_s + streaming_s,
            fixed_s=fixed_s,
            streaming_s=streaming_s,
            sustained_bandwidth=self.config.effective_bandwidth,
        )

    def gather_bandwidth(self, outstanding_requests: float) -> float:
        """Sustained bandwidth of a gather stream with bounded concurrency.

        Two bounds apply: the protocol-efficiency cap on the gather path, and
        Little's law over the in-flight cache-line requests and the link's
        round-trip latency.
        """
        if outstanding_requests <= 0:
            raise SimulationError(
                f"outstanding_requests must be positive, got {outstanding_requests}"
            )
        outstanding = min(outstanding_requests, self.config.max_outstanding_requests)
        little = outstanding * self.config.request_granularity_bytes / self.config.latency_s
        return min(self.peak_gather_bandwidth, little)

    def gather_stream(
        self, num_lines: int, outstanding_requests: float
    ) -> LinkTransferEstimate:
        """A stream of independent cache-line reads (embedding gathers)."""
        if num_lines < 0:
            raise SimulationError(f"num_lines must be non-negative, got {num_lines}")
        self.transfers += 1
        num_bytes = num_lines * self.config.request_granularity_bytes
        self.bytes_transferred += num_bytes
        if num_lines == 0:
            return LinkTransferEstimate(0.0, 0.0, 0.0, 0.0, 0.0)
        bandwidth = self.gather_bandwidth(min(outstanding_requests, num_lines))
        streaming_s = num_bytes / bandwidth
        # One link round-trip of pipeline fill before the first line lands.
        fixed_s = self.config.latency_s
        return LinkTransferEstimate(
            bytes_transferred=float(num_bytes),
            latency_s=fixed_s + streaming_s,
            fixed_s=fixed_s,
            streaming_s=streaming_s,
            sustained_bandwidth=bandwidth,
        )
