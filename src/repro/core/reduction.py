"""Embedding reduction unit (EB-RU): on-the-fly element-wise accumulation.

Vectors stream back from the CPU memory in gather order; the reduction unit
adds each arriving vector into the accumulator of the sample it belongs to,
so by the time the last vector of a table lands, the reduced embedding is
already complete ("reduction on-the-fly").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError


class EmbeddingReductionUnit:
    """A bank of scalar FP adders that accumulates streamed embedding vectors.

    Args:
        embedding_dim: Width of the embedding vectors being reduced.
        num_lanes: Scalar ALUs available; ``ceil(dim / lanes)`` cycles are
            needed per arriving vector.
        frequency_hz: Accelerator clock, used for cycle->time conversion.
    """

    def __init__(self, embedding_dim: int, num_lanes: int = 32, frequency_hz: float = 200e6):
        if embedding_dim <= 0:
            raise ConfigurationError(f"embedding_dim must be positive, got {embedding_dim}")
        if num_lanes <= 0:
            raise ConfigurationError(f"num_lanes must be positive, got {num_lanes}")
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency_hz must be positive, got {frequency_hz}")
        self.embedding_dim = embedding_dim
        self.num_lanes = num_lanes
        self.frequency_hz = frequency_hz
        self._accumulators: Optional[np.ndarray] = None
        self.vectors_reduced = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    def begin(self, batch_size: int) -> None:
        """Reset the per-sample accumulators for a new table."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        self._accumulators = np.zeros((batch_size, self.embedding_dim), dtype=np.float32)

    def accumulate(self, sample_index: int, vector: np.ndarray) -> None:
        """Add one arriving embedding vector into a sample's accumulator."""
        if self._accumulators is None:
            raise SimulationError("begin() must be called before accumulate()")
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.embedding_dim:
            raise SimulationError(
                f"vector has {vector.shape[0]} elements, expected {self.embedding_dim}"
            )
        if not 0 <= sample_index < self._accumulators.shape[0]:
            raise SimulationError(
                f"sample index {sample_index} out of range for batch "
                f"{self._accumulators.shape[0]}"
            )
        self._accumulators[sample_index] += vector
        self.vectors_reduced += 1
        self.cycles += self.cycles_per_vector

    def result(self) -> np.ndarray:
        """The reduced embeddings, shape ``[batch, dim]``."""
        if self._accumulators is None:
            raise SimulationError("begin() must be called before result()")
        return self._accumulators.copy()

    # ------------------------------------------------------------------
    @property
    def cycles_per_vector(self) -> int:
        """Cycles needed to accumulate one arriving vector."""
        return -(-self.embedding_dim // self.num_lanes)

    @property
    def throughput_bytes_per_s(self) -> float:
        """Peak reduction throughput; must exceed the link's gather bandwidth."""
        # One vector (dim * 4 bytes) completes every `cycles_per_vector` cycles.
        return (self.embedding_dim * 4) * self.frequency_hz / self.cycles_per_vector

    def reduction_time_s(self, num_vectors: int) -> float:
        """Time to reduce ``num_vectors`` if reduction were the only bottleneck."""
        if num_vectors < 0:
            raise SimulationError(f"num_vectors must be non-negative, got {num_vectors}")
        return num_vectors * self.cycles_per_vector / self.frequency_hz
