"""Base-pointer register file (``BPregs``) of the sparse accelerator complex.

At boot the CPU uses MMIO to hand the FPGA the virtual addresses of the key
data structures (sparse index arrays, embedding tables, MLP weights, dense
features).  The gather unit and the dense complex then index this register
file to compute fetch addresses entirely in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import CapacityError, ConfigurationError


@dataclass
class BasePointerRegisters:
    """A small named register file holding base (virtual) addresses.

    Attributes:
        capacity: Maximum number of registers (the RTL provisions one per
            embedding table plus a handful of fixed pointers).
    """

    capacity: int = 128
    _registers: Dict[str, int] = field(default_factory=dict, init=False)
    writes: int = field(default=0, init=False)
    reads: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {self.capacity}")

    # ------------------------------------------------------------------
    def write(self, name: str, address: int) -> None:
        """Write a base pointer (performed over MMIO by the host driver)."""
        if not name:
            raise ConfigurationError("register name must be a non-empty string")
        if address < 0:
            raise ConfigurationError(f"address must be non-negative, got {address}")
        if name not in self._registers and len(self._registers) >= self.capacity:
            raise CapacityError(
                f"base-pointer register file is full ({self.capacity} entries); "
                f"cannot add {name!r}"
            )
        self._registers[name] = int(address)
        self.writes += 1

    def read(self, name: str) -> int:
        """Read a base pointer (performed by the gather unit / dense complex)."""
        if name not in self._registers:
            raise KeyError(f"no base pointer named {name!r} has been written")
        self.reads += 1
        return self._registers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._registers

    def names(self) -> List[str]:
        """Names of all populated registers."""
        return list(self._registers.keys())

    @property
    def occupancy(self) -> int:
        return len(self._registers)

    def clear(self) -> None:
        """Reset the register file (device re-initialization)."""
        self._registers.clear()
