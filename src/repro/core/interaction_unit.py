"""Feature-interaction unit: the batched GEMM of the dense accelerator complex.

The unit concatenates the bottom-MLP output with the reduced embeddings
forwarded by the EB-Streamer, computes all pairwise dot products with a
small batched ``R @ R^T`` GEMM on its dedicated PEs, and stores the
concatenated result into the top-MLP input SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ModelShapeError


@dataclass(frozen=True)
class InteractionTiming:
    """Cycle cost of the feature-interaction stage for one batch."""

    flops: int
    cycles: int
    utilization: float

    def latency_s(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


class FeatureInteractionUnit:
    """Dedicated PEs computing DLRM's dot-product feature interaction.

    Args:
        num_pes: Processing engines assigned to the batched GEMM (4 in the
            paper's configuration).
        flops_per_pe_per_cycle: Sustained per-PE throughput.
        packing_efficiency: Fraction of the PEs' throughput usable on the
            small per-sample Gram matrices after packing samples together
            (the per-sample matrices are far smaller than a 32x32 tile).
        fill_cycles: Fixed start-up cost per batch.
    """

    def __init__(
        self,
        num_pes: int = 4,
        flops_per_pe_per_cycle: float = 78.25,
        packing_efficiency: float = 0.6,
        fill_cycles: int = 64,
    ):
        if num_pes <= 0:
            raise ConfigurationError(f"num_pes must be positive, got {num_pes}")
        if not 0.0 < packing_efficiency <= 1.0:
            raise ConfigurationError(
                f"packing_efficiency must be in (0, 1], got {packing_efficiency}"
            )
        if fill_cycles < 0:
            raise ConfigurationError(f"fill_cycles must be non-negative, got {fill_cycles}")
        self.num_pes = num_pes
        self.flops_per_pe_per_cycle = flops_per_pe_per_cycle
        self.packing_efficiency = packing_efficiency
        self.fill_cycles = fill_cycles

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def forward(self, bottom_output: np.ndarray, reduced_embeddings: np.ndarray) -> np.ndarray:
        """Compute the concatenated interaction output (top-MLP input).

        The layout matches the software model: the bottom-MLP vector first,
        then the strictly-lower-triangle pair dot products.
        """
        bottom_output = np.asarray(bottom_output, dtype=np.float32)
        reduced_embeddings = np.asarray(reduced_embeddings, dtype=np.float32)
        if bottom_output.ndim != 2 or reduced_embeddings.ndim != 3:
            raise ModelShapeError(
                "expected bottom [batch, dim] and embeddings [batch, tables, dim], got "
                f"{bottom_output.shape} and {reduced_embeddings.shape}"
            )
        if bottom_output.shape[0] != reduced_embeddings.shape[0]:
            raise ModelShapeError("batch size mismatch between bottom output and embeddings")
        if bottom_output.shape[1] != reduced_embeddings.shape[2]:
            raise ModelShapeError("embedding dimension mismatch")
        stacked = np.concatenate([bottom_output[:, None, :], reduced_embeddings], axis=1)
        gram = np.einsum("bnd,bmd->bnm", stacked, stacked)
        num_vectors = stacked.shape[1]
        rows, cols = np.tril_indices(num_vectors, k=-1)
        pairs = gram[:, rows, cols]
        return np.concatenate([bottom_output, pairs], axis=1).astype(np.float32)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def timing(self, num_tables: int, embedding_dim: int, batch_size: int) -> InteractionTiming:
        """Cycle cost of the batched Gram-matrix GEMM for one batch."""
        if num_tables <= 0 or embedding_dim <= 0 or batch_size <= 0:
            raise ModelShapeError("num_tables, embedding_dim and batch_size must be positive")
        num_vectors = num_tables + 1
        pairs = num_vectors * (num_vectors - 1) // 2
        flops = 2 * pairs * embedding_dim * batch_size
        throughput = self.num_pes * self.flops_per_pe_per_cycle * self.packing_efficiency
        cycles = int(np.ceil(flops / throughput)) + self.fill_cycles
        return InteractionTiming(flops=flops, cycles=cycles, utilization=self.packing_efficiency)
