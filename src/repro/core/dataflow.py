"""Output-stationary tile schedule of the MLP unit (the paper's Fig. 12).

The MLP control unit tiles the weight and input matrices into ``[32 x 32]``
blocks and, at every computation step, broadcasts one weight tile to all the
PEs in its row of the spatial array and one input tile to all the PEs in its
column; each PE multiplies the pair it receives and accumulates the partial
sum for the output tile it owns.

:class:`OutputStationaryScheduler` materializes that schedule explicitly —
which tile goes to which PE at which step — so it can be inspected, checked
for conflicts, and used to derive the broadcast/SRAM traffic that the
timing model charges for.  The functional GEMM of
:class:`~repro.core.mlp_unit.MLPUnit` follows the same assignment of output
tiles to PEs (round-robin over the array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import ModelShapeError


@dataclass(frozen=True)
class TileAssignment:
    """One PE's work item during one schedule step.

    Attributes:
        step: Global step index (output-tile wave and K-step combined).
        pe_row / pe_col: Coordinates of the PE in the spatial array.
        output_tile: ``(m_tile, n_tile)`` coordinates of the output tile the
            PE is accumulating.
        weight_tile: ``(k_tile, n_tile)`` coordinates of the weight tile
            broadcast to the PE's column this step.
        input_tile: ``(m_tile, k_tile)`` coordinates of the input tile
            broadcast to the PE's row this step.
    """

    step: int
    pe_row: int
    pe_col: int
    output_tile: Tuple[int, int]
    weight_tile: Tuple[int, int]
    input_tile: Tuple[int, int]


@dataclass(frozen=True)
class ScheduleSummary:
    """Aggregate statistics of one GEMM's schedule."""

    m_tiles: int
    n_tiles: int
    k_tiles: int
    num_steps: int
    num_assignments: int
    weight_tile_broadcasts: int
    input_tile_broadcasts: int
    max_concurrent_pes: int

    @property
    def total_output_tiles(self) -> int:
        return self.m_tiles * self.n_tiles

    @property
    def broadcast_reuse_factor(self) -> float:
        """Tile multiplies performed per tile broadcast (higher is better)."""
        broadcasts = self.weight_tile_broadcasts + self.input_tile_broadcasts
        if broadcasts == 0:
            return 0.0
        return self.num_assignments / broadcasts


class OutputStationaryScheduler:
    """Generates the Fig. 12 output-stationary schedule for one GEMM.

    Args:
        pe_rows / pe_cols: Spatial PE-array shape (4x4 in the paper).
        tile_dim: Tile edge length (32).
    """

    def __init__(self, pe_rows: int = 4, pe_cols: int = 4, tile_dim: int = 32):
        if pe_rows <= 0 or pe_cols <= 0:
            raise ModelShapeError("PE array dimensions must be positive")
        if tile_dim <= 0:
            raise ModelShapeError(f"tile_dim must be positive, got {tile_dim}")
        self.pe_rows = pe_rows
        self.pe_cols = pe_cols
        self.tile_dim = tile_dim

    # ------------------------------------------------------------------
    def tile_counts(self, m: int, n: int, k: int) -> Tuple[int, int, int]:
        """Number of tiles along each GEMM dimension."""
        if m <= 0 or n <= 0 or k <= 0:
            raise ModelShapeError(f"GEMM dimensions must be positive, got {(m, n, k)}")
        t = self.tile_dim
        return -(-m // t), -(-n // t), -(-k // t)

    def owner_of(self, m_tile: int, n_tile: int) -> Tuple[int, int]:
        """PE that accumulates a given output tile (round-robin mapping).

        This matches :meth:`repro.core.mlp_unit.MLPUnit._pe` so the schedule
        describes exactly what the functional model executes.
        """
        return m_tile % self.pe_rows, n_tile % self.pe_cols

    # ------------------------------------------------------------------
    def schedule(self, m: int, n: int, k: int) -> Iterator[TileAssignment]:
        """Yield every tile assignment of the GEMM in execution order.

        Output tiles are processed in waves of up to ``pe_rows x pe_cols``
        tiles; within a wave, the K dimension advances one tile per step and
        the corresponding weight/input tiles are broadcast across the array.
        """
        m_tiles, n_tiles, k_tiles = self.tile_counts(m, n, k)
        output_tiles = [
            (m_tile, n_tile) for m_tile in range(m_tiles) for n_tile in range(n_tiles)
        ]
        # Group output tiles into waves such that each PE owns at most one
        # tile per wave (a pure output-stationary schedule cannot co-schedule
        # two tiles on the same PE; when the tile grid is narrower than the
        # array, waves are simply smaller and part of the array idles).
        waves: List[List[Tuple[int, int]]] = []
        current: List[Tuple[int, int]] = []
        owners_in_wave = set()
        for tile in output_tiles:
            owner = self.owner_of(*tile)
            if owner in owners_in_wave:
                waves.append(current)
                current = []
                owners_in_wave = set()
            current.append(tile)
            owners_in_wave.add(owner)
        if current:
            waves.append(current)

        step = 0
        for wave in waves:
            for k_tile in range(k_tiles):
                for m_tile, n_tile in wave:
                    pe_row, pe_col = self.owner_of(m_tile, n_tile)
                    yield TileAssignment(
                        step=step,
                        pe_row=pe_row,
                        pe_col=pe_col,
                        output_tile=(m_tile, n_tile),
                        weight_tile=(k_tile, n_tile),
                        input_tile=(m_tile, k_tile),
                    )
                step += 1

    # ------------------------------------------------------------------
    def summarize(self, m: int, n: int, k: int) -> ScheduleSummary:
        """Aggregate broadcast/occupancy statistics of the schedule."""
        m_tiles, n_tiles, k_tiles = self.tile_counts(m, n, k)
        assignments = 0
        steps: Dict[int, int] = {}
        weight_broadcasts = set()
        input_broadcasts = set()
        for assignment in self.schedule(m, n, k):
            assignments += 1
            steps[assignment.step] = steps.get(assignment.step, 0) + 1
            weight_broadcasts.add((assignment.step, assignment.weight_tile))
            input_broadcasts.add((assignment.step, assignment.input_tile))
        return ScheduleSummary(
            m_tiles=m_tiles,
            n_tiles=n_tiles,
            k_tiles=k_tiles,
            num_steps=len(steps),
            num_assignments=assignments,
            weight_tile_broadcasts=len(weight_broadcasts),
            input_tile_broadcasts=len(input_broadcasts),
            max_concurrent_pes=max(steps.values()) if steps else 0,
        )

    # ------------------------------------------------------------------
    def validate(self, m: int, n: int, k: int) -> List[str]:
        """Check schedule invariants; returns a list of violations (empty = ok).

        Invariants checked:

        * every output tile receives exactly ``k_tiles`` accumulation steps,
        * a PE never receives two different assignments in the same step,
        * a PE only ever works on output tiles it owns,
        * weight/input tile coordinates stay in range.
        """
        m_tiles, n_tiles, k_tiles = self.tile_counts(m, n, k)
        violations: List[str] = []
        accumulations: Dict[Tuple[int, int], int] = {}
        busy: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for assignment in self.schedule(m, n, k):
            accumulations[assignment.output_tile] = (
                accumulations.get(assignment.output_tile, 0) + 1
            )
            key = (assignment.step, assignment.pe_row, assignment.pe_col)
            if key in busy and busy[key] != assignment.output_tile:
                violations.append(
                    f"PE {key[1:]} double-booked at step {assignment.step}"
                )
            busy[key] = assignment.output_tile
            if self.owner_of(*assignment.output_tile) != (
                assignment.pe_row,
                assignment.pe_col,
            ):
                violations.append(
                    f"output tile {assignment.output_tile} scheduled on a foreign PE"
                )
            k_w, n_w = assignment.weight_tile
            m_i, k_i = assignment.input_tile
            if not (0 <= k_w < k_tiles and 0 <= n_w < n_tiles):
                violations.append(f"weight tile {assignment.weight_tile} out of range")
            if not (0 <= m_i < m_tiles and 0 <= k_i < k_tiles):
                violations.append(f"input tile {assignment.input_tile} out of range")
            if k_w != k_i:
                violations.append(
                    f"weight/input K tiles disagree at step {assignment.step}"
                )
        for m_tile in range(m_tiles):
            for n_tile in range(n_tiles):
                count = accumulations.get((m_tile, n_tile), 0)
                if count != k_tiles:
                    violations.append(
                        f"output tile {(m_tile, n_tile)} accumulated {count} times, "
                        f"expected {k_tiles}"
                    )
        return violations
