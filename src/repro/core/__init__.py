"""The Centaur accelerator: the paper's primary contribution.

The package models both *function* and *performance* of the chiplet-based
hybrid sparse-dense accelerator:

* the sparse accelerator complex (``EB-Streamer``): base-pointer registers,
  sparse-index SRAM, embedding gather unit and on-the-fly reduction unit,
* the dense accelerator complex: a 4x4 processing-engine array for MLPs with
  an output-stationary 32x32 tiling, dedicated feature-interaction PEs, a
  sigmoid unit and the SRAM buffers that feed them,
* the CPU<->FPGA chiplet link (cache-coherent path, optional cache-bypass
  path), the MMIO/IOMMU software interface and host-memory model,
* an FPGA resource estimator reproducing Tables II and III,
* :class:`~repro.core.centaur.CentaurDevice` (functional inference, bit-for-
  bit comparable to the pure-software DLRM) and
  :class:`~repro.core.centaur.CentaurRunner` (latency/energy model producing
  the Figure 13-15 results).
"""

from repro.core.registers import BasePointerRegisters
from repro.core.sram import SRAMBuffer
from repro.core.link import ChipletLink, LinkTransferEstimate
from repro.core.mmio import HostMemory, IOMMU, MMIOInterface
from repro.core.gather import EmbeddingGatherUnit, GatherRequest
from repro.core.reduction import EmbeddingReductionUnit
from repro.core.eb_streamer import EBStreamer, EBStreamerEstimate
from repro.core.pe import ProcessingEngine
from repro.core.dataflow import OutputStationaryScheduler, ScheduleSummary, TileAssignment
from repro.core.mlp_unit import MLPUnit, GemmTiming
from repro.core.interaction_unit import FeatureInteractionUnit
from repro.core.sigmoid_unit import SigmoidUnit
from repro.core.dense_complex import DenseAcceleratorComplex, DenseTimingEstimate
from repro.core.resources import FPGAResourceModel, ModuleResources, ResourceReport
from repro.core.centaur import CentaurDevice, CentaurRunner

__all__ = [
    "BasePointerRegisters",
    "SRAMBuffer",
    "ChipletLink",
    "LinkTransferEstimate",
    "HostMemory",
    "IOMMU",
    "MMIOInterface",
    "EmbeddingGatherUnit",
    "GatherRequest",
    "EmbeddingReductionUnit",
    "EBStreamer",
    "EBStreamerEstimate",
    "ProcessingEngine",
    "OutputStationaryScheduler",
    "ScheduleSummary",
    "TileAssignment",
    "MLPUnit",
    "GemmTiming",
    "FeatureInteractionUnit",
    "SigmoidUnit",
    "DenseAcceleratorComplex",
    "DenseTimingEstimate",
    "FPGAResourceModel",
    "ModuleResources",
    "ResourceReport",
    "CentaurDevice",
    "CentaurRunner",
]
