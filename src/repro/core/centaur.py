"""Top-level Centaur device: functional inference and the performance runner.

:class:`CentaurDevice` wires the sparse and dense accelerator complexes
together with the host-memory/MMIO software interface and runs real batches
— its outputs are numerically interchangeable with the pure-software
:class:`~repro.dlrm.model.DLRM`, which is the core correctness claim of the
reproduction.

:class:`CentaurRunner` is the performance counterpart: it produces the
IDX/EMB/DNF/MLP/Other latency breakdown of the paper's Figure 14 and the
gather-throughput numbers of Figure 13 for arbitrary Table I configurations
without touching real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.backends.base import BackendCapabilities
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.core.dense_complex import DenseAcceleratorComplex
from repro.core.eb_streamer import EBStreamer
from repro.core.link import ChipletLink
from repro.core.mmio import HostMemory, MMIOInterface
from repro.core.registers import BasePointerRegisters
from repro.dlrm.model import DLRM, DLRMOutput
from repro.workloads.traces import DLRMBatch
from repro.errors import SimulationError
from repro.memsys.stats import CacheStats, MemoryTrafficStats
from repro.results import InferenceResult, LatencyBreakdown


class CentaurDevice:
    """A functional Centaur accelerator bound to one DLRM model instance.

    Args:
        dlrm: The model whose tables/weights the device will serve.  The
            embedding tables stay in (host) CPU memory; only MLP weights are
            uploaded to on-chip SRAM, exactly as the paper describes.
        system: Hardware configuration (FPGA + link portions are used).
        sigmoid_mode: Fidelity of the final sigmoid (``"exact"``/``"piecewise"``).
    """

    def __init__(self, dlrm: DLRM, system: SystemConfig, sigmoid_mode: str = "exact"):
        self.dlrm = dlrm
        self.system = system
        self.host_memory = HostMemory()
        self.registers = BasePointerRegisters()
        self.mmio = MMIOInterface(self.registers, system.link.mmio_write_latency_s)
        self.table_names: List[str] = []
        self.setup_latency_s = 0.0

        # Register the embedding tables in shared host memory and hand their
        # base pointers to the FPGA over MMIO (boot-time, done once).
        for index, table in enumerate(dlrm.embeddings.tables):
            name = f"table{index}"
            region = self.host_memory.register(name, table)
            self.setup_latency_s += self.mmio.write_base_pointer(
                f"table/{name}", region.base_address
            )
            self.table_names.append(name)

        # Result buffer in host memory for the FPGA->CPU final write.  Sized
        # for the common case at boot; :meth:`infer` grows it on demand.
        self._output_capacity = 4096
        self.output_regrows = 0
        output_region = self.host_memory.register(
            "output", np.zeros(self._output_capacity, dtype=np.float32)
        )
        self.setup_latency_s += self.mmio.write_base_pointer(
            "output", output_region.base_address
        )

        self.eb_streamer = EBStreamer(
            fpga=system.fpga,
            link_config=system.link,
            embedding_dim=dlrm.config.embedding_dim,
            registers=self.registers,
            host_memory=self.host_memory,
        )
        self.dense_complex = DenseAcceleratorComplex(
            fpga=system.fpga, sigmoid_mode=sigmoid_mode
        )
        self.dense_complex.load_weights(dlrm.bottom_mlp, dlrm.top_mlp)

    # ------------------------------------------------------------------
    @property
    def config(self) -> DLRMConfig:
        return self.dlrm.config

    def infer(self, batch: DLRMBatch) -> DLRMOutput:
        """Run one batch through the accelerator's functional datapath."""
        if batch.num_tables != self.config.num_tables:
            raise SimulationError(
                f"batch has {batch.num_tables} sparse traces but the model has "
                f"{self.config.num_tables} tables"
            )
        if batch.batch_size > self._output_capacity:
            self._grow_output_buffer(batch.batch_size)
        reduced = self.eb_streamer.gather_and_reduce(self.table_names, batch.sparse_traces)
        probabilities, logits = self.dense_complex.forward(batch.dense_features, reduced)

        # Final FPGA->CPU result copy into the registered output region.
        output_base = self.registers.read("output")
        self.host_memory.write(output_base, probabilities.astype(np.float32))

        bottom_out = self.dense_complex.mlp_unit.run_mlp(
            self.dlrm.bottom_mlp, batch.dense_features
        )
        interaction = self.dense_complex.interaction_unit.forward(bottom_out, reduced)
        return DLRMOutput(
            probabilities=probabilities,
            logits=logits,
            reduced_embeddings=reduced,
            bottom_mlp_output=bottom_out,
            interaction_output=interaction,
        )

    def _grow_output_buffer(self, min_samples: int) -> None:
        """Re-register a larger host output region for an oversized batch.

        The host driver drops the old region, registers one grown to the
        next power of two covering the batch, and rewrites the FPGA's
        ``output`` base pointer over MMIO — that rewrite is the latency the
        resize charges (accumulated into :attr:`setup_latency_s`, exactly
        like the boot-time registration it repeats).
        """
        capacity = self._output_capacity
        while capacity < min_samples:
            capacity *= 2
        self.host_memory.unregister("output")
        region = self.host_memory.register(
            "output", np.zeros(capacity, dtype=np.float32)
        )
        self.setup_latency_s += self.mmio.write_base_pointer(
            "output", region.base_address
        )
        self._output_capacity = capacity
        self.output_regrows += 1

    @property
    def output_capacity(self) -> int:
        """Samples the registered host output region can currently hold."""
        return self._output_capacity

    def predict(self, batch: DLRMBatch) -> np.ndarray:
        """Convenience wrapper returning only the event probabilities."""
        return self.infer(batch).probabilities


#: What the Centaur backend reports (registered as ``"centaur"``).
CENTAUR_CAPABILITIES = BackendCapabilities(
    reports_embedding_throughput=True,
    reports_mlp_traffic=False,
    uses_accelerator=True,
    offloads_embeddings=True,
    stages=("IDX", "EMB", "DNF", "MLP", "Other"),
    # FPGA partial reconfiguration dominates Centaur's commission time.
    provision_warmup_s=10e-3,
)


@dataclass
class CentaurRunner:
    """Performance model of Centaur producing :class:`InferenceResult`.

    Deprecated as a direct entry point: prefer
    ``repro.backends.get_backend("centaur", system)``, which resolves this
    class through the backend registry.

    Attributes:
        system: Hardware configuration bundle.
        other_fixed_s: Per-inference orchestration overhead (MMIO doorbell,
            base-pointer refresh for the per-inference inputs, final result
            interrupt) — the "Other" slice of Figure 14.
    """

    system: SystemConfig
    other_fixed_s: float = 3.0e-6
    sigmoid_mode: str = "exact"
    _streamer: EBStreamer = field(default=None, repr=False)  # type: ignore[assignment]
    _dense: DenseAcceleratorComplex = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.other_fixed_s < 0:
            raise SimulationError("other_fixed_s must be non-negative")
        if self._streamer is None:
            self._streamer = EBStreamer(fpga=self.system.fpga, link_config=self.system.link)
        if self._dense is None:
            self._dense = DenseAcceleratorComplex(
                fpga=self.system.fpga, sigmoid_mode=self.sigmoid_mode
            )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend-registry key of this design point."""
        return "centaur"

    @property
    def design_point(self) -> str:
        return "Centaur"

    @property
    def capabilities(self) -> BackendCapabilities:
        return CENTAUR_CAPABILITIES

    def energy(self, model: DLRMConfig, batch_size: int) -> float:
        """Energy in joules of one batch (power x latency)."""
        return self.run(model, batch_size).energy_joules

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        """Model one inference batch end to end on Centaur."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")

        streamer = self._streamer.estimate(model, batch_size)
        dense = self._dense.estimate(model, batch_size)
        link = ChipletLink(self.system.link)

        # Dense-feature fetch (DNF) and final result write-back.
        dense_feature_bytes = model.dense_feature_bytes_per_sample() * batch_size
        dnf = link.bulk_transfer(dense_feature_bytes)
        result_writeback = link.bulk_transfer(4 * batch_size)

        breakdown = LatencyBreakdown()
        breakdown.add("IDX", streamer.index_fetch_s)
        breakdown.add("EMB", streamer.embedding_stage_s)
        breakdown.add("DNF", dnf.latency_s)
        breakdown.add("MLP", dense.total_s)
        breakdown.add("Other", self.other_fixed_s + result_writeback.latency_s)

        embedding_traffic = MemoryTrafficStats(
            useful_bytes=streamer.useful_bytes,
            transferred_bytes=float(
                streamer.total_lines * self.system.link.request_granularity_bytes
            ),
            llc=CacheStats(),
            instructions=0.0,
        )
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=breakdown,
            embedding_traffic=embedding_traffic,
            mlp_traffic=None,
            power_watts=self.system.power.centaur_watts,
            extra={
                "gather_bandwidth": streamer.sustained_gather_bandwidth,
                "gather_s": streamer.gather_s,
                "reduction_s": streamer.reduction_s,
                "dense_bottom_s": dense.bottom_mlp_s,
                "dense_top_s": dense.top_mlp_s,
                "dense_interaction_s": dense.interaction_s,
            },
        )

    # ------------------------------------------------------------------
    def effective_embedding_throughput(self, model: DLRMConfig, batch_size: int) -> float:
        """Effective gather throughput of the EB-Streamer (Figure 13)."""
        return self._streamer.estimate(model, batch_size).effective_throughput
