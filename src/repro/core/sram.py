"""On-chip SRAM buffer model used by both accelerator complexes.

SRAM buffers serve two purposes in the reproduction: they hold real data for
the functional model (weights, dense features, sparse indices, interaction
outputs) and they provide the capacity accounting that feeds the FPGA
resource estimator (block-memory bits of Tables II/III).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import CapacityError, ConfigurationError


class SRAMBuffer:
    """A capacity-checked on-chip buffer holding named numpy arrays.

    Args:
        name: Buffer identifier (e.g. ``"SRAM_MLPmodel"``).
        capacity_bytes: Physical capacity; writes that would exceed it raise
            :class:`~repro.errors.CapacityError`, mirroring what would simply
            not fit on the device.
    """

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._arrays: Dict[str, np.ndarray] = {}
        self.total_writes = 0
        self.total_reads = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(array.nbytes for array in self._arrays.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * 8

    @property
    def occupancy(self) -> float:
        """Fraction of the buffer currently holding data."""
        return self.used_bytes / self.capacity_bytes

    # ------------------------------------------------------------------
    def write(self, key: str, array: np.ndarray, allow_replace: bool = True) -> None:
        """Store an array under ``key``, enforcing the capacity limit."""
        array = np.ascontiguousarray(array)
        existing = self._arrays.get(key)
        if existing is not None and not allow_replace:
            raise ConfigurationError(f"{self.name}: key {key!r} already present")
        occupied_by_others = self.used_bytes - (existing.nbytes if existing is not None else 0)
        if occupied_by_others + array.nbytes > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: writing {key!r} ({array.nbytes} bytes) exceeds capacity "
                f"({self.capacity_bytes} bytes, {occupied_by_others} in use)"
            )
        self._arrays[key] = array
        self.total_writes += 1

    def read(self, key: str) -> np.ndarray:
        """Read a stored array."""
        if key not in self._arrays:
            raise KeyError(f"{self.name}: no array stored under {key!r}")
        self.total_reads += 1
        return self._arrays[key]

    def maybe_read(self, key: str) -> Optional[np.ndarray]:
        """Read a stored array, returning ``None`` when absent."""
        if key not in self._arrays:
            return None
        return self.read(key)

    def discard(self, key: str) -> None:
        """Drop an array (e.g. per-inference inputs after use)."""
        self._arrays.pop(key, None)

    def clear(self) -> None:
        """Drop everything (device reset)."""
        self._arrays.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SRAMBuffer(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"used={self.used_bytes})"
        )
