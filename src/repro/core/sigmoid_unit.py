"""Sigmoid unit: computes the final event probability on the FPGA.

The hardware evaluates the logistic function with a small piecewise-linear
approximation (a handful of comparators and multipliers); the functional
model offers both that approximation and the exact function so integration
tests can choose bit-accuracy against the software model or hardware
fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlrm.mlp import sigmoid as exact_sigmoid
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SigmoidTiming:
    """Cycle cost of the sigmoid stage."""

    cycles: int

    def latency_s(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


class SigmoidUnit:
    """Element-wise sigmoid with selectable fidelity.

    Args:
        mode: ``"exact"`` (default; matches the software model bit-for-bit up
            to fp32 rounding) or ``"piecewise"`` (hardware-style 3-segment
            approximation, max absolute error below 0.02).
        cycles_per_element: Pipeline cycles per output element.
    """

    def __init__(self, mode: str = "exact", cycles_per_element: int = 4):
        if mode not in ("exact", "piecewise"):
            raise ConfigurationError(f"mode must be 'exact' or 'piecewise', got {mode!r}")
        if cycles_per_element <= 0:
            raise ConfigurationError(
                f"cycles_per_element must be positive, got {cycles_per_element}"
            )
        self.mode = mode
        self.cycles_per_element = cycles_per_element

    # ------------------------------------------------------------------
    def forward(self, logits: np.ndarray) -> np.ndarray:
        """Apply the sigmoid to a vector of logits."""
        logits = np.asarray(logits, dtype=np.float32)
        if self.mode == "exact":
            return exact_sigmoid(logits)
        return self._piecewise(logits)

    @staticmethod
    def _piecewise(logits: np.ndarray) -> np.ndarray:
        """A 3-segment piecewise-linear approximation of the sigmoid.

        ``sigma(x) ~= clip(0.25 * x + 0.5, 0, 1)`` for |x| < 2.375 with two
        saturating outer segments; this is the classic "PLAN" approximation
        used by lightweight hardware implementations.
        """
        x = np.asarray(logits, dtype=np.float32)
        out = np.empty_like(x)
        absolute = np.abs(x)
        segment1 = absolute < 1.0
        segment2 = (absolute >= 1.0) & (absolute < 2.375)
        segment3 = absolute >= 2.375
        out[segment1] = 0.25 * absolute[segment1] + 0.5
        out[segment2] = 0.125 * absolute[segment2] + 0.625
        out[segment3] = np.minimum(0.03125 * absolute[segment3] + 0.84375, 1.0)
        negative = x < 0
        out[negative] = 1.0 - out[negative]
        return out.astype(np.float32)

    # ------------------------------------------------------------------
    def timing(self, batch_size: int) -> SigmoidTiming:
        """Cycle cost of producing ``batch_size`` probabilities."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        return SigmoidTiming(cycles=batch_size * self.cycles_per_element)
