"""FPGA resource estimation for the Centaur accelerator (Tables II and III).

The estimator derives per-module logic-cell, block-memory and DSP budgets
from the architectural parameters in :class:`~repro.config.system.FPGAConfig`
using per-unit costs calibrated against the paper's synthesis results
(Table III), then aggregates them into device-level ALM / block-memory /
RAM-block / DSP / PLL utilization (Table II) including the platform shell
(the HARP "blue bitstream" interface logic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config.system import FPGAConfig
from repro.errors import ResourceEstimationError


@dataclass(frozen=True)
class ModuleResources:
    """Synthesis footprint of one accelerator module (a Table III row)."""

    name: str
    group: str
    lc_comb: int
    lc_reg: int
    block_memory_bits: int
    dsps: int

    def __post_init__(self) -> None:
        for field_name in ("lc_comb", "lc_reg", "block_memory_bits", "dsps"):
            if getattr(self, field_name) < 0:
                raise ResourceEstimationError(
                    f"{self.name}: {field_name} must be non-negative"
                )

    def merge(self, other: "ModuleResources", name: str, group: str) -> "ModuleResources":
        """Sum two module footprints under a new name."""
        return ModuleResources(
            name=name,
            group=group,
            lc_comb=self.lc_comb + other.lc_comb,
            lc_reg=self.lc_reg + other.lc_reg,
            block_memory_bits=self.block_memory_bits + other.block_memory_bits,
            dsps=self.dsps + other.dsps,
        )


@dataclass(frozen=True)
class ResourceReport:
    """Device-level utilization (a Table II row pair)."""

    alms: int
    block_memory_bits: int
    ram_blocks: int
    dsps: int
    plls: int
    alm_utilization: float
    block_memory_utilization: float
    ram_block_utilization: float
    dsp_utilization: float
    pll_utilization: float


class FPGAResourceModel:
    """Estimates Centaur's FPGA resource usage from its configuration.

    Per-unit constants (logic cells per PE, registers per reduction lane,
    and so on) are calibrated so that the default configuration reproduces
    the paper's Table III within a few percent; changing the configuration
    (more PEs, deeper index SRAM, wider reduction) scales the estimate
    accordingly, which the design-space benchmarks exploit.
    """

    # -- calibrated per-unit costs (from Table III divided by unit counts) --
    BASE_PTR_COMB = 98
    BASE_PTR_REG = 211
    GATHER_UNIT_COMB = 295
    GATHER_UNIT_REG = 216
    REDUCTION_COMB = 108
    REDUCTION_REG_PER_LANE = 258
    REDUCTION_DSP_PER_LANE = 3
    SPARSE_SRAM_COMB = 350
    SPARSE_SRAM_REG = 98
    PE_COMB = 2_500
    PE_REG = 8_192
    PE_DSP = 32
    MLP_PE_MEM_BITS = 143_750
    INTERACTION_PE_REG = 8_250
    INTERACTION_PE_MEM_BITS = 148_250
    DENSE_SRAM_COMB = 1_000
    DENSE_SRAM_REG = 11_000
    DENSE_SRAM_DSP = 48
    WEIGHT_SRAM_COMB = 13
    WEIGHT_SRAM_REG = 77
    MISC_COMB = 587
    MISC_REG = 6_000
    MISC_MEM_BITS = 608_000
    SHELL_ALMS = 18_500
    SHELL_MEM_BITS = 800_000
    PLLS_USED = 48
    ALM_PACKING_FACTOR = 1.15
    RAM_BLOCK_BITS = 20_480
    RAM_BLOCK_FRAGMENTATION = 1.9

    def __init__(self, fpga: FPGAConfig):
        self.fpga = fpga

    # ------------------------------------------------------------------
    # Table III: per-module breakdown
    # ------------------------------------------------------------------
    def sparse_modules(self) -> List[ModuleResources]:
        """Modules of the sparse accelerator complex (EB-Streamer)."""
        fpga = self.fpga
        return [
            ModuleResources(
                name="Base ptr reg.",
                group="Sparse",
                lc_comb=self.BASE_PTR_COMB,
                lc_reg=self.BASE_PTR_REG,
                block_memory_bits=0,
                dsps=0,
            ),
            ModuleResources(
                name="Gather unit",
                group="Sparse",
                lc_comb=self.GATHER_UNIT_COMB,
                lc_reg=self.GATHER_UNIT_REG,
                block_memory_bits=0,
                dsps=0,
            ),
            ModuleResources(
                name="Reduction unit",
                group="Sparse",
                lc_comb=self.REDUCTION_COMB,
                lc_reg=self.REDUCTION_REG_PER_LANE * fpga.reduction_lanes,
                block_memory_bits=0,
                dsps=self.REDUCTION_DSP_PER_LANE * fpga.reduction_lanes,
            ),
            ModuleResources(
                name="SRAM arrays",
                group="Sparse",
                lc_comb=self.SPARSE_SRAM_COMB,
                lc_reg=self.SPARSE_SRAM_REG,
                block_memory_bits=fpga.sparse_index_sram_entries * 32,
                dsps=0,
            ),
        ]

    def dense_modules(self) -> List[ModuleResources]:
        """Modules of the dense accelerator complex."""
        fpga = self.fpga
        mlp_pes = fpga.mlp_pe_rows * fpga.mlp_pe_cols
        dense_sram_bits = (fpga.dense_feature_sram_bytes + fpga.mlp_input_sram_bytes) * 8
        return [
            ModuleResources(
                name="MLP unit",
                group="Dense",
                lc_comb=self.PE_COMB * mlp_pes,
                lc_reg=self.PE_REG * mlp_pes,
                block_memory_bits=self.MLP_PE_MEM_BITS * mlp_pes,
                dsps=self.PE_DSP * mlp_pes,
            ),
            ModuleResources(
                name="Feat. int. unit",
                group="Dense",
                lc_comb=self.PE_COMB * fpga.interaction_pes,
                lc_reg=self.INTERACTION_PE_REG * fpga.interaction_pes,
                block_memory_bits=self.INTERACTION_PE_MEM_BITS * fpga.interaction_pes,
                dsps=self.PE_DSP * fpga.interaction_pes,
            ),
            ModuleResources(
                name="SRAM arrays",
                group="Dense",
                lc_comb=self.DENSE_SRAM_COMB,
                lc_reg=self.DENSE_SRAM_REG,
                block_memory_bits=dense_sram_bits,
                dsps=self.DENSE_SRAM_DSP,
            ),
            ModuleResources(
                name="Weights",
                group="Dense",
                lc_comb=self.WEIGHT_SRAM_COMB,
                lc_reg=self.WEIGHT_SRAM_REG,
                block_memory_bits=fpga.mlp_weight_sram_bytes * 8,
                dsps=0,
            ),
        ]

    def misc_modules(self) -> List[ModuleResources]:
        """Control/interface logic that belongs to neither complex."""
        return [
            ModuleResources(
                name="Misc.",
                group="Others",
                lc_comb=self.MISC_COMB,
                lc_reg=self.MISC_REG,
                block_memory_bits=self.MISC_MEM_BITS,
                dsps=0,
            )
        ]

    def all_modules(self) -> List[ModuleResources]:
        """Every module row of Table III, in paper order."""
        return self.sparse_modules() + self.dense_modules() + self.misc_modules()

    def group_totals(self) -> Dict[str, ModuleResources]:
        """Per-group ("Sparse"/"Dense"/"Others") totals."""
        totals: Dict[str, ModuleResources] = {}
        for module in self.all_modules():
            if module.group not in totals:
                totals[module.group] = ModuleResources(
                    name=f"{module.group} total",
                    group=module.group,
                    lc_comb=0,
                    lc_reg=0,
                    block_memory_bits=0,
                    dsps=0,
                )
            totals[module.group] = totals[module.group].merge(
                module, name=f"{module.group} total", group=module.group
            )
        return totals

    # ------------------------------------------------------------------
    # Table II: device-level utilization
    # ------------------------------------------------------------------
    def module_alms(self, module: ModuleResources) -> int:
        """Approximate ALM count of one module.

        Arria 10 ALMs contain a fracturable LUT plus two registers, so the
        module-level ALM count is driven by whichever of combinational logic
        or register pairs dominates, inflated by a packing factor.
        """
        return int(
            round(max(module.lc_comb, module.lc_reg / 2.0) * self.ALM_PACKING_FACTOR)
        )

    def module_ram_blocks(self, module: ModuleResources) -> int:
        """Approximate M20K RAM-block count of one module."""
        if module.block_memory_bits == 0:
            return 0
        ideal = module.block_memory_bits / self.RAM_BLOCK_BITS
        return int(round(ideal * self.RAM_BLOCK_FRAGMENTATION))

    def report(self) -> ResourceReport:
        """Aggregate device utilization, including the platform shell."""
        fabric = self.fpga.fabric
        modules = self.all_modules()
        alms = sum(self.module_alms(module) for module in modules) + self.SHELL_ALMS
        memory_bits = (
            sum(module.block_memory_bits for module in modules) + self.SHELL_MEM_BITS
        )
        ram_blocks = sum(self.module_ram_blocks(module) for module in modules)
        ram_blocks += int(
            round(self.SHELL_MEM_BITS / self.RAM_BLOCK_BITS * self.RAM_BLOCK_FRAGMENTATION)
        )
        dsps = sum(module.dsps for module in modules)
        plls = self.PLLS_USED

        if alms > fabric.alms:
            raise ResourceEstimationError(
                f"design needs {alms} ALMs but the fabric only has {fabric.alms}"
            )
        if memory_bits > fabric.block_memory_bits:
            raise ResourceEstimationError(
                f"design needs {memory_bits} block-memory bits but the fabric only has "
                f"{fabric.block_memory_bits}"
            )
        if ram_blocks > fabric.ram_blocks:
            raise ResourceEstimationError(
                f"design needs {ram_blocks} RAM blocks but the fabric only has "
                f"{fabric.ram_blocks}"
            )
        if dsps > fabric.dsps:
            raise ResourceEstimationError(
                f"design needs {dsps} DSPs but the fabric only has {fabric.dsps}"
            )
        return ResourceReport(
            alms=alms,
            block_memory_bits=memory_bits,
            ram_blocks=ram_blocks,
            dsps=dsps,
            plls=plls,
            alm_utilization=alms / fabric.alms,
            block_memory_utilization=memory_bits / fabric.block_memory_bits,
            ram_block_utilization=ram_blocks / fabric.ram_blocks,
            dsp_utilization=dsps / fabric.dsps,
            pll_utilization=plls / fabric.plls,
        )
