"""EB-Streamer: the sparse accelerator complex of Centaur.

The EB-Streamer couples the base-pointer registers, the sparse-index SRAM,
the embedding gather unit and the embedding reduction unit to stream
embedding vectors out of CPU memory and reduce them on the fly.

Three views of the same hardware are provided:

* :meth:`EBStreamer.gather_and_reduce` — the *functional* path: actually
  reads vectors from :class:`~repro.core.mmio.HostMemory` via generated
  addresses and reduces them, producing numerically identical results to the
  software ``SparseLengthsSum``.
* :meth:`EBStreamer.estimate` — the *analytic* timing path used by the
  benchmark harness (index fetch + gather stream over the chiplet link).
* :meth:`EBStreamer.simulate` — an *event-driven* timing path that issues
  line requests against link credits and a bandwidth resource; it should
  agree with the analytic path within a few percent and exists as an
  internal cross-check (and for studying burstiness effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config.models import DLRMConfig
from repro.config.system import FPGAConfig, LinkConfig
from repro.core.gather import EmbeddingGatherUnit
from repro.core.link import ChipletLink
from repro.core.mmio import HostMemory, IOMMU
from repro.core.reduction import EmbeddingReductionUnit
from repro.core.registers import BasePointerRegisters
from repro.core.sram import SRAMBuffer
from repro.workloads.traces import SparseTrace
from repro.errors import CapacityError, SimulationError
from repro.memsys.address import cache_lines_for_vector
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource, TokenPool


@dataclass(frozen=True)
class EBStreamerEstimate:
    """Timing decomposition of the sparse accelerator for one batch."""

    index_fetch_s: float
    gather_s: float
    reduction_s: float
    total_lookups: int
    total_lines: int
    useful_bytes: float
    sustained_gather_bandwidth: float

    @property
    def embedding_stage_s(self) -> float:
        """Latency of the EMB stage (gathers overlap reductions)."""
        return max(self.gather_s, self.reduction_s)

    @property
    def effective_throughput(self) -> float:
        """Useful gathered bytes per second over the EMB stage."""
        if self.embedding_stage_s == 0:
            return 0.0
        return self.useful_bytes / self.embedding_stage_s


class EBStreamer:
    """The sparse accelerator complex (BPregs + index SRAM + EB-GU + EB-RU)."""

    def __init__(
        self,
        fpga: FPGAConfig,
        link_config: LinkConfig,
        embedding_dim: int = 32,
        registers: Optional[BasePointerRegisters] = None,
        host_memory: Optional[HostMemory] = None,
    ):
        self.fpga = fpga
        self.link = ChipletLink(link_config)
        self.registers = registers if registers is not None else BasePointerRegisters()
        self.host_memory = host_memory
        self.embedding_dim = embedding_dim
        # The sparse-index SRAM holds 32-bit row IDs.
        self.index_sram = SRAMBuffer(
            name="SRAM_sparseID", capacity_bytes=fpga.sparse_index_sram_entries * 4
        )
        self.gather_unit = EmbeddingGatherUnit(self.registers, self.index_sram)
        self.reduction_unit = EmbeddingReductionUnit(
            embedding_dim=embedding_dim,
            num_lanes=fpga.reduction_lanes,
            frequency_hz=fpga.frequency_hz,
        )
        self.iommu = IOMMU()

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def gather_and_reduce(
        self, table_names: Sequence[str], traces: Sequence[SparseTrace]
    ) -> np.ndarray:
        """Gather and reduce embeddings for every table of one batch.

        Args:
            table_names: Names under which the tables' base pointers were
                written into the BPregs (``"table/<name>"``).
            traces: One sparse trace per table (same order).

        Returns:
            Array of shape ``[batch, num_tables, embedding_dim]`` numerically
            matching the software ``SparseLengthsSum`` path.
        """
        if self.host_memory is None:
            raise SimulationError(
                "a HostMemory instance is required for functional gather_and_reduce()"
            )
        if len(table_names) != len(traces):
            raise SimulationError(
                f"got {len(table_names)} table names but {len(traces)} traces"
            )
        batch_sizes = {trace.batch_size for trace in traces}
        if len(batch_sizes) != 1:
            raise SimulationError(f"traces disagree on batch size: {sorted(batch_sizes)}")
        batch_size = batch_sizes.pop()
        row_bytes = self.embedding_dim * 4

        reduced: List[np.ndarray] = []
        for table_name, trace in zip(table_names, traces):
            self._check_index_capacity(trace.total_lookups)
            self.gather_unit.load_indices(table_name, trace.indices, trace.offsets)
            self.reduction_unit.begin(batch_size)
            for request in self.gather_unit.generate_requests(table_name, row_bytes):
                physical, _ = self.iommu.translate(request.address)
                vector = self.host_memory.read(physical, request.num_bytes)
                self.reduction_unit.accumulate(request.sample_index, vector)
            reduced.append(self.reduction_unit.result())
            # Per-inference index storage is transient.
            self.index_sram.discard(f"{table_name}/indices")
            self.index_sram.discard(f"{table_name}/offsets")
        return np.stack(reduced, axis=1)

    def _check_index_capacity(self, num_lookups: int) -> None:
        if num_lookups * 4 > self.index_sram.capacity_bytes:
            raise CapacityError(
                f"sparse-index SRAM ({self.index_sram.capacity_bytes} bytes) cannot hold "
                f"{num_lookups} indices for one table; split the batch"
            )

    # ------------------------------------------------------------------
    # Analytic timing path
    # ------------------------------------------------------------------
    def estimate(self, model: DLRMConfig, batch_size: int) -> EBStreamerEstimate:
        """Analytic timing of index fetch + gathers + reductions for one batch."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        lines_per_vector = cache_lines_for_vector(
            model.embedding_dim * 4, self.link.config.request_granularity_bytes
        )
        total_lookups = model.total_gathers_per_sample * batch_size
        total_lines = total_lookups * lines_per_vector
        useful_bytes = float(model.embedding_bytes_per_sample() * batch_size)

        # Index fetch: the sparse index array streams in as one bulk read.
        index_bytes = model.sparse_index_bytes_per_sample() * batch_size
        index_fetch = self.link.bulk_transfer(index_bytes)

        # Gather stream: bounded by link credits and the index SRAM depth.
        outstanding = min(
            self.link.config.max_outstanding_requests,
            self.fpga.sparse_index_sram_entries,
            max(1, total_lines),
        )
        gather = self.link.gather_stream(total_lines, outstanding)

        reduction_s = self.reduction_unit.reduction_time_s(total_lookups)
        return EBStreamerEstimate(
            index_fetch_s=index_fetch.latency_s,
            gather_s=gather.latency_s,
            reduction_s=reduction_s,
            total_lookups=total_lookups,
            total_lines=total_lines,
            useful_bytes=useful_bytes,
            sustained_gather_bandwidth=gather.sustained_bandwidth,
        )

    # ------------------------------------------------------------------
    # Event-driven timing path
    # ------------------------------------------------------------------
    def simulate(
        self, model: DLRMConfig, batch_size: int, max_requests: int = 200_000
    ) -> Dict[str, float]:
        """Event-driven gather simulation (cross-check of :meth:`estimate`).

        Individual line requests acquire a link credit, spend one link
        round-trip in flight, and then occupy the link's data-return
        bandwidth for their transfer time.  Returns a dict with the simulated
        gather time and achieved bandwidth.

        Args:
            model: Workload configuration.
            batch_size: Input batch size.
            max_requests: Safety cap on simulated line requests; larger
                gather streams are scaled from a simulated prefix (the stream
                is statistically uniform, so the prefix rate is representative).
        """
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        lines_per_vector = cache_lines_for_vector(
            model.embedding_dim * 4, self.link.config.request_granularity_bytes
        )
        total_lines = model.total_gathers_per_sample * batch_size * lines_per_vector
        simulated_lines = min(total_lines, max_requests)
        if simulated_lines == 0:
            return {"gather_s": 0.0, "achieved_bandwidth": 0.0, "simulated_lines": 0}

        simulator = Simulator()
        credits = TokenPool(self.link.config.max_outstanding_requests, name="link-credits")
        # The return path streams data at the gather-path efficiency cap.
        return_path = BandwidthResource(
            self.link.peak_gather_bandwidth, name="cpu->fpga data return"
        )
        line_bytes = self.link.config.request_granularity_bytes
        latency = self.link.config.latency_s
        state = {"issued": 0, "completed": 0, "finish_time": 0.0}

        def issue_next() -> None:
            while state["issued"] < simulated_lines and credits.try_acquire():
                state["issued"] += 1
                # Request flies to the CPU, is serviced, and the response
                # occupies the return path for its streaming time.
                def on_response() -> None:
                    completion = return_path.request(simulator.now, line_bytes)
                    simulator.schedule_at(completion, lambda: on_data_landed())

                def on_data_landed() -> None:
                    state["completed"] += 1
                    state["finish_time"] = simulator.now
                    credits.release()
                    issue_next()

                simulator.schedule(latency, on_response)

        issue_next()
        simulator.run(max_events=20 * max_requests + 1000)
        if state["completed"] != simulated_lines:
            raise SimulationError(
                f"gather simulation finished with {state['completed']} of "
                f"{simulated_lines} lines completed"
            )
        simulated_time = state["finish_time"]
        achieved = simulated_lines * line_bytes / simulated_time if simulated_time else 0.0
        # Scale the simulated prefix up to the full stream at the achieved rate.
        if total_lines > simulated_lines and achieved > 0:
            gather_s = latency + total_lines * line_bytes / achieved
        else:
            gather_s = simulated_time
        return {
            "gather_s": gather_s,
            "achieved_bandwidth": achieved,
            "simulated_lines": float(simulated_lines),
        }
