"""MLP unit: a spatial PE array executing GEMMs with an output-stationary dataflow.

The unit tiles the input and weight matrices into ``[32 x 32]`` tiles, walks
the output tiles in an output-stationary order (each output tile stays in
its PE's accumulation SRAM while the K-dimension is reduced), and broadcasts
weight/input tiles across rows/columns of the PE array — Fig. 12 of the
paper.

Two views are provided: a functional tiled GEMM (bit-identical to a dense
``A @ B`` up to fp32 accumulation order) and a cycle/timing estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.pe import ProcessingEngine
from repro.dlrm.mlp import MLP, relu
from repro.errors import ConfigurationError, ModelShapeError


@dataclass(frozen=True)
class GemmTiming:
    """Cycle-level cost of one tiled GEMM on the PE array."""

    m: int
    n: int
    k: int
    tile_ops: int
    waves: int
    cycles: int
    utilization: float

    def latency_s(self, frequency_hz: float) -> float:
        return self.cycles / frequency_hz


class MLPUnit:
    """A ``rows x cols`` array of :class:`ProcessingEngine` running GEMMs.

    Args:
        pe_rows / pe_cols: Shape of the spatial PE array (4x4 in the paper).
        tile_dim: Tile edge (32).
        flops_per_pe_per_cycle: Per-PE sustained throughput.
        fill_cycles: Pipeline fill/drain overhead charged once per GEMM.
    """

    def __init__(
        self,
        pe_rows: int = 4,
        pe_cols: int = 4,
        tile_dim: int = 32,
        flops_per_pe_per_cycle: float = 78.25,
        fill_cycles: int = 64,
    ):
        if pe_rows <= 0 or pe_cols <= 0:
            raise ConfigurationError("PE array dimensions must be positive")
        if fill_cycles < 0:
            raise ConfigurationError(f"fill_cycles must be non-negative, got {fill_cycles}")
        self.pe_rows = pe_rows
        self.pe_cols = pe_cols
        self.tile_dim = tile_dim
        self.fill_cycles = fill_cycles
        self.pes: List[List[ProcessingEngine]] = [
            [
                ProcessingEngine(tile_dim=tile_dim, flops_per_cycle=flops_per_pe_per_cycle)
                for _ in range(pe_cols)
            ]
            for _ in range(pe_rows)
        ]

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def cycles_per_tile_op(self) -> int:
        return self.pes[0][0].cycles_per_tile_op

    def _pe(self, output_row_tile: int, output_col_tile: int) -> ProcessingEngine:
        """PE owning a given output tile (round-robin over the array)."""
        return self.pes[output_row_tile % self.pe_rows][output_col_tile % self.pe_cols]

    # ------------------------------------------------------------------
    # Functional tiled GEMM
    # ------------------------------------------------------------------
    def gemm(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute ``inputs @ weights`` with the output-stationary tiling.

        Args:
            inputs: ``[M, K]`` activation matrix.
            weights: ``[K, N]`` weight matrix.

        Returns:
            ``[M, N]`` float32 product, numerically equal to the dense GEMM.
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        weights = np.asarray(weights, dtype=np.float32)
        if inputs.ndim != 2 or weights.ndim != 2:
            raise ModelShapeError("gemm operands must both be 2-D")
        if inputs.shape[1] != weights.shape[0]:
            raise ModelShapeError(
                f"inner dimensions do not match: {inputs.shape} @ {weights.shape}"
            )
        m, k = inputs.shape
        _, n = weights.shape
        t = self.tile_dim
        m_tiles, n_tiles, k_tiles = -(-m // t), -(-n // t), -(-k // t)

        padded_inputs = np.zeros((m_tiles * t, k_tiles * t), dtype=np.float32)
        padded_inputs[:m, :k] = inputs
        padded_weights = np.zeros((k_tiles * t, n_tiles * t), dtype=np.float32)
        padded_weights[:k, :n] = weights
        output = np.zeros((m_tiles * t, n_tiles * t), dtype=np.float32)

        for row_tile in range(m_tiles):
            for col_tile in range(n_tiles):
                pe = self._pe(row_tile, col_tile)
                accumulator = np.zeros((t, t), dtype=np.float32)
                for k_tile in range(k_tiles):
                    a_tile = padded_inputs[
                        row_tile * t : (row_tile + 1) * t, k_tile * t : (k_tile + 1) * t
                    ]
                    b_tile = padded_weights[
                        k_tile * t : (k_tile + 1) * t, col_tile * t : (col_tile + 1) * t
                    ]
                    accumulator += pe.multiply(a_tile, b_tile)
                output[row_tile * t : (row_tile + 1) * t, col_tile * t : (col_tile + 1) * t] = (
                    accumulator
                )
        return output[:m, :n]

    def run_mlp(self, mlp: MLP, inputs: np.ndarray) -> np.ndarray:
        """Run a full MLP through the PE array (ReLU between layers)."""
        activations = np.asarray(inputs, dtype=np.float32)
        last = len(mlp.layers) - 1
        for index, layer in enumerate(mlp.layers):
            activations = self.gemm(activations, layer.weight) + layer.bias
            if index != last:
                activations = relu(activations)
        return activations

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def gemm_timing(self, m: int, n: int, k: int) -> GemmTiming:
        """Cycle cost of one ``[M,K] @ [K,N]`` GEMM on the array.

        The control unit distributes tile multiplies over the PE array.  When
        there are enough output tiles to occupy every PE, the schedule is the
        pure output-stationary one of Fig. 12 (each PE owns an output tile
        and walks the K dimension).  When the output-tile count cannot fill
        the array (small batches, narrow layers), the control unit splits the
        K dimension across otherwise-idle PEs and merges their partial sums,
        so the number of PE "waves" is bounded by the total tile-multiply
        count divided by the array size rather than by the serialized K walk.
        """
        if m <= 0 or n <= 0 or k <= 0:
            raise ModelShapeError(f"GEMM dimensions must be positive, got {(m, n, k)}")
        t = self.tile_dim
        m_tiles, n_tiles, k_tiles = -(-m // t), -(-n // t), -(-k // t)
        tile_ops = m_tiles * n_tiles * k_tiles
        waves = -(-tile_ops // self.num_pes)
        # K-split partial sums merge at one extra tile-width of cycles per
        # reduced tile when the fallback mapping is active.
        merge_cycles = t * k_tiles if m_tiles * n_tiles < self.num_pes else 0
        cycles = waves * self.cycles_per_tile_op + merge_cycles + self.fill_cycles
        useful_flops = 2 * m * n * k
        padded_flops = tile_ops * 2 * t ** 3
        return GemmTiming(
            m=m,
            n=n,
            k=k,
            tile_ops=tile_ops,
            waves=waves,
            cycles=cycles,
            utilization=useful_flops / padded_flops,
        )

    def mlp_timing(self, layer_dims: Sequence[int], batch_size: int) -> List[GemmTiming]:
        """Per-layer timings of an MLP with the given layer widths."""
        if batch_size <= 0:
            raise ModelShapeError(f"batch_size must be positive, got {batch_size}")
        timings = []
        for in_dim, out_dim in zip(layer_dims[:-1], layer_dims[1:]):
            timings.append(self.gemm_timing(m=batch_size, n=out_dim, k=in_dim))
        return timings

    def reset_counters(self) -> None:
        for row in self.pes:
            for pe in row:
                pe.reset_counters()
