"""Embedding gather unit (EB-GU) of the sparse accelerator complex.

The gather unit is "nothing more than an address generator": it combines the
embedding-table base pointer from the BPregs with the sparse index IDs held
in the index SRAM to emit CPU->FPGA read requests, as aggressively as the
link's outstanding-request budget allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.core.registers import BasePointerRegisters
from repro.core.sram import SRAMBuffer
from repro.errors import SimulationError


@dataclass(frozen=True)
class GatherRequest:
    """One embedding-vector read request emitted by the gather unit."""

    table_name: str
    row_index: int
    address: int
    num_bytes: int
    sample_index: int

    @property
    def num_lines(self) -> int:
        """Cache lines this request occupies on the link (64-byte granules)."""
        return -(-self.num_bytes // 64)


class EmbeddingGatherUnit:
    """Generates gather addresses from base pointers and sparse indices."""

    def __init__(self, registers: BasePointerRegisters, index_sram: SRAMBuffer):
        self.registers = registers
        self.index_sram = index_sram
        self.requests_generated = 0

    # ------------------------------------------------------------------
    def load_indices(self, table_name: str, indices: np.ndarray, offsets: np.ndarray) -> None:
        """Populate the sparse-index SRAM for one table's batch of lookups."""
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) < 2:
            raise SimulationError("offsets must be one-dimensional with at least two entries")
        if offsets[-1] != len(indices):
            raise SimulationError(
                f"offsets end at {offsets[-1]} but there are {len(indices)} indices"
            )
        # Indices are stored as 32-bit values in the SRAM, as the RTL does.
        self.index_sram.write(f"{table_name}/indices", indices.astype(np.int32))
        self.index_sram.write(f"{table_name}/offsets", offsets.astype(np.int32))

    def generate_requests(
        self, table_name: str, row_bytes: int
    ) -> Iterator[GatherRequest]:
        """Yield one :class:`GatherRequest` per lookup stored for a table.

        Args:
            table_name: Table whose indices were loaded via :meth:`load_indices`.
            row_bytes: Size of one embedding vector in bytes.
        """
        if row_bytes <= 0 or row_bytes % 4 != 0:
            raise SimulationError(f"row_bytes must be a positive multiple of 4, got {row_bytes}")
        base_address = self.registers.read(f"table/{table_name}")
        indices = self.index_sram.read(f"{table_name}/indices")
        offsets = self.index_sram.read(f"{table_name}/offsets")
        sample = 0
        for position, row_index in enumerate(indices.tolist()):
            while position >= offsets[sample + 1]:
                sample += 1
            self.requests_generated += 1
            yield GatherRequest(
                table_name=table_name,
                row_index=int(row_index),
                address=base_address + int(row_index) * row_bytes,
                num_bytes=row_bytes,
                sample_index=sample,
            )

    def request_batch(
        self, table_name: str, row_bytes: int
    ) -> List[GatherRequest]:
        """Materialize all requests for a table (convenience for the functional path)."""
        return list(self.generate_requests(table_name, row_bytes))

    # ------------------------------------------------------------------
    @staticmethod
    def total_lines(requests: Sequence[GatherRequest]) -> int:
        """Total link lines a set of requests will occupy."""
        return sum(request.num_lines for request in requests)
