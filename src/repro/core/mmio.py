"""Host-memory, IOMMU and MMIO models (the paper's "software interface").

The package-integrated CPU+FPGA exposes a single *shared* physical memory
with "pointer-is-a-pointer" semantics: the host writes virtual base
addresses over MMIO, and the FPGA-side IOMMU/TLB translates the addresses of
hardware-issued reads.  This module provides:

* :class:`HostMemory` — a flat virtual address space in which the host
  registers its data structures (index arrays, embedding tables, weights);
  the accelerator reads it at arbitrary element-aligned offsets, exactly the
  fine-grained access pattern a discrete GPU/FPGA cannot perform without
  DMA copies.
* :class:`IOMMU` — page-granular virtual-to-physical translation with a TLB
  whose hit/miss statistics are exposed for analysis.
* :class:`MMIOInterface` — the host-side driver operations (writing base
  pointers, ringing doorbells) with their latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.registers import BasePointerRegisters
from repro.dlrm.embedding import EmbeddingTableBase
from repro.errors import ConfigurationError, SimulationError

#: Backing store of one host-memory region: either a real array or an
#: embedding table (possibly virtual, i.e. rows generated on demand).
RegionBacking = Union[np.ndarray, EmbeddingTableBase]


@dataclass
class HostMemoryRegion:
    """One registered region of the shared virtual address space."""

    name: str
    base_address: int
    size_bytes: int
    backing: RegionBacking

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    def contains(self, address: int, num_bytes: int = 1) -> bool:
        return self.base_address <= address and address + num_bytes <= self.end_address


class HostMemory:
    """A flat virtual address space shared by the CPU and the FPGA chiplet.

    Regions are allocated at page-aligned, monotonically increasing virtual
    addresses.  Reads and writes are element (4-byte) aligned, which is the
    granularity every Centaur access uses (fp32 embeddings, int32 indices).
    """

    def __init__(self, page_bytes: int = 4096, base_address: int = 0x1000_0000):
        if page_bytes <= 0 or page_bytes % 4 != 0:
            raise ConfigurationError(
                f"page_bytes must be a positive multiple of 4, got {page_bytes}"
            )
        self.page_bytes = page_bytes
        self._next_address = base_address
        self._regions: Dict[str, HostMemoryRegion] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def register(self, name: str, backing: RegionBacking) -> HostMemoryRegion:
        """Register a data structure and return its region (with base address)."""
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} is already registered")
        if isinstance(backing, EmbeddingTableBase):
            size_bytes = backing.table_bytes
        else:
            backing = np.ascontiguousarray(backing)
            size_bytes = backing.nbytes
        if size_bytes == 0:
            raise ConfigurationError(f"region {name!r} would be empty")
        region = HostMemoryRegion(
            name=name,
            base_address=self._next_address,
            size_bytes=size_bytes,
            backing=backing,
        )
        self._regions[name] = region
        pages = -(-size_bytes // self.page_bytes)
        self._next_address += pages * self.page_bytes
        return region

    def region(self, name: str) -> HostMemoryRegion:
        if name not in self._regions:
            raise KeyError(f"no host-memory region named {name!r}")
        return self._regions[name]

    def unregister(self, name: str) -> None:
        """Remove a region (e.g. per-inference inputs when replaced)."""
        self._regions.pop(name, None)

    def find_region(self, address: int, num_bytes: int) -> HostMemoryRegion:
        """Locate the region containing an address span."""
        for region in self._regions.values():
            if region.contains(address, num_bytes):
                return region
        raise SimulationError(
            f"address range [{address}, {address + num_bytes}) maps to no registered region"
        )

    # ------------------------------------------------------------------
    def read(self, address: int, num_bytes: int) -> np.ndarray:
        """Read ``num_bytes`` (4-byte aligned) returning a float32 view.

        Embedding-table-backed regions are read at row granularity (the only
        pattern the gather unit generates); array-backed regions support any
        element-aligned span.
        """
        if num_bytes <= 0 or num_bytes % 4 != 0:
            raise SimulationError(f"reads must be positive multiples of 4 bytes, got {num_bytes}")
        if address % 4 != 0:
            raise SimulationError(f"reads must be 4-byte aligned, got address {address}")
        region = self.find_region(address, num_bytes)
        offset = address - region.base_address
        self.bytes_read += num_bytes
        backing = region.backing
        if isinstance(backing, EmbeddingTableBase):
            row_bytes = backing.row_bytes
            if offset % row_bytes != 0 or num_bytes % row_bytes != 0:
                raise SimulationError(
                    f"embedding-table region {region.name!r} must be read at row "
                    f"granularity ({row_bytes} bytes)"
                )
            first_row = offset // row_bytes
            num_rows = num_bytes // row_bytes
            rows = backing.rows(np.arange(first_row, first_row + num_rows, dtype=np.int64))
            return rows.reshape(-1)
        flat = backing.reshape(-1).view(np.float32)
        start = offset // 4
        return flat[start : start + num_bytes // 4]

    def write(self, address: int, values: np.ndarray) -> None:
        """Write float32 values into an array-backed region (FPGA->CPU result copy)."""
        values = np.ascontiguousarray(values, dtype=np.float32).reshape(-1)
        num_bytes = values.nbytes
        if address % 4 != 0:
            raise SimulationError(f"writes must be 4-byte aligned, got address {address}")
        region = self.find_region(address, num_bytes)
        if isinstance(region.backing, EmbeddingTableBase):
            raise SimulationError(
                f"cannot write into embedding-table region {region.name!r}"
            )
        offset = (address - region.base_address) // 4
        flat = region.backing.reshape(-1).view(np.float32)
        flat[offset : offset + values.size] = values
        self.bytes_written += num_bytes


class IOMMU:
    """Page-granular address translation with a small TLB.

    Translation is identity-mapped (virtual page ``p`` -> physical page
    ``p``), because the reproduction has no need for a real page table; what
    matters for the performance model is the TLB hit/miss accounting, which
    the detailed EB-Streamer model can fold into its request latency.
    """

    def __init__(self, page_bytes: int = 4096, tlb_entries: int = 128):
        if page_bytes <= 0:
            raise ConfigurationError(f"page_bytes must be positive, got {page_bytes}")
        if tlb_entries <= 0:
            raise ConfigurationError(f"tlb_entries must be positive, got {tlb_entries}")
        self.page_bytes = page_bytes
        self.tlb_entries = tlb_entries
        self._tlb: Dict[int, int] = {}
        self._lru_clock = 0
        self._tlb_stamp: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def translate(self, virtual_address: int) -> Tuple[int, bool]:
        """Translate an address; returns ``(physical_address, tlb_hit)``."""
        if virtual_address < 0:
            raise SimulationError(f"virtual address must be non-negative, got {virtual_address}")
        page = virtual_address // self.page_bytes
        offset = virtual_address % self.page_bytes
        self._lru_clock += 1
        if page in self._tlb:
            self.hits += 1
            self._tlb_stamp[page] = self._lru_clock
            return self._tlb[page] * self.page_bytes + offset, True
        self.misses += 1
        if len(self._tlb) >= self.tlb_entries:
            victim = min(self._tlb_stamp, key=self._tlb_stamp.get)
            del self._tlb[victim]
            del self._tlb_stamp[victim]
        self._tlb[page] = page  # identity mapping
        self._tlb_stamp[page] = self._lru_clock
        return page * self.page_bytes + offset, False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MMIOInterface:
    """Host-side driver operations against the accelerator's register file."""

    def __init__(self, registers: BasePointerRegisters, write_latency_s: float = 1.0e-6):
        if write_latency_s < 0:
            raise ConfigurationError(
                f"write_latency_s must be non-negative, got {write_latency_s}"
            )
        self.registers = registers
        self.write_latency_s = write_latency_s
        self.total_writes = 0
        self.total_latency_s = 0.0

    def write_base_pointer(self, name: str, address: int) -> float:
        """Write one base pointer; returns the latency spent doing so."""
        self.registers.write(name, address)
        self.total_writes += 1
        self.total_latency_s += self.write_latency_s
        return self.write_latency_s

    def write_region_pointer(self, name: str, region) -> float:
        """Convenience: write the base address of a :class:`HostMemoryRegion`."""
        return self.write_base_pointer(name, region.base_address)

    def doorbell(self) -> float:
        """Ring the 'start inference' doorbell register."""
        self.total_writes += 1
        self.total_latency_s += self.write_latency_s
        return self.write_latency_s
