"""Dense accelerator complex: MLP unit + feature interaction + sigmoid + SRAMs.

The dense complex executes everything GEMM-shaped in DLRM: the bottom MLP on
the dense features, the dot-product feature interaction over the reduced
embeddings forwarded by the EB-Streamer, the top MLP, and the final sigmoid.
MLP weights are uploaded once at boot and stay persistent in on-chip SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config.models import DLRMConfig
from repro.config.system import FPGAConfig
from repro.core.interaction_unit import FeatureInteractionUnit
from repro.core.mlp_unit import MLPUnit
from repro.core.sigmoid_unit import SigmoidUnit
from repro.core.sram import SRAMBuffer
from repro.dlrm.mlp import MLP, relu
from repro.errors import SimulationError


@dataclass(frozen=True)
class DenseTimingEstimate:
    """Latency decomposition of the dense accelerator for one batch."""

    bottom_mlp_s: float
    interaction_s: float
    top_mlp_s: float
    sigmoid_s: float
    control_s: float

    @property
    def total_s(self) -> float:
        return (
            self.bottom_mlp_s
            + self.interaction_s
            + self.top_mlp_s
            + self.sigmoid_s
            + self.control_s
        )


class DenseAcceleratorComplex:
    """The GEMM side of Centaur (Fig. 11 of the paper).

    Args:
        fpga: Accelerator configuration (PE array shape, SRAM sizes, clock).
        sigmoid_mode: Fidelity of the sigmoid unit (``"exact"`` or
            ``"piecewise"``).
        per_layer_control_s: Control-unit overhead charged per GEMM layer
            (tile sequencing, SRAM pointer swaps).
    """

    def __init__(
        self,
        fpga: FPGAConfig,
        sigmoid_mode: str = "exact",
        per_layer_control_s: float = 0.2e-6,
    ):
        if per_layer_control_s < 0:
            raise SimulationError("per_layer_control_s must be non-negative")
        self.fpga = fpga
        self.per_layer_control_s = per_layer_control_s
        self.mlp_unit = MLPUnit(
            pe_rows=fpga.mlp_pe_rows,
            pe_cols=fpga.mlp_pe_cols,
            tile_dim=fpga.pe_tile_dim,
            flops_per_pe_per_cycle=fpga.flops_per_pe_per_cycle,
        )
        self.interaction_unit = FeatureInteractionUnit(
            num_pes=fpga.interaction_pes,
            flops_per_pe_per_cycle=fpga.flops_per_pe_per_cycle,
        )
        self.sigmoid_unit = SigmoidUnit(mode=sigmoid_mode)
        self.weight_sram = SRAMBuffer("SRAM_MLPmodel", fpga.mlp_weight_sram_bytes)
        self.dense_feature_sram = SRAMBuffer(
            "SRAM_DenseFeature", fpga.dense_feature_sram_bytes
        )
        self.mlp_input_sram = SRAMBuffer("SRAM_MLPinput", fpga.mlp_input_sram_bytes)
        self._bottom_mlp: Optional[MLP] = None
        self._top_mlp: Optional[MLP] = None

    # ------------------------------------------------------------------
    # Weight management (boot-time upload, persistent thereafter)
    # ------------------------------------------------------------------
    def load_weights(self, bottom_mlp: MLP, top_mlp: MLP) -> None:
        """Upload MLP weights into the persistent weight SRAM."""
        for index, layer in enumerate(bottom_mlp.layers):
            self.weight_sram.write(f"bottom/{index}/weight", layer.weight)
            self.weight_sram.write(f"bottom/{index}/bias", layer.bias)
        for index, layer in enumerate(top_mlp.layers):
            self.weight_sram.write(f"top/{index}/weight", layer.weight)
            self.weight_sram.write(f"top/{index}/bias", layer.bias)
        self._bottom_mlp = bottom_mlp
        self._top_mlp = top_mlp

    @property
    def weights_loaded(self) -> bool:
        return self._bottom_mlp is not None and self._top_mlp is not None

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def forward(
        self, dense_features: np.ndarray, reduced_embeddings: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the dense half of DLRM on the PE arrays.

        Args:
            dense_features: ``[batch, num_dense_features]``.
            reduced_embeddings: ``[batch, num_tables, dim]`` from the
                EB-Streamer.

        Returns:
            ``(probabilities, logits)`` for the batch.
        """
        if not self.weights_loaded:
            raise SimulationError("load_weights() must be called before forward()")
        dense_features = np.asarray(dense_features, dtype=np.float32)
        batch = dense_features.shape[0]
        tile = self._max_tile_batch(dense_features, reduced_embeddings)
        if batch <= tile:
            return self._forward_tile(dense_features, reduced_embeddings)
        # Per-inference inputs are transient and double-buffered: a batch
        # whose features exceed the input SRAMs streams through in tiles.
        probability_tiles = []
        logit_tiles = []
        for start in range(0, batch, tile):
            stop = min(start + tile, batch)
            probabilities, logits = self._forward_tile(
                dense_features[start:stop], reduced_embeddings[start:stop]
            )
            probability_tiles.append(probabilities)
            logit_tiles.append(logits)
        return np.concatenate(probability_tiles), np.concatenate(logit_tiles)

    def _max_tile_batch(
        self, dense_features: np.ndarray, reduced_embeddings: np.ndarray
    ) -> int:
        """Largest sample count whose transient inputs fit the input SRAMs."""
        dense_row_bytes = max(dense_features.shape[1] * 4, 4)
        num_tables = reduced_embeddings.shape[1]
        interaction_dim = (
            reduced_embeddings.shape[2] + num_tables * (num_tables + 1) // 2
        )
        interaction_row_bytes = max(interaction_dim * 4, 4)
        return max(
            1,
            min(
                self.dense_feature_sram.capacity_bytes // dense_row_bytes,
                self.mlp_input_sram.capacity_bytes // interaction_row_bytes,
            ),
        )

    def _forward_tile(
        self, dense_features: np.ndarray, reduced_embeddings: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.dense_feature_sram.write("dense_features", dense_features)

        bottom_out = self._run_mlp_from_sram("bottom", dense_features)
        interaction = self.interaction_unit.forward(bottom_out, reduced_embeddings)
        self.mlp_input_sram.write("interaction", interaction)
        top_out = self._run_mlp_from_sram("top", interaction)
        logits = top_out[:, 0]
        probabilities = self.sigmoid_unit.forward(logits)

        # Per-inference inputs are transient; weights stay resident.
        self.dense_feature_sram.discard("dense_features")
        self.mlp_input_sram.discard("interaction")
        return probabilities, logits

    def _run_mlp_from_sram(self, which: str, inputs: np.ndarray) -> np.ndarray:
        """Run one MLP using the weight tensors stored in SRAM."""
        mlp = self._bottom_mlp if which == "bottom" else self._top_mlp
        activations = np.asarray(inputs, dtype=np.float32)
        last = len(mlp.layers) - 1
        for index, _ in enumerate(mlp.layers):
            weight = self.weight_sram.read(f"{which}/{index}/weight")
            bias = self.weight_sram.read(f"{which}/{index}/bias")
            activations = self.mlp_unit.gemm(activations, weight) + bias
            if index != last:
                activations = relu(activations)
        return activations

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def estimate(self, model: DLRMConfig, batch_size: int) -> DenseTimingEstimate:
        """Latency of the dense stages for one batch of ``model``."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        frequency = self.fpga.frequency_hz

        bottom_cycles = sum(
            timing.cycles
            for timing in self.mlp_unit.mlp_timing(model.bottom_mlp.layer_dims, batch_size)
        )
        top_cycles = sum(
            timing.cycles
            for timing in self.mlp_unit.mlp_timing(model.top_mlp.layer_dims, batch_size)
        )
        interaction = self.interaction_unit.timing(
            num_tables=model.num_tables,
            embedding_dim=model.embedding_dim,
            batch_size=batch_size,
        )
        sigmoid = self.sigmoid_unit.timing(batch_size)
        num_layers = model.bottom_mlp.num_layers + model.top_mlp.num_layers + 1
        control_s = num_layers * self.per_layer_control_s
        return DenseTimingEstimate(
            bottom_mlp_s=bottom_cycles / frequency,
            interaction_s=interaction.latency_s(frequency),
            top_mlp_s=top_cycles / frequency,
            sigmoid_s=sigmoid.latency_s(frequency),
            control_s=control_s,
        )
