"""Processing engine (PE): a fixed-size square matrix-multiply block.

Each PE wraps one instance of the FPGA vendor's floating-point matrix
multiplication IP configured for 32x32 operands.  The MLP unit composes a
4x4 spatial array of these, and the feature-interaction unit uses four more.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelShapeError


class ProcessingEngine:
    """One 32x32 (by default) matrix-multiply engine with cycle accounting.

    Args:
        tile_dim: Edge length of the square operand tiles.
        flops_per_cycle: Sustained FLOPs per cycle of the underlying IP core
            (78.25 for the paper's 313 GFLOPS aggregate across 20 PEs at
            200 MHz).
    """

    def __init__(self, tile_dim: int = 32, flops_per_cycle: float = 78.25):
        if tile_dim <= 0:
            raise ConfigurationError(f"tile_dim must be positive, got {tile_dim}")
        if flops_per_cycle <= 0:
            raise ConfigurationError(
                f"flops_per_cycle must be positive, got {flops_per_cycle}"
            )
        self.tile_dim = tile_dim
        self.flops_per_cycle = flops_per_cycle
        self.tile_ops = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    @property
    def flops_per_tile_op(self) -> int:
        """FLOPs of one full tile multiply (2 * T^3)."""
        return 2 * self.tile_dim ** 3

    @property
    def cycles_per_tile_op(self) -> int:
        """Cycles one tile multiply occupies the PE."""
        return int(np.ceil(self.flops_per_tile_op / self.flops_per_cycle))

    # ------------------------------------------------------------------
    def multiply(self, tile_a: np.ndarray, tile_b: np.ndarray) -> np.ndarray:
        """Multiply two (possibly zero-padded) tiles of shape ``[T, T]``."""
        tile_a = np.asarray(tile_a, dtype=np.float32)
        tile_b = np.asarray(tile_b, dtype=np.float32)
        expected = (self.tile_dim, self.tile_dim)
        if tile_a.shape != expected or tile_b.shape != expected:
            raise ModelShapeError(
                f"PE operands must both be {expected}, got {tile_a.shape} and {tile_b.shape}"
            )
        self.tile_ops += 1
        self.cycles += self.cycles_per_tile_op
        return tile_a @ tile_b

    def reset_counters(self) -> None:
        self.tile_ops = 0
        self.cycles = 0
