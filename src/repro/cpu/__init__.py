"""CPU-only performance model (the paper's baseline design point).

The model mirrors how DLRM executes on a Xeon-class server with a
PyTorch/Caffe2 backend: embedding tables are processed one operator call at
a time with OpenMP parallelism across the batch dimension, MLPs run as
AVX GEMMs, and the memory system serves sparse gathers with the limited
memory-level parallelism a latency-optimized core can sustain.
"""

from repro.cpu.gemm import CPUGemmModel, GemmEstimate
from repro.cpu.threads import ThreadPoolModel
from repro.cpu.embedding_exec import EmbeddingExecutionModel, EmbeddingExecutionEstimate
from repro.cpu.cpu_runner import CPUOnlyRunner
from repro.cpu.trace_exec import TraceDrivenEmbeddingSimulator, TraceDrivenProfile

__all__ = [
    "CPUGemmModel",
    "GemmEstimate",
    "ThreadPoolModel",
    "EmbeddingExecutionModel",
    "EmbeddingExecutionEstimate",
    "CPUOnlyRunner",
    "TraceDrivenEmbeddingSimulator",
    "TraceDrivenProfile",
]
