"""Trace-driven cross-validation of the CPU embedding-layer cache model.

The benchmark harness uses the closed-form
:class:`~repro.memsys.analytic.EmbeddingAccessProfile` because Table I
footprints (up to 3.2 GB) are too large to replay through a line-accurate
simulator.  This module provides the validation path: for *scaled-down*
models it replays the actual gather line stream through a
:class:`~repro.memsys.hierarchy.CacheHierarchy` slice and compares the
measured gather miss rate against the analytic prediction, so the analytic
constants stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.models import DLRMConfig
from repro.config.system import CPUConfig
from repro.workloads.traces import DLRMBatch, TraceGenerator, UniformTraceGenerator
from repro.errors import SimulationError
from repro.memsys.address import cache_lines_for_vector
from repro.memsys.analytic import AnalyticCacheModel, expected_unique_fraction
from repro.memsys.hierarchy import CacheHierarchy
from repro.memsys.stats import CacheStats


@dataclass(frozen=True)
class TraceDrivenProfile:
    """Measured vs predicted LLC behaviour of the embedding gather stream."""

    model_name: str
    batch_size: int
    lookups: int
    measured_llc: CacheStats
    predicted_miss_probability: float
    llc_slice_bytes: int

    @property
    def measured_miss_rate(self) -> float:
        return self.measured_llc.miss_rate

    @property
    def absolute_error(self) -> float:
        return abs(self.measured_miss_rate - self.predicted_miss_probability)


class TraceDrivenEmbeddingSimulator:
    """Replays embedding gather traces through a cache-hierarchy slice.

    The simulated hierarchy is a single-core slice (per-core L1/L2 plus a
    proportional share of the LLC), matching how one OpenMP worker sees the
    cache when the batch is processed in parallel.

    Args:
        cpu: CPU configuration providing cache geometry.
        llc_share: Fraction of the socket LLC visible to the replayed stream
            (1/num_cores models one worker of a fully loaded socket; 1.0
            models a single-threaded run owning the whole LLC).
    """

    def __init__(self, cpu: Optional[CPUConfig] = None, llc_share: Optional[float] = None):
        self.cpu = cpu if cpu is not None else CPUConfig()
        if llc_share is None:
            llc_share = 1.0 / self.cpu.num_cores
        if not 0.0 < llc_share <= 1.0:
            raise SimulationError(f"llc_share must be in (0, 1], got {llc_share}")
        self.llc_share = llc_share

    # ------------------------------------------------------------------
    def _build_hierarchy(self) -> CacheHierarchy:
        llc_slice = int(self.cpu.llc_bytes * self.llc_share)
        return CacheHierarchy.broadwell_like(
            l1_bytes=self.cpu.l1_bytes,
            l2_bytes=self.cpu.l2_bytes,
            llc_bytes=llc_slice,
            line_bytes=self.cpu.cache_line_bytes,
            llc_ways=self.cpu.llc_ways,
        )

    def _gather_lines(self, model: DLRMConfig, batch: DLRMBatch) -> np.ndarray:
        """Line addresses touched by every gather of the batch, in issue order."""
        lines_per_vector = cache_lines_for_vector(
            model.embedding_dim * 4, self.cpu.cache_line_bytes
        )
        table_base_line = 0
        all_lines = []
        for table, trace in zip(model.tables, batch.sparse_traces):
            row_lines = table.row_bytes // self.cpu.cache_line_bytes
            row_lines = max(row_lines, 1)
            first_lines = table_base_line + trace.indices * row_lines
            # Expand each gather into its consecutive lines (vector spans).
            expanded = (first_lines[:, None] + np.arange(lines_per_vector)[None, :]).reshape(-1)
            all_lines.append(expanded)
            table_base_line += -(-table.table_bytes // self.cpu.cache_line_bytes)
        return np.concatenate(all_lines) if all_lines else np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def profile(
        self,
        model: DLRMConfig,
        batch_size: int,
        generator: Optional[TraceGenerator] = None,
        warmup_batches: int = 1,
        warm_tables: bool = True,
        max_warm_lines: int = 2_000_000,
    ) -> TraceDrivenProfile:
        """Replay gather traffic for ``model`` and measure the LLC miss rate.

        Args:
            model: A (scaled-down) DLRM configuration; keep the aggregate
                table footprint under a few hundred MB so the replay stays
                fast.
            batch_size: Inference batch size.
            generator: Sparse-index generator (uniform by default).
            warmup_batches: Batches replayed before measurement to warm the
                private levels, mirroring the paper's warmed-cache methodology.
            warm_tables: Pre-populate the LLC with one sweep over the table
                lines (up to ``max_warm_lines``) so the measurement reflects
                steady state rather than a cold cache — the condition both
                the paper's methodology and the analytic model assume.
            max_warm_lines: Cap on the warm sweep length.
        """
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        if warmup_batches < 0:
            raise SimulationError(f"warmup_batches must be non-negative, got {warmup_batches}")
        if max_warm_lines < 0:
            raise SimulationError(f"max_warm_lines must be non-negative, got {max_warm_lines}")
        generator = generator if generator is not None else UniformTraceGenerator(seed=0)
        hierarchy = self._build_hierarchy()

        if warm_tables:
            total_lines = sum(
                -(-table.table_bytes // self.cpu.cache_line_bytes) for table in model.tables
            )
            # Only the trailing `LLC capacity` worth of a sequential sweep can
            # stay resident under LRU, so warming more than that is wasted work.
            llc_lines = hierarchy.llc.capacity_bytes // self.cpu.cache_line_bytes
            warm_count = min(total_lines, max(2 * llc_lines, 1), max_warm_lines)
            hierarchy.llc.warm(range(total_lines - warm_count, total_lines))

        for _ in range(warmup_batches):
            warm_batch = generator.model_batch(model, batch_size)
            for line in self._gather_lines(model, warm_batch):
                hierarchy.access(int(line))

        measured_batch = generator.model_batch(model, batch_size)
        lines = self._gather_lines(model, measured_batch)
        before = hierarchy.llc.stats
        start = CacheStats(accesses=before.accesses, hits=before.hits, misses=before.misses)
        for line in lines:
            hierarchy.access(int(line))
        after = hierarchy.llc.stats
        measured = CacheStats(
            accesses=after.accesses - start.accesses,
            hits=after.hits - start.hits,
            misses=after.misses - start.misses,
        )

        predicted = self.predict_miss_probability(model, batch_size)
        return TraceDrivenProfile(
            model_name=model.name,
            batch_size=batch_size,
            lookups=measured_batch.total_lookups,
            measured_llc=measured,
            predicted_miss_probability=predicted,
            llc_slice_bytes=int(self.cpu.llc_bytes * self.llc_share),
        )

    # ------------------------------------------------------------------
    def predict_miss_probability(self, model: DLRMConfig, batch_size: int) -> float:
        """Analytic miss probability of the gather stream for the same slice."""
        cache = AnalyticCacheModel(
            llc_bytes=int(self.cpu.llc_bytes * self.llc_share),
            line_bytes=self.cpu.cache_line_bytes,
        )
        aggregate = cache.gather_miss_probability(model.embedding_table_bytes)
        # Weight by the intra-batch first-touch fraction, as the analytic
        # embedding profile does.
        total = 0.0
        lookups = 0
        for table in model.tables:
            table_lookups = table.gathers * batch_size
            unique = expected_unique_fraction(table.num_rows, table_lookups)
            total += table_lookups * unique * aggregate
            lookups += table_lookups
        return total / lookups if lookups else 0.0
