"""End-to-end CPU-only inference model (the paper's baseline design point)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backends.base import BackendCapabilities
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.cpu.embedding_exec import EmbeddingExecutionModel
from repro.cpu.gemm import CPUGemmModel
from repro.errors import SimulationError
from repro.memsys.analytic import MLPAccessProfile
from repro.results import InferenceResult, LatencyBreakdown

#: What the CPU-only backend reports (registered as ``"cpu"``).
CPU_CAPABILITIES = BackendCapabilities(
    reports_embedding_throughput=True,
    reports_mlp_traffic=True,
    uses_accelerator=False,
    offloads_embeddings=False,
    stages=("EMB", "MLP", "Other"),
    # A CPU replica is traffic-ready once the embedding tables are paged in.
    provision_warmup_s=2e-3,
)


@dataclass
class CPUOnlyRunner:
    """Produces :class:`~repro.results.InferenceResult` for the CPU-only system.

    Deprecated as a direct entry point: prefer
    ``repro.backends.get_backend("cpu", system)``, which resolves this class
    through the backend registry.

    Attributes:
        system: Hardware configuration bundle (only the CPU, memory and power
            portions are used).
        other_fixed_s: Per-inference latency outside the embedding and dense
            layers (input marshalling, sigmoid post-processing, framework
            bookkeeping) — the "Other" slice of Figure 5.
        other_per_sample_s: Batch-proportional part of that overhead.
    """

    system: SystemConfig
    other_fixed_s: float = 12.0e-6
    other_per_sample_s: float = 0.15e-6
    embedding_model: EmbeddingExecutionModel = field(default=None)  # type: ignore[assignment]
    gemm_model: CPUGemmModel = field(default=None)  # type: ignore[assignment]
    mlp_profile: Optional[MLPAccessProfile] = None

    def __post_init__(self) -> None:
        if self.other_fixed_s < 0 or self.other_per_sample_s < 0:
            raise SimulationError("CPU 'Other' overheads must be non-negative")
        if self.embedding_model is None:
            self.embedding_model = EmbeddingExecutionModel(
                cpu=self.system.cpu, memory=self.system.memory
            )
        if self.gemm_model is None:
            self.gemm_model = CPUGemmModel(cpu=self.system.cpu)
        if self.mlp_profile is None:
            self.mlp_profile = MLPAccessProfile(cpu=self.system.cpu)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend-registry key of this design point."""
        return "cpu"

    @property
    def design_point(self) -> str:
        return "CPU-only"

    @property
    def capabilities(self) -> BackendCapabilities:
        return CPU_CAPABILITIES

    def energy(self, model: DLRMConfig, batch_size: int) -> float:
        """Energy in joules of one batch (power x latency)."""
        return self.run(model, batch_size).energy_joules

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        """Model one inference batch end to end on the CPU-only system."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")

        embedding = self.embedding_model.estimate(model, batch_size)
        dense = self.gemm_model.estimate_model(model, batch_size)
        other_s = self.other_fixed_s + self.other_per_sample_s * batch_size

        breakdown = LatencyBreakdown()
        breakdown.add("EMB", embedding.latency_s)
        breakdown.add("MLP", dense.latency_s)
        breakdown.add("Other", other_s)

        mlp_traffic = self.mlp_profile.compute(model, batch_size)
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=breakdown,
            embedding_traffic=embedding.traffic,
            mlp_traffic=mlp_traffic,
            power_watts=self.system.power.cpu_only_watts,
            extra={
                "embedding_software_s": embedding.software_s,
                "embedding_memory_s": embedding.memory_s,
                "embedding_dispatch_s": embedding.dispatch_s,
                "gemm_efficiency": dense.efficiency,
                "outstanding_misses": embedding.outstanding_misses,
            },
        )

    # ------------------------------------------------------------------
    def effective_embedding_throughput(self, model: DLRMConfig, batch_size: int) -> float:
        """Effective memory throughput of the embedding stage (Figure 7)."""
        return self.embedding_model.effective_throughput(model, batch_size)
