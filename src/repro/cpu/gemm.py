"""CPU GEMM performance model for the MLP and feature-interaction layers.

Dense layers on the CPU are compute-bound (their weights fit in the LLC, see
Figure 6), so their latency is FLOPs over the *sustained* AVX throughput.
Sustained throughput depends heavily on how much weight reuse the batch size
exposes: a batch-1 inference degenerates to GEMV-like operations that run at
a few percent of peak, while a batch of 128 approaches the efficiency of a
well-blocked small GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.models import DLRMConfig
from repro.config.system import CPUConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class GemmEstimate:
    """Latency estimate of the dense portion of one inference batch."""

    latency_s: float
    flops: float
    sustained_flops: float
    efficiency: float
    overhead_s: float

    @property
    def compute_s(self) -> float:
        return self.latency_s - self.overhead_s


@dataclass(frozen=True)
class CPUGemmModel:
    """Roofline-with-efficiency-curve model of CPU GEMM execution.

    Attributes:
        cpu: Host CPU configuration (provides peak FLOP/s).
        efficiency_batch1: Fraction of peak sustained at batch size 1.
        efficiency_large_batch: Asymptotic fraction of peak for large batches.
        batch_half_point: Batch size at which half of the asymptotic gain is
            realized.
        per_layer_overhead_s: Operator dispatch/framework overhead per layer.
    """

    cpu: CPUConfig
    efficiency_batch1: float = 0.008
    efficiency_large_batch: float = 0.05
    batch_half_point: float = 24.0
    per_layer_overhead_s: float = 8.0e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency_batch1 <= 1.0:
            raise SimulationError("efficiency_batch1 must be in (0, 1]")
        if not 0.0 < self.efficiency_large_batch <= 1.0:
            raise SimulationError("efficiency_large_batch must be in (0, 1]")
        if self.efficiency_batch1 > self.efficiency_large_batch:
            raise SimulationError(
                "batch-1 efficiency cannot exceed large-batch efficiency"
            )
        if self.batch_half_point <= 0:
            raise SimulationError("batch_half_point must be positive")
        if self.per_layer_overhead_s < 0:
            raise SimulationError("per_layer_overhead_s must be non-negative")

    # ------------------------------------------------------------------
    def efficiency(self, batch_size: int) -> float:
        """Sustained fraction of peak FLOP/s for a batch size."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        gain = self.efficiency_large_batch - self.efficiency_batch1
        saturation = (batch_size - 1) / (batch_size - 1 + self.batch_half_point)
        return self.efficiency_batch1 + gain * saturation

    def sustained_flops(self, batch_size: int) -> float:
        """Sustained FLOP/s for a batch size."""
        return self.cpu.peak_flops * self.efficiency(batch_size)

    # ------------------------------------------------------------------
    def estimate(self, flops: float, batch_size: int, num_layers: int) -> GemmEstimate:
        """Latency of a dense workload of ``flops`` total FLOPs.

        Args:
            flops: Total FLOPs across the batch (MLPs plus interaction).
            batch_size: Input batch size (drives the efficiency curve).
            num_layers: Number of distinct GEMM/operator launches (drives the
                fixed overhead).
        """
        if flops < 0:
            raise SimulationError(f"flops must be non-negative, got {flops}")
        if num_layers < 0:
            raise SimulationError(f"num_layers must be non-negative, got {num_layers}")
        sustained = self.sustained_flops(batch_size)
        compute_s = flops / sustained if flops else 0.0
        overhead_s = num_layers * self.per_layer_overhead_s
        return GemmEstimate(
            latency_s=compute_s + overhead_s,
            flops=flops,
            sustained_flops=sustained,
            efficiency=self.efficiency(batch_size),
            overhead_s=overhead_s,
        )

    def estimate_model(self, model: DLRMConfig, batch_size: int) -> GemmEstimate:
        """Latency of all dense layers (bottom MLP, interaction, top MLP)."""
        flops = model.total_dense_flops_per_sample() * batch_size
        num_layers = (
            model.bottom_mlp.num_layers + model.top_mlp.num_layers + 1  # interaction
        )
        return self.estimate(flops, batch_size, num_layers)
