"""Thread-level-parallelism model of the OpenMP inference backend."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import CPUConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class ThreadPoolModel:
    """Models how many worker threads the DLRM backend keeps busy.

    The PyTorch/Caffe2 embedding operators parallelize over the *batch*
    dimension within one table's ``SparseLengthsSum`` call (tables are
    dispatched sequentially), so a batch of one sample runs the gather loop
    on a single core regardless of the table count — one of the reasons the
    paper observes such poor memory-level parallelism at small batch sizes.

    Attributes:
        cpu: The host CPU configuration.
        parallel_efficiency: Fraction of ideal scaling actually achieved when
            multiple threads are active (synchronization and imbalance).
    """

    cpu: CPUConfig
    parallel_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise SimulationError(
                f"parallel_efficiency must be in (0, 1], got {self.parallel_efficiency}"
            )

    def threads_for_batch(self, batch_size: int) -> int:
        """Worker threads active for a batch-parallel operator."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        return max(1, min(self.cpu.num_cores, batch_size))

    def effective_parallelism(self, batch_size: int) -> float:
        """Threads scaled by parallel efficiency (1.0 for a single thread)."""
        threads = self.threads_for_batch(batch_size)
        if threads == 1:
            return 1.0
        return 1.0 + (threads - 1) * self.parallel_efficiency

    def outstanding_misses(self, batch_size: int) -> float:
        """Cache-line misses the active threads can keep in flight."""
        return self.threads_for_batch(batch_size) * self.cpu.mshrs_per_core

    def per_thread_share(self, total_work_items: int, batch_size: int) -> float:
        """Work items executed by the busiest thread."""
        if total_work_items < 0:
            raise SimulationError(
                f"total_work_items must be non-negative, got {total_work_items}"
            )
        return total_work_items / self.effective_parallelism(batch_size)
