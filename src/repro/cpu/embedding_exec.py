"""CPU execution model of the sparse embedding layer (gathers + reductions).

This is the heart of the paper's Section III characterization.  The latency
of the embedding stage on a CPU-only system is the sum of:

* a fixed per-inference layer overhead (framework entry, output allocation),
* a per-table operator dispatch cost (each ``SparseLengthsSum`` call is a
  separate operator),
* the software gather/reduce loop itself, parallelized over the batch
  dimension — so a batch of one sample runs on one core,
* the DRAM time needed to bring in the LLC-missing embedding lines, bounded
  by the memory-level parallelism the active threads' MSHRs can sustain.

The "effective memory throughput" of Figure 7 is then simply the useful
gathered bytes divided by this stage latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.models import DLRMConfig
from repro.config.system import CPUConfig, MemoryConfig
from repro.cpu.threads import ThreadPoolModel
from repro.errors import SimulationError
from repro.memsys.analytic import EmbeddingAccessProfile
from repro.memsys.dram import DRAMModel
from repro.memsys.stats import MemoryTrafficStats


@dataclass(frozen=True)
class EmbeddingExecutionEstimate:
    """Latency decomposition of the CPU embedding stage for one batch."""

    latency_s: float
    fixed_s: float
    dispatch_s: float
    software_s: float
    memory_s: float
    traffic: MemoryTrafficStats
    outstanding_misses: float

    @property
    def effective_throughput(self) -> float:
        """Useful gathered bytes per second over the whole stage."""
        if self.latency_s == 0:
            return 0.0
        return self.traffic.useful_bytes / self.latency_s


@dataclass(frozen=True)
class EmbeddingExecutionModel:
    """Analytic CPU model for ``SparseLengthsSum``-style embedding layers.

    Attributes:
        cpu: Host CPU configuration.
        memory: DRAM configuration.
        layer_fixed_s: Per-inference fixed overhead of the embedding stage.
        table_dispatch_s: Per-table operator dispatch overhead.
        per_lookup_software_s: Per-lookup address-generation/reduction cost
            on the executing thread (covers the vectorized accumulate).
        access_profile: Analytic LLC model used for miss counts; built from
            ``cpu`` when not supplied.
    """

    cpu: CPUConfig
    memory: MemoryConfig
    layer_fixed_s: float = 5.0e-6
    table_dispatch_s: float = 10.0e-6
    per_lookup_software_s: float = 70.0e-9
    threads: ThreadPoolModel = field(default=None)  # type: ignore[assignment]
    access_profile: Optional[EmbeddingAccessProfile] = None

    def __post_init__(self) -> None:
        if self.layer_fixed_s < 0 or self.table_dispatch_s < 0 or self.per_lookup_software_s < 0:
            raise SimulationError("embedding model overheads must be non-negative")
        if self.threads is None:
            object.__setattr__(self, "threads", ThreadPoolModel(self.cpu))
        if self.access_profile is None:
            object.__setattr__(self, "access_profile", EmbeddingAccessProfile(self.cpu))

    # ------------------------------------------------------------------
    def estimate(self, model: DLRMConfig, batch_size: int) -> EmbeddingExecutionEstimate:
        """Estimate the embedding-stage latency of one inference batch."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        traffic = self.access_profile.compute(model, batch_size)
        dram = DRAMModel(self.memory, line_bytes=self.cpu.cache_line_bytes)

        # Software gather/reduce loop, parallel over the batch dimension.
        total_lookups = model.total_gathers_per_sample * batch_size
        software_s = (
            self.threads.per_thread_share(total_lookups, batch_size)
            * self.per_lookup_software_s
        )

        # Operator dispatch is sequential over tables (one call per table).
        dispatch_s = self.table_dispatch_s * model.num_tables

        # DRAM service time for the LLC-missing lines, limited by the
        # memory-level parallelism of the active threads.
        outstanding = self.threads.outstanding_misses(batch_size)
        row_hit_rate = dram.row_hit_rate_for_gathers(
            vector_bytes=model.embedding_dim * 4,
            table_bytes=max(table.table_bytes for table in model.tables),
        )
        burst = dram.service_burst(
            num_lines=traffic.llc.misses,
            outstanding_lines=outstanding,
            row_hit_rate=row_hit_rate,
        )
        memory_s = burst.service_time_s

        latency_s = self.layer_fixed_s + dispatch_s + software_s + memory_s
        return EmbeddingExecutionEstimate(
            latency_s=latency_s,
            fixed_s=self.layer_fixed_s,
            dispatch_s=dispatch_s,
            software_s=software_s,
            memory_s=memory_s,
            traffic=traffic,
            outstanding_misses=outstanding,
        )

    # ------------------------------------------------------------------
    def effective_throughput(self, model: DLRMConfig, batch_size: int) -> float:
        """Convenience wrapper returning only the effective throughput (B/s)."""
        return self.estimate(model, batch_size).effective_throughput
