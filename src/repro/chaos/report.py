"""Incident accounting: what each injected fault cost the fleet.

The :class:`~repro.chaos.injector.FaultInjector` records raw per-incident
facts while the simulation runs (onset/clear times, shed and re-dispatched
counts, energy and replica-second snapshots); :func:`build_incident_report`
then folds the run's completion samples over those windows to produce the
SLA view — attainment before/during/after each incident and the
time-to-recover back to the pre-incident p99.

Everything here is pure arithmetic over deterministic inputs, so equal
seeds produce byte-identical :class:`IncidentReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

#: A recovered window may sit this fraction above the pre-incident p99
#: before it counts as recovered (tail estimates over small windows are
#: noisy; an exact-match bar would censor most real recoveries).
_RECOVERY_TOLERANCE = 1.1

#: Floor on the derived attainment/recovery window (seconds).
_MIN_WINDOW_S = 5e-3


@dataclass(frozen=True)
class Incident:
    """One injected fault, measured.

    Attributes:
        kind: Fault kind tag (``"crash"``, ``"shard-loss"``, ``"link"``,
            ``"brownout"``).
        target: What broke, e.g. ``"replica:2"`` or ``"shard:0"``.
        start_s: Fault onset (simulated seconds).
        end_s: Service restoration — restart fully warmed, shard restored,
            degradation window closed; the run horizon when the fault was
            never cleared (``recovered`` distinguishes the two).
        cleared: False when the fault was still open at end of run.
        shed_requests: In-flight/arriving requests dropped by this fault.
        redispatched_requests: In-flight requests re-routed to survivors.
        degraded_lookups: Lookups served by the wrong shard under re-hash
            failover (correctness loss; zero for non-shard faults).
        recovery_replica_seconds: Replica-seconds billed between onset and
            restoration.
        recovery_energy_joules: Device energy spent between onset and
            restoration.
        refill_rows: Hot-row cache rows lost to a cold restart — rows the
            restored shard must re-gather before its cache is warm again
            (zero for faults without a cache restart).
        refill_s: Gather seconds the refill costs, priced through the
            backend's EMB cost model.
        refill_energy_joules: Device energy the refill costs.
        sla_before: Attainment in the window before onset.
        sla_during: Attainment between onset and restoration.
        sla_after: Attainment in the window after restoration.
        p99_before_s: Pre-incident p99 the recovery scan targets (0.0 when
            nothing completed before onset).
        time_to_recover_s: Time from onset until a full window's p99 first
            returns to within 10% of ``p99_before_s``; ``None`` when the
            run ends first (censored) or there is no pre-incident baseline.
        note: Free-form detail (no-op crashes, total-outage sheds, ...).
    """

    kind: str
    target: str
    start_s: float
    end_s: float
    cleared: bool
    shed_requests: int
    redispatched_requests: int
    degraded_lookups: int = 0
    recovery_replica_seconds: float = 0.0
    recovery_energy_joules: float = 0.0
    refill_rows: int = 0
    refill_s: float = 0.0
    refill_energy_joules: float = 0.0
    sla_before: float = 1.0
    sla_during: float = 1.0
    sla_after: float = 1.0
    p99_before_s: float = 0.0
    time_to_recover_s: Optional[float] = None
    note: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class IncidentReport:
    """Resilience summary of one chaos-injected serving run.

    Attached to :class:`~repro.serving.cluster.ClusterReport` as
    ``incidents`` when the run carried a non-empty fault schedule.
    """

    schedule: str
    sla_s: float
    window_s: float
    horizon_s: float
    incidents: Tuple[Incident, ...]

    @property
    def total_shed(self) -> int:
        return sum(incident.shed_requests for incident in self.incidents)

    @property
    def total_redispatched(self) -> int:
        return sum(incident.redispatched_requests for incident in self.incidents)

    @property
    def total_degraded_lookups(self) -> int:
        return sum(incident.degraded_lookups for incident in self.incidents)

    @property
    def total_refill_rows(self) -> int:
        return sum(incident.refill_rows for incident in self.incidents)

    @property
    def total_refill_s(self) -> float:
        return sum(incident.refill_s for incident in self.incidents)

    @property
    def total_refill_energy_joules(self) -> float:
        return sum(incident.refill_energy_joules for incident in self.incidents)

    def correctness_loss(self, total_lookups: int) -> float:
        """Fraction of the run's lookups served degraded under re-hash."""
        if total_lookups <= 0:
            return 0.0
        return self.total_degraded_lookups / total_lookups

    @property
    def worst_time_to_recover_s(self) -> Optional[float]:
        """Largest measured time-to-recover; ``None`` if none was measurable."""
        measured = [
            incident.time_to_recover_s
            for incident in self.incidents
            if incident.time_to_recover_s is not None
        ]
        return max(measured) if measured else None

    @property
    def worst_sla_during(self) -> float:
        if not self.incidents:
            return 1.0
        return min(incident.sla_during for incident in self.incidents)


def _attainment(latencies: np.ndarray, sla_s: float) -> float:
    """SLA attainment of one window; vacuous 1.0 on an empty window."""
    if latencies.size == 0:
        return 1.0
    return float(np.count_nonzero(latencies <= sla_s)) / latencies.size


def _p99(latencies: np.ndarray) -> float:
    if latencies.size == 0:
        return 0.0
    return float(np.quantile(latencies, 0.99))


def _window_slice(
    times: np.ndarray, latencies: np.ndarray, start: float, end: float
) -> np.ndarray:
    lo = int(np.searchsorted(times, start, side="left"))
    hi = int(np.searchsorted(times, end, side="left"))
    return latencies[lo:hi]


def _time_to_recover(
    times: np.ndarray,
    latencies: np.ndarray,
    start_s: float,
    p99_before_s: float,
    window_s: float,
    horizon_s: float,
) -> Optional[float]:
    """First window end (relative to onset) whose p99 is back to baseline.

    Scans consecutive ``window_s`` buckets from the fault onset; a bucket
    with at least one completion whose p99 is within
    ``_RECOVERY_TOLERANCE`` of the pre-incident p99 marks recovery.  Empty
    buckets during a total outage do *not* count as recovered — nothing
    completing is the opposite of healthy.  Returns ``None`` when the run
    ends before any bucket qualifies.
    """
    if p99_before_s <= 0.0:
        return None
    target = p99_before_s * _RECOVERY_TOLERANCE
    edge = start_s
    while edge < horizon_s:
        window = _window_slice(times, latencies, edge, edge + window_s)
        if window.size and _p99(window) <= target:
            return edge + window_s - start_s
        edge += window_s
    return None


def build_incident_report(
    samples: Sequence[Tuple[float, float]],
    incidents: Sequence[Incident],
    schedule: str,
    sla_s: float,
    window_s: Optional[float],
    horizon_s: float,
) -> IncidentReport:
    """Fold completion samples over raw incident windows into the report.

    Args:
        samples: ``(completion_time_s, latency_s)`` pairs pooled over the
            fleet (any order).
        incidents: Raw incidents from the injector — SLA fields still at
            their defaults; this function fills them in.
        schedule: ``FaultSchedule.describe()`` of the run.
        sla_s: Latency budget for attainment.
        window_s: Attainment/recovery bucket width; ``None`` derives it
            from the longest incident (floored at 5 ms).
        horizon_s: End of the simulated run.
    """
    if sla_s <= 0:
        raise SimulationError(f"sla_s must be positive, got {sla_s}")
    if samples:
        pairs = np.asarray(sorted(samples), dtype=np.float64)
        times = np.ascontiguousarray(pairs[:, 0])
        latencies = np.ascontiguousarray(pairs[:, 1])
    else:
        times = np.empty(0, dtype=np.float64)
        latencies = np.empty(0, dtype=np.float64)
    if window_s is None:
        longest = max(
            (incident.duration_s for incident in incidents), default=0.0
        )
        window_s = max(longest, _MIN_WINDOW_S)
    measured: List[Incident] = []
    for incident in sorted(incidents, key=lambda record: record.start_s):
        before = _window_slice(
            times, latencies, incident.start_s - window_s, incident.start_s
        )
        during = _window_slice(times, latencies, incident.start_s, incident.end_s)
        after = _window_slice(
            times, latencies, incident.end_s, incident.end_s + window_s
        )
        p99_before = _p99(before)
        measured.append(
            replace(
                incident,
                sla_before=_attainment(before, sla_s),
                sla_during=_attainment(during, sla_s),
                sla_after=_attainment(after, sla_s),
                p99_before_s=p99_before,
                time_to_recover_s=_time_to_recover(
                    times,
                    latencies,
                    incident.start_s,
                    p99_before,
                    window_s,
                    horizon_s,
                ),
            )
        )
    return IncidentReport(
        schedule=schedule,
        sla_s=sla_s,
        window_s=window_s,
        horizon_s=horizon_s,
        incidents=tuple(measured),
    )
