"""Deterministic fault injection and resilience reporting.

`repro.chaos` injects declarative, seed-deterministic fault schedules
(replica crashes, shard loss, link degradation, brownouts) into serving
simulations as ``chaos:`` control events, and measures what each incident
cost: SLA attainment before/during/after, time-to-recover to the
pre-incident p99, shed/re-dispatched requests, and the replica-second and
energy bill of the recovery.
"""

from repro.chaos.faults import (
    Brownout,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    PoissonFaults,
    ReplicaCrash,
    ShardLoss,
    parse_fault_schedule,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.report import Incident, IncidentReport, build_incident_report

__all__ = [
    "Brownout",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "Incident",
    "IncidentReport",
    "LinkDegradation",
    "PoissonFaults",
    "ReplicaCrash",
    "ShardLoss",
    "build_incident_report",
    "parse_fault_schedule",
]
