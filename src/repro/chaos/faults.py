"""Declarative, seed-deterministic fault schedules for the serving fleet.

A :class:`FaultSchedule` is a composable list of fault events — timed
:class:`FaultSpec` instances and rate-driven :class:`PoissonFaults`
generators — that a :class:`~repro.chaos.injector.FaultInjector` turns
into ``chaos:`` control events on the shared
:class:`~repro.sim.engine.Simulator`.  Everything is deterministic: timed
faults carry explicit times, Poisson generators carry their own seed, and
:meth:`FaultSchedule.materialize` always produces the same concrete event
list, so equal seeds yield byte-identical incident reports.

Fault kinds (mirroring the failure modes of a production recsys fleet):

* :class:`ReplicaCrash` — a replica dies instantly; its in-flight requests
  are re-dispatched through the live dispatcher or shed, and an optional
  restart recommissions the slot after a delay, paying a re-warm priced
  from :attr:`~repro.backends.base.BackendCapabilities.provision_warmup_s`.
* :class:`ShardLoss` — an embedding shard of a
  :class:`~repro.serving.sharded.ShardedReplicaGroup` becomes unavailable;
  failover either *promotes* a surviving buddy shard (correct, but its
  gathers and transfers concentrate there) or *re-hashes* lookups across
  survivors (cheap, but every re-hashed lookup reads the wrong shard's
  rows and is counted as a correctness loss).  Restoring a shard brings
  its hot-row cache back cold.
* :class:`LinkDegradation` — the cross-shard ``ChipletLink``/PCIe fabric
  degrades for a window (bandwidth divided, latency multiplied).
* :class:`Brownout` — one replica's device slows down for a window
  (thermal throttling, noisy neighbor): executed-segment latency is
  inflated by a factor while energy stays as priced.

The empty schedule is the identity: serving paths check
:attr:`FaultSchedule.empty` before creating any chaos state, so a run with
an empty (or absent) schedule is bit-identical to today's fault-free path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: In-flight handling choices of a crashed replica.
_INFLIGHT_MODES = ("redispatch", "shed")
#: Failover choices of a lost shard.
_FAILOVER_MODES = ("promote", "rehash")


@dataclass(frozen=True)
class FaultSpec:
    """Base class: one timed fault event at ``at_s`` simulated seconds."""

    at_s: float

    #: Spec-kind tag used by the injector and the text parser.
    kind = "fault"

    def __post_init__(self):
        if self.at_s < 0:
            raise ConfigurationError(
                f"fault time must be non-negative, got {self.at_s}"
            )

    def describe(self) -> str:
        """Compact text form (round-trips through the spec parser)."""
        parts = [f"at={self.at_s:g}"]
        for spec_field in fields(self):
            if spec_field.name == "at_s":
                continue
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            parts.append(f"{_FIELD_ALIASES.get(spec_field.name, spec_field.name)}={value:g}"
                         if isinstance(value, (int, float)) and not isinstance(value, bool)
                         else f"{_FIELD_ALIASES.get(spec_field.name, spec_field.name)}={value}")
        return f"{self.kind}:{','.join(parts)}"


#: describe()/parser field spellings (keeps CLI specs short).
_FIELD_ALIASES = {
    "restart_after_s": "restart",
    "warmup_s": "warmup",
    "on_inflight": "inflight",
    "restore_after_s": "restore",
    "duration_s": "for",
    "bandwidth_factor": "bw",
    "latency_factor": "lat",
}


@dataclass(frozen=True)
class ReplicaCrash(FaultSpec):
    """Kill one replica; optionally restart it after a delay.

    Attributes:
        replica: Pool index to crash.  ``None`` crashes the *highest-index
            currently active* replica (deterministic; mirrors the
            autoscaler's scale-down order), which is what rate-driven
            schedules use.
        restart_after_s: Delay before the slot is recommissioned; ``None``
            leaves it down for the rest of the run.
        warmup_s: Re-warm paid when the restart activates.  ``None`` takes
            the larger of the fleet's configured ``warmup_s`` and the
            backend's ``provision_warmup_s`` capability hint.
        on_inflight: ``"redispatch"`` re-routes the crashed replica's
            in-flight requests through the live dispatcher;
            ``"shed"`` drops them (counted, conservation becomes
            ``arrivals == completed + shed``).
    """

    replica: Optional[int] = None
    restart_after_s: Optional[float] = None
    warmup_s: Optional[float] = None
    on_inflight: str = "redispatch"

    kind = "crash"

    def __post_init__(self):
        super().__post_init__()
        if self.replica is not None and self.replica < 0:
            raise ConfigurationError(
                f"crash replica index must be non-negative, got {self.replica}"
            )
        if self.restart_after_s is not None and self.restart_after_s < 0:
            raise ConfigurationError(
                f"restart_after_s must be non-negative, got {self.restart_after_s}"
            )
        if self.warmup_s is not None and self.warmup_s < 0:
            raise ConfigurationError(
                f"warmup_s must be non-negative, got {self.warmup_s}"
            )
        if self.on_inflight not in _INFLIGHT_MODES:
            raise ConfigurationError(
                f"on_inflight must be one of {_INFLIGHT_MODES}, got "
                f"{self.on_inflight!r}"
            )


@dataclass(frozen=True)
class ShardLoss(FaultSpec):
    """Lose one embedding shard of a sharded group; optionally restore it.

    Attributes:
        shard: Shard index to lose.
        restore_after_s: Delay before the shard returns (with a *cold*
            hot-row cache); ``None`` keeps it lost for the rest of the run.
        failover: ``"promote"`` serves the lost shard's lookups from the
            next surviving shard (its replica shard — correct but
            concentrating); ``"rehash"`` spreads them over all survivors
            by row hash, each re-hashed lookup counted as a correctness
            loss (``degraded_lookups``).
    """

    shard: int = 0
    restore_after_s: Optional[float] = None
    failover: str = "promote"

    kind = "shard-loss"

    def __post_init__(self):
        super().__post_init__()
        if self.shard < 0:
            raise ConfigurationError(
                f"shard index must be non-negative, got {self.shard}"
            )
        if self.restore_after_s is not None and self.restore_after_s < 0:
            raise ConfigurationError(
                f"restore_after_s must be non-negative, got {self.restore_after_s}"
            )
        if self.failover not in _FAILOVER_MODES:
            raise ConfigurationError(
                f"failover must be one of {_FAILOVER_MODES}, got {self.failover!r}"
            )


@dataclass(frozen=True)
class LinkDegradation(FaultSpec):
    """Degrade the cross-shard link for a window.

    Cross-shard partial-sum transfers are slowed by
    ``latency_factor / bandwidth_factor`` while the window is open — a
    halved-bandwidth, doubled-latency fabric makes every transfer 4x
    slower.  Only meaningful on sharded groups (the only consumer of the
    :class:`~repro.core.link.ChipletLink` in the serving stack).
    """

    duration_s: float = 0.0
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    kind = "link"

    def __post_init__(self):
        super().__post_init__()
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"link degradation duration_s must be positive, got {self.duration_s}"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigurationError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.latency_factor < 1.0:
            raise ConfigurationError(
                f"latency_factor must be >= 1, got {self.latency_factor}"
            )
        if self.bandwidth_factor == 1.0 and self.latency_factor == 1.0:
            raise ConfigurationError(
                "a link degradation must degrade something: set "
                "bandwidth_factor < 1 and/or latency_factor > 1"
            )

    @property
    def slowdown(self) -> float:
        """Multiplier applied to cross-shard transfer time."""
        return self.latency_factor / self.bandwidth_factor


@dataclass(frozen=True)
class Brownout(FaultSpec):
    """Inflate one replica's execution latency for a window.

    Attributes:
        duration_s: Window length.
        replica: Pool index to brown out; ``None`` picks the highest-index
            currently active replica at fault time (sharded groups have a
            single logical replica, so ``None``/0 are the only choices
            there).
        latency_factor: Executed-segment duration multiplier (> 1).
    """

    duration_s: float = 0.0
    replica: Optional[int] = None
    latency_factor: float = 2.0

    kind = "brownout"

    def __post_init__(self):
        super().__post_init__()
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"brownout duration_s must be positive, got {self.duration_s}"
            )
        if self.replica is not None and self.replica < 0:
            raise ConfigurationError(
                f"brownout replica index must be non-negative, got {self.replica}"
            )
        if self.latency_factor <= 1.0:
            raise ConfigurationError(
                f"brownout latency_factor must exceed 1, got {self.latency_factor}"
            )


@dataclass(frozen=True)
class PoissonFaults:
    """Rate-driven faults: a seeded Poisson process stamping a template.

    ``materialize()`` draws exponential gaps from a generator seeded with
    ``seed`` (independent of every workload seed) and emits one copy of
    ``template`` per arrival inside ``[start_s, end_s)``.  The template's
    own ``at_s`` is ignored.  Determinism: the same ``(template, rate_hz,
    start_s, end_s, seed)`` always materializes the same event times.
    """

    template: FaultSpec
    rate_hz: float
    end_s: float
    start_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.template, FaultSpec):
            raise ConfigurationError(
                f"template must be a FaultSpec, got {self.template!r}"
            )
        if self.rate_hz <= 0:
            raise ConfigurationError(
                f"rate_hz must be positive, got {self.rate_hz}"
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be non-negative, got {self.start_s}"
            )
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"end_s ({self.end_s}) must exceed start_s ({self.start_s})"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")

    def materialize(self) -> Tuple[FaultSpec, ...]:
        rng = np.random.default_rng(self.seed)
        events: List[FaultSpec] = []
        clock = self.start_s
        scale = 1.0 / self.rate_hz
        while True:
            clock += float(rng.exponential(scale))
            if clock >= self.end_s:
                break
            events.append(replace(self.template, at_s=clock))
        return tuple(events)

    def describe(self) -> str:
        template = self.template.describe()
        return (
            f"poisson(rate={self.rate_hz:g},start={self.start_s:g},"
            f"end={self.end_s:g},seed={self.seed})[{template}]"
        )


class FaultSchedule:
    """An ordered, reusable collection of fault events.

    Args:
        faults: :class:`FaultSpec` and/or :class:`PoissonFaults` entries.
        sla_s: Latency budget the incident report measures attainment
            against.
        window_s: Bucket width for before/during/after attainment and the
            time-to-recover scan; ``None`` derives it per run (the longest
            incident duration, floored at 5 ms).

    The schedule itself is immutable state + configuration; serving paths
    materialize it fresh for every stream, so one schedule can drive many
    grid points deterministically.
    """

    def __init__(
        self,
        faults: Sequence[Union[FaultSpec, PoissonFaults]] = (),
        sla_s: float = 10e-3,
        window_s: Optional[float] = None,
    ):
        entries: List[Union[FaultSpec, PoissonFaults]] = []
        for entry in faults:
            if not isinstance(entry, (FaultSpec, PoissonFaults)):
                raise ConfigurationError(
                    f"schedule entries must be FaultSpec or PoissonFaults, "
                    f"got {entry!r}"
                )
            entries.append(entry)
        if sla_s <= 0:
            raise ConfigurationError(f"sla_s must be positive, got {sla_s}")
        if window_s is not None and window_s <= 0:
            raise ConfigurationError(
                f"window_s must be positive, got {window_s}"
            )
        self.faults: Tuple[Union[FaultSpec, PoissonFaults], ...] = tuple(entries)
        self.sla_s = sla_s
        self.window_s = window_s

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing (the identity schedule)."""
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def materialize(self) -> Tuple[FaultSpec, ...]:
        """Concrete timed events, sorted by time (stable on ties)."""
        events: List[FaultSpec] = []
        for entry in self.faults:
            if isinstance(entry, PoissonFaults):
                events.extend(entry.materialize())
            else:
                events.append(entry)
        events.sort(key=lambda event: event.at_s)
        return tuple(events)

    def describe(self) -> str:
        if self.empty:
            return "off"
        return ";".join(entry.describe() for entry in self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({self.describe()!r}, sla_s={self.sla_s})"


# ----------------------------------------------------------------------
# Compact text specs (CLI)
# ----------------------------------------------------------------------
def _parse_kv_items(body: str, kind: str) -> dict:
    values: dict = {}
    if not body:
        return values
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigurationError(
                f"fault spec parameters must be key=value, got {item!r} in {kind!r}"
            )
        key, _, raw = item.partition("=")
        values[key.strip()] = raw.strip()
    return values


def _number(values: dict, key: str, kind: str) -> Optional[float]:
    raw = values.pop(key, None)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{kind} parameter {key!r} is not a number: {raw!r}"
        )


def _reject_unknown(values: dict, kind: str, known: Sequence[str]) -> None:
    if values:
        raise ConfigurationError(
            f"unknown {kind} parameter(s) {sorted(values)}; known: "
            f"{', '.join(known)}"
        )


def _parse_one_fault(kind: str, values: dict) -> FaultSpec:
    if kind in ("crash", "replica-crash"):
        at_s = _number(values, "at", kind)
        if at_s is None:
            raise ConfigurationError("crash spec needs at=<seconds>")
        replica = _number(values, "replica", kind)
        restart = _number(values, "restart", kind)
        warmup = _number(values, "warmup", kind)
        inflight = values.pop("inflight", "redispatch")
        _reject_unknown(values, kind, ("at", "replica", "restart", "warmup", "inflight"))
        return ReplicaCrash(
            at_s=at_s,
            replica=int(replica) if replica is not None else None,
            restart_after_s=restart,
            warmup_s=warmup,
            on_inflight=inflight,
        )
    if kind in ("shard-loss", "shard"):
        at_s = _number(values, "at", kind)
        if at_s is None:
            raise ConfigurationError("shard-loss spec needs at=<seconds>")
        shard = _number(values, "shard", kind)
        restore = _number(values, "restore", kind)
        failover = values.pop("failover", "promote")
        _reject_unknown(values, kind, ("at", "shard", "restore", "failover"))
        return ShardLoss(
            at_s=at_s,
            shard=int(shard) if shard is not None else 0,
            restore_after_s=restore,
            failover=failover,
        )
    if kind in ("link", "link-degradation"):
        at_s = _number(values, "at", kind)
        duration = _number(values, "for", kind)
        if at_s is None or duration is None:
            raise ConfigurationError("link spec needs at=<seconds>,for=<seconds>")
        bandwidth = _number(values, "bw", kind)
        latency = _number(values, "lat", kind)
        _reject_unknown(values, kind, ("at", "for", "bw", "lat"))
        return LinkDegradation(
            at_s=at_s,
            duration_s=duration,
            bandwidth_factor=bandwidth if bandwidth is not None else 1.0,
            latency_factor=latency if latency is not None else 1.0,
        )
    if kind == "brownout":
        at_s = _number(values, "at", kind)
        duration = _number(values, "for", kind)
        if at_s is None or duration is None:
            raise ConfigurationError("brownout spec needs at=<seconds>,for=<seconds>")
        replica = _number(values, "replica", kind)
        slow = _number(values, "slow", kind)
        if slow is None:
            # ``lat=`` is the describe() spelling (shared latency_factor
            # alias); accept it so specs round-trip.
            slow = _number(values, "lat", kind)
        _reject_unknown(values, kind, ("at", "for", "replica", "slow"))
        return Brownout(
            at_s=at_s,
            duration_s=duration,
            replica=int(replica) if replica is not None else None,
            latency_factor=slow if slow is not None else 2.0,
        )
    raise ConfigurationError(
        f"unknown fault kind {kind!r}; known kinds: crash, shard-loss, link, "
        "brownout, poisson, report"
    )


def parse_fault_schedule(spec: Optional[str]) -> Optional[FaultSchedule]:
    """Build a :class:`FaultSchedule` from a compact ``;``-separated spec.

    Supported segments::

        crash:at=0.05,replica=1,restart=0.02,warmup=0.01,inflight=redispatch
        shard-loss:at=0.05,shard=0,restore=0.03,failover=rehash
        link:at=0.05,for=0.02,bw=0.5,lat=2
        brownout:at=0.05,for=0.02,replica=0,slow=3
        poisson:kind=crash,rate=20,until=0.5[,start=0,seed=0,restart=...]
        report:sla=0.01,window=0.005       (incident-report knobs)

    ``None``, ``""``, ``"off"`` and ``"none"`` mean no schedule.
    """
    if spec is None:
        return None
    text = str(spec).strip()
    if not text or text.lower() in ("off", "none"):
        return None
    faults: List[Union[FaultSpec, PoissonFaults]] = []
    sla_s = 10e-3
    window_s: Optional[float] = None
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        kind, _, body = segment.partition(":")
        kind = kind.strip().lower()
        values = _parse_kv_items(body.strip(), kind)
        if kind == "report":
            sla = _number(values, "sla", kind)
            window = _number(values, "window", kind)
            _reject_unknown(values, kind, ("sla", "window"))
            if sla is not None:
                sla_s = sla
            if window is not None:
                window_s = window
            continue
        if kind == "poisson":
            inner_kind = values.pop("kind", None)
            if inner_kind is None:
                raise ConfigurationError(
                    "poisson spec needs kind=<crash|shard-loss|link|brownout>"
                )
            rate = _number(values, "rate", kind)
            until = _number(values, "until", kind)
            if rate is None or until is None:
                raise ConfigurationError(
                    "poisson spec needs rate=<hz> and until=<seconds>"
                )
            start = _number(values, "start", kind) or 0.0
            seed = _number(values, "seed", kind)
            # Remaining keys parameterize the template (its time is stamped
            # per materialized event).
            values["at"] = "0"
            template = _parse_one_fault(inner_kind.strip().lower(), values)
            faults.append(
                PoissonFaults(
                    template=template,
                    rate_hz=rate,
                    end_s=until,
                    start_s=start,
                    seed=int(seed) if seed is not None else 0,
                )
            )
            continue
        faults.append(_parse_one_fault(kind, values))
    if not faults:
        return None
    return FaultSchedule(faults, sla_s=sla_s, window_s=window_s)
