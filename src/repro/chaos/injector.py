"""The fault injector: turns a schedule into ``chaos:`` simulator events.

One :class:`FaultInjector` is built per serving stream, armed before the
stream starts, and finalized after it drains.  It drives exactly one host:

* **Fleet mode** (``controller=``) — an autoscale controller
  (:class:`repro.serving.autoscale._AutoscaleController`).  Handles
  :class:`~repro.chaos.faults.ReplicaCrash` (via the controller's
  ``crash_replica``/``restore_replica`` hooks, composing with drain and
  warm-up lifecycle states) and :class:`~repro.chaos.faults.Brownout`.
* **Sharded mode** (``sharded=``) — a
  :class:`~repro.serving.sharded.ShardedReplicaServer`.  Handles
  :class:`~repro.chaos.faults.ShardLoss` (promote/re-hash failover, cold
  hot-row cache on restore),
  :class:`~repro.chaos.faults.LinkDegradation`, and brownouts on the
  group's single logical replica.

The injector also owns the run's shed accounting: requests dropped when a
crashed replica's in-flight work is shed, and arrivals during a total
outage (every replica down), both of which
:func:`~repro.serving.replica.drive_stream` checks via the relaxed
conservation identity ``arrivals == completed + shed``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.faults import (
    Brownout,
    FaultSchedule,
    FaultSpec,
    LinkDegradation,
    ReplicaCrash,
    ShardLoss,
)
from repro.chaos.report import Incident, IncidentReport, build_incident_report
from repro.errors import ConfigurationError


class _ShedSink:
    """Stand-in replica for arrivals during a total outage.

    When every replica is down, the controller's router returns this sink
    instead of raising; each submitted request is counted as shed (never
    completed), which the relaxed conservation identity accounts for.
    """

    def __init__(self, injector: "FaultInjector"):
        self._injector = injector

    def submit(self, request) -> None:
        self._injector._note_outage_shed()


class FaultInjector:
    """Schedules one materialized fault schedule onto a running simulation."""

    def __init__(
        self,
        sim,
        schedule: FaultSchedule,
        controller=None,
        sharded=None,
        cache_config=None,
        model=None,
    ):
        if (controller is None) == (sharded is None):
            raise ConfigurationError(
                "FaultInjector drives exactly one host: pass controller= "
                "(fleet mode) or sharded= (sharded-group mode)"
            )
        self.sim = sim
        self.schedule = schedule
        self.controller = controller
        self.sharded = sharded
        self._cache_config = cache_config
        self._model = model
        self.shed = 0
        #: Raw incident records, in injection order.  Each holds the
        #: measured facts; SLA fields are filled in at finalize time.
        self._records: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def shed_count(self) -> int:
        """Callable handed to :func:`drive_stream` as its ``lost`` hook."""
        return self.shed

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Validate and schedule every materialized fault event."""
        events = self.schedule.materialize()
        for spec in events:
            self._validate(spec)
        if self.controller is not None:
            self.controller.install_shed_sink(_ShedSink(self))
        for spec in events:
            handler = self._handler_for(spec)
            self.sim.schedule_at(
                spec.at_s,
                lambda s=spec, h=handler: h(s),
                label=f"chaos:{spec.kind}",
            )

    def _validate(self, spec: FaultSpec) -> None:
        if self.controller is not None:
            pool = len(self.controller.replicas)
            if isinstance(spec, (ShardLoss, LinkDegradation)):
                raise ConfigurationError(
                    f"{spec.kind} faults need a sharded group; this fleet "
                    "has no shards (use ShardedReplicaGroup / --shards)"
                )
            if isinstance(spec, (ReplicaCrash, Brownout)):
                if spec.replica is not None and spec.replica >= pool:
                    raise ConfigurationError(
                        f"{spec.kind} targets replica {spec.replica} but the "
                        f"pool holds {pool} slots"
                    )
            return
        num_shards = self.sharded.plan.num_shards
        if isinstance(spec, ReplicaCrash):
            raise ConfigurationError(
                "replica crashes target fleet replicas; a sharded group is "
                "one logical replica — use shard-loss faults instead"
            )
        if isinstance(spec, ShardLoss):
            if num_shards == 1:
                raise ConfigurationError(
                    "shard-loss needs a multi-shard group: losing the only "
                    "shard leaves nothing to fail over to"
                )
            if spec.shard >= num_shards:
                raise ConfigurationError(
                    f"shard-loss targets shard {spec.shard} but the group "
                    f"has {num_shards} shards"
                )
        if isinstance(spec, LinkDegradation) and num_shards == 1:
            raise ConfigurationError(
                "link degradation needs a multi-shard group (a single shard "
                "ships no cross-shard traffic)"
            )
        if isinstance(spec, Brownout) and spec.replica not in (None, 0):
            raise ConfigurationError(
                f"a sharded group is one logical replica; brownout replica "
                f"must be 0 or omitted, got {spec.replica}"
            )

    def _handler_for(self, spec: FaultSpec):
        if isinstance(spec, ReplicaCrash):
            return self._on_crash
        if isinstance(spec, Brownout):
            return (
                self._on_fleet_brownout
                if self.controller is not None
                else self._on_sharded_brownout
            )
        if isinstance(spec, ShardLoss):
            return self._on_shard_loss
        if isinstance(spec, LinkDegradation):
            return self._on_link_degradation
        raise ConfigurationError(f"unhandled fault spec {spec!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Incident record bookkeeping
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple[float, float]:
        """(energy_joules, replica_seconds) billed so far."""
        now = self.sim.now
        if self.controller is not None:
            energy = sum(
                replica.energy_joules for replica in self.controller.replicas
            )
            return energy, self.controller.commissioned_seconds(now)
        return self.sharded.energy_joules, self.sharded.plan.num_shards * now

    def _open(self, kind: str, target: str, note: str = "") -> Dict[str, Any]:
        energy, replica_seconds = self._snapshot()
        record: Dict[str, Any] = {
            "kind": kind,
            "target": target,
            "start_s": self.sim.now,
            "end_s": None,
            "cleared": False,
            "shed": 0,
            "redispatched": 0,
            "degraded0": self._degraded_lookups(),
            "degraded1": None,
            "energy0": energy,
            "rs0": replica_seconds,
            "energy1": None,
            "rs1": None,
            "refill_rows": 0,
            "refill_s": 0.0,
            "refill_joules": 0.0,
            "note": note,
        }
        self._records.append(record)
        return record

    def _close(self, record: Dict[str, Any], cleared: bool = True) -> None:
        if record["end_s"] is not None:
            return
        energy, replica_seconds = self._snapshot()
        record["end_s"] = self.sim.now
        record["cleared"] = cleared
        record["energy1"] = energy
        record["rs1"] = replica_seconds
        record["degraded1"] = self._degraded_lookups()

    def _degraded_lookups(self) -> int:
        if self.sharded is not None:
            return self.sharded.degraded_lookups
        return 0

    def _note_outage_shed(self) -> None:
        self.shed += 1
        for record in reversed(self._records):
            if record["end_s"] is None:
                record["shed"] += 1
                return
        # An outage with no open incident cannot happen through this
        # injector's own faults, but stay conservative: count it globally.

    # ------------------------------------------------------------------
    # Fleet-mode handlers
    # ------------------------------------------------------------------
    def _pick_replica(self, preferred: Optional[int]) -> Optional[int]:
        if preferred is not None:
            return preferred
        return self.controller.highest_active_index()

    def _on_crash(self, spec: ReplicaCrash) -> None:
        controller = self.controller
        index = self._pick_replica(spec.replica)
        if index is None:
            record = self._open("crash", "replica:-", note="no-op: no active replica")
            self._close(record)
            return
        state, redispatched, shed = controller.crash_replica(index, spec.on_inflight)
        if state is None:
            record = self._open(
                "crash", f"replica:{index}", note="no-op: replica already stopped"
            )
            self._close(record)
            return
        note = f"was {state}" if state != "active" else ""
        record = self._open("crash", f"replica:{index}", note=note)
        record["shed"] += shed
        record["redispatched"] += redispatched
        self.shed += shed
        if spec.restart_after_s is None:
            return
        self.sim.schedule_at(
            self.sim.now + spec.restart_after_s,
            lambda: self._on_restart(spec, index, record),
            label="chaos:restart",
        )

    def _restart_warmup_s(self, spec: ReplicaCrash) -> float:
        if spec.warmup_s is not None:
            return spec.warmup_s
        cluster = self.controller.cluster
        capabilities = getattr(cluster.runner, "capabilities", None)
        hint = getattr(capabilities, "provision_warmup_s", 0.0)
        return max(cluster.warmup_s, hint)

    def _on_restart(
        self, spec: ReplicaCrash, index: int, record: Dict[str, Any]
    ) -> None:
        warmup_s = self._restart_warmup_s(spec)
        if not self.controller.restore_replica(index, warmup_s):
            # The autoscaler recommissioned the slot before the restart
            # fired; service was already restored through that path.
            record["note"] = (record["note"] + "; " if record["note"] else "") + (
                "slot reclaimed by autoscaler before restart"
            )
            self._close(record)
            return
        self.sim.schedule_at(
            self.sim.now + warmup_s,
            lambda: self._close(record),
            label="chaos:restored",
        )

    def _on_fleet_brownout(self, spec: Brownout) -> None:
        index = self._pick_replica(spec.replica)
        if index is None:
            record = self._open(
                "brownout", "replica:-", note="no-op: no active replica"
            )
            self._close(record)
            return
        replica = self.controller.replicas[index]
        record = self._open("brownout", f"replica:{index}")
        replica.latency_multiplier = spec.latency_factor
        self.sim.schedule_at(
            self.sim.now + spec.duration_s,
            lambda: self._end_brownout(replica, record),
            label="chaos:brownout-end",
        )

    def _end_brownout(self, replica, record: Dict[str, Any]) -> None:
        replica.latency_multiplier = 1.0
        self._close(record)

    # ------------------------------------------------------------------
    # Sharded-mode handlers
    # ------------------------------------------------------------------
    def _on_shard_loss(self, spec: ShardLoss) -> None:
        server = self.sharded
        if not server.lose_shard(spec.shard, spec.failover):
            record = self._open(
                "shard-loss",
                f"shard:{spec.shard}",
                note="no-op: shard already lost",
            )
            self._close(record)
            return
        record = self._open(
            "shard-loss", f"shard:{spec.shard}", note=f"failover={spec.failover}"
        )
        if spec.restore_after_s is None:
            return
        self.sim.schedule_at(
            self.sim.now + spec.restore_after_s,
            lambda: self._on_shard_restore(spec.shard, record),
            label="chaos:shard-restore",
        )

    def _on_shard_restore(self, shard: int, record: Dict[str, Any]) -> None:
        fresh_cache = None
        if self._cache_config is not None:
            # The restored shard comes back with a *cold* hot-row cache:
            # same configuration and seed, no resident rows.  Everything
            # the outgoing cache held resident must be re-gathered before
            # the shard is warm again — price that refill traffic through
            # the backend's EMB cost model instead of handing back a
            # silently cold cache.
            fresh_cache = self._cache_config.build(self._model)
            if self.sharded.caches is not None:
                resident = len(self.sharded.caches[shard])
                refill_s, refill_joules = self.sharded.price_refill(resident)
                record["refill_rows"] = resident
                record["refill_s"] = refill_s
                record["refill_joules"] = refill_joules
        self.sharded.restore_shard(shard, fresh_cache)
        self._close(record)

    def _on_link_degradation(self, spec: LinkDegradation) -> None:
        server = self.sharded
        record = self._open(
            "link", "link", note=f"slowdown={spec.slowdown:g}x"
        )
        server.set_link_slowdown(spec.slowdown)
        self.sim.schedule_at(
            self.sim.now + spec.duration_s,
            lambda: self._end_link(record),
            label="chaos:link-end",
        )

    def _end_link(self, record: Dict[str, Any]) -> None:
        self.sharded.set_link_slowdown(1.0)
        self._close(record)

    def _on_sharded_brownout(self, spec: Brownout) -> None:
        server = self.sharded
        record = self._open("brownout", "replica:0")
        server.latency_multiplier = spec.latency_factor
        self.sim.schedule_at(
            self.sim.now + spec.duration_s,
            lambda: self._end_brownout(server, record),
            label="chaos:brownout-end",
        )

    # ------------------------------------------------------------------
    def finalize(self, per_replica_reports, horizon_s: float) -> IncidentReport:
        """Close open incidents at the horizon and measure the SLA view."""
        samples: List[Tuple[float, float]] = []
        for report in per_replica_reports:
            samples.extend(report.completion_samples())
        incidents: List[Incident] = []
        for record in self._records:
            if record["end_s"] is None:
                self._close(record, cleared=False)
            degraded0 = record["degraded0"]
            degraded1 = record["degraded1"]
            incidents.append(
                Incident(
                    kind=record["kind"],
                    target=record["target"],
                    start_s=record["start_s"],
                    end_s=record["end_s"],
                    cleared=record["cleared"],
                    shed_requests=record["shed"],
                    redispatched_requests=record["redispatched"],
                    degraded_lookups=(degraded1 or 0) - degraded0,
                    recovery_replica_seconds=record["rs1"] - record["rs0"],
                    recovery_energy_joules=record["energy1"] - record["energy0"],
                    refill_rows=record["refill_rows"],
                    refill_s=record["refill_s"],
                    refill_energy_joules=record["refill_joules"],
                    note=record["note"],
                )
            )
        return build_incident_report(
            samples,
            incidents,
            schedule=self.schedule.describe(),
            sla_s=self.schedule.sla_s,
            window_s=self.schedule.window_s,
            horizon_s=horizon_s,
        )
