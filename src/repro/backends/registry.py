"""String-keyed backend registry.

The registry is the single place that maps device names to runner
factories.  Everything above the device models — :class:`repro.experiment.
Experiment`, the figure functions, serving clusters, the CLI — resolves
backends through it, so adding a new device is one :func:`register_backend`
call instead of a cross-cutting edit.

Names are case-insensitive and each registration may carry aliases; the
paper's design-point labels (``"CPU-only"``, ``"CPU-GPU"``, ``"Centaur"``)
are registered as aliases of ``"cpu"`` / ``"cpu-gpu"`` / ``"centaur"`` so
legacy call sites keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.backends.base import Backend, BackendCapabilities
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError

#: A factory builds a backend instance for one hardware platform.
BackendFactory = Callable[[SystemConfig], Backend]


@dataclass(frozen=True)
class BackendRegistration:
    """One registry entry: factory plus the metadata the tooling renders."""

    name: str
    factory: BackendFactory
    design_point: str
    description: str = ""
    aliases: Tuple[str, ...] = ()
    capabilities: BackendCapabilities = field(default_factory=BackendCapabilities)


_REGISTRY: Dict[str, BackendRegistration] = {}
_ALIASES: Dict[str, str] = {}
_BUILTINS_LOADED = False


def _normalize(name: str) -> str:
    return name.strip().lower()


def _ensure_builtins() -> None:
    """Import the built-in registrations lazily.

    The runner modules import :mod:`repro.backends.base` for their
    capability flags, so eager registration at package-import time would be
    circular; the first registry lookup triggers it instead.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.backends.builtin  # noqa: F401  (registers on import)


def register_backend(
    name: str,
    factory: BackendFactory,
    *,
    design_point: str = "",
    description: str = "",
    aliases: Tuple[str, ...] = (),
    capabilities: BackendCapabilities = BackendCapabilities(),
    overwrite: bool = False,
) -> BackendRegistration:
    """Register a backend factory under a canonical name.

    Args:
        name: Canonical registry key (stored lowercase).
        factory: Callable building a backend for a :class:`SystemConfig`.
        design_point: Paper-facing label; defaults to ``name``.
        description: One-line summary shown by ``repro list-backends``.
        aliases: Additional lookup keys (also case-insensitive).
        capabilities: Feature flags of the backend.
        overwrite: Allow replacing an existing registration.

    Returns:
        The stored :class:`BackendRegistration`.

    Raises:
        ConfigurationError: On an empty name or a duplicate registration
            without ``overwrite``.
    """
    # Load the built-ins first so a custom registration can never claim one
    # of their names/aliases just by running before the first lookup.
    # Reentrant calls from builtin.py skip this (_BUILTINS_LOADED is already
    # set while it imports).
    _ensure_builtins()
    key = _normalize(name)
    if not key:
        raise ConfigurationError("backend name must be non-empty")
    if not overwrite and (key in _REGISTRY or key in _ALIASES):
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass overwrite=True to replace it"
        )
    registration = BackendRegistration(
        name=key,
        factory=factory,
        design_point=design_point or name,
        description=description,
        aliases=tuple(_normalize(alias) for alias in aliases),
        capabilities=capabilities,
    )
    # Validate every alias before mutating any registry state, so a failed
    # registration cannot leave a half-registered backend behind.  overwrite
    # only permits replacing *this* name's registration — an alias owned by
    # a different backend can never be stolen.
    for alias in registration.aliases:
        if alias in _REGISTRY or (alias in _ALIASES and _ALIASES[alias] != key):
            raise ConfigurationError(
                f"alias {alias!r} collides with a registered backend"
            )
    _REGISTRY[key] = registration
    for alias in registration.aliases:
        _ALIASES[alias] = key
    return registration


def unregister_backend(name: str) -> None:
    """Remove a registration and its aliases (primarily for tests)."""
    key = canonical_backend_name(name)
    registration = _REGISTRY.pop(key)
    for alias in registration.aliases:
        if _ALIASES.get(alias) == key:
            del _ALIASES[alias]


def canonical_backend_name(name: str) -> str:
    """Resolve a name or alias to the canonical registry key.

    Raises:
        ConfigurationError: For names no registration claims.
    """
    _ensure_builtins()
    key = _normalize(name)
    if key in _REGISTRY:
        return key
    if key in _ALIASES:
        return _ALIASES[key]
    raise ConfigurationError(
        f"unknown backend {name!r}; available: {', '.join(available_backends())}"
    )


def available_backends() -> Tuple[str, ...]:
    """Canonical names of every registered backend, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def backend_registration(name: str) -> BackendRegistration:
    """Full registration record for a name or alias."""
    return _REGISTRY[canonical_backend_name(name)]


def get_backend(name: str, system: SystemConfig) -> Backend:
    """Build a backend instance for one hardware platform.

    This is the canonical way to obtain a runner; the concrete constructors
    (``CPUOnlyRunner(system)`` and friends) are kept as deprecated shims for
    existing code.
    """
    return backend_registration(name).factory(system)


def resolve_backend(spec, system: SystemConfig) -> Backend:
    """Accept either a registry name or an already-built backend instance."""
    if isinstance(spec, str):
        return get_backend(spec, system)
    if hasattr(spec, "run") and hasattr(spec, "design_point"):
        return spec
    raise ConfigurationError(
        f"cannot resolve backend from {spec!r}; pass a registry name or a runner"
    )
