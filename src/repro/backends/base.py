"""The :class:`Backend` protocol and capability flags.

A *backend* is anything that can price one inference batch on one device:
the CPU-only baseline, the CPU-GPU design point, Centaur, and any future
device variant.  The protocol is the contract between the device models and
every layer above them (experiments, figures, serving clusters, the CLI):
code written against it never needs to know which concrete runner class is
behind a registry name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple, runtime_checkable

from repro.config.models import DLRMConfig
from repro.results import InferenceResult


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do beyond pricing a batch.

    Attributes:
        reports_embedding_throughput: The backend attaches an embedding
            traffic profile, so Figure 7/13-style effective gather
            throughput can be read off its results.
        reports_mlp_traffic: The backend attaches an MLP cache/traffic
            profile (needed by the Figure 6 MPKI comparison).
        uses_accelerator: An attached device (GPU or FPGA) executes part of
            the model.
        offloads_embeddings: Embedding gathers run outside the CPU cores
            (Centaur's EB-Streamer), not just the dense layers.
        stages: Latency-breakdown stage names this backend emits, in
            render order.
        supports_multi_model: The backend can price several DLRM
            configurations on one device, which multi-model
            :class:`~repro.workloads.mix.TrafficMix` workloads require
            (batches execute one per-model segment at a time).
        supports_elastic_scaling: Replicas of this backend can be
            commissioned and drained at runtime, so
            :class:`~repro.serving.autoscale.AutoscalingCluster` and
            ``Experiment.autoscale`` may serve it elastically.  A backend
            whose device cannot be hot-added (fixed appliance, exclusive
            host resource) should clear this so autoscaled experiments fail
            loudly instead of modelling an impossible fleet.
        provision_warmup_s: Realistic commission-to-traffic delay for one
            replica of this device — model load for CPUs, bitstream /
            partial-reconfiguration time for FPGAs.  Used as the default
            ``warmup_s`` of autoscaled fleets built through the registry.
        supports_sharding: The backend's embedding tables live in (host)
            memory addressable per shard, so a
            :class:`~repro.serving.sharded.ShardedReplicaGroup` may
            partition them across devices and cache hot rows in front of
            the gather.  Every built-in design point keeps this set (all
            three gather from shared host memory); a backend whose
            embedding storage cannot be partitioned (e.g. a monolithic
            appliance with fused table storage) should clear it so sharded
            experiments fail loudly instead of modelling an impossible
            fleet.
        supports_skewed_traces: The backend's performance model remains
            *valid* (possibly conservative) for non-uniform index streams
            (Zipf / hot-cold working sets).  The built-in analytic runners
            keep this set: they are calibrated to the paper's uniform
            regime, which is the pessimal-locality case, so pricing skewed
            traffic at that calibration is an upper bound on latency — the
            trace model itself shapes functional batches and cache studies
            (:meth:`repro.workloads.Workload.batch`,
            :class:`repro.workloads.ModelTraceGenerator`), not the serving
            latency estimate.  A backend whose model would be *wrong* (not
            merely conservative) under skew should clear this so skewed
            workloads fail loudly instead of silently mispricing.
    """

    reports_embedding_throughput: bool = False
    reports_mlp_traffic: bool = False
    uses_accelerator: bool = False
    offloads_embeddings: bool = False
    stages: Tuple[str, ...] = ()
    supports_multi_model: bool = True
    supports_sharding: bool = True
    supports_skewed_traces: bool = True
    supports_elastic_scaling: bool = True
    provision_warmup_s: float = 0.0

    def supports_workload(self, workload) -> bool:
        """True when a workload's requirements fit these capabilities."""
        return workload.compatible_with(self)

    def rejection_reason(self, workload) -> "str | None":
        """Why a workload cannot run here, or ``None`` when it can."""
        return workload.incompatibility(self)


@runtime_checkable
class Backend(Protocol):
    """One device design point, addressable by its registry name.

    Implementations must be deterministic: two calls of :meth:`run` with the
    same ``(model, batch_size)`` must return equal results, which is what
    lets :class:`repro.experiment.ResultCache` memoize design points.
    """

    @property
    def name(self) -> str:
        """Registry key of this backend (e.g. ``"cpu"``, ``"centaur"``)."""
        ...

    @property
    def design_point(self) -> str:
        """Paper-facing label (e.g. ``"CPU-only"``, ``"Centaur"``)."""
        ...

    @property
    def capabilities(self) -> BackendCapabilities:
        """Feature flags describing what this backend reports."""
        ...

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        """Price one inference batch end to end."""
        ...

    def energy(self, model: DLRMConfig, batch_size: int) -> float:
        """Energy in joules of one batch (power x latency)."""
        ...
