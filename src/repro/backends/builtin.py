"""Registrations for the paper's three design points.

Imported lazily by the registry on first lookup.  Each factory is simply
the runner class itself: all three take the :class:`SystemConfig` as their
first positional argument and carry their own calibrated defaults.
"""

from __future__ import annotations

from repro.backends.registry import register_backend
from repro.core.centaur import CENTAUR_CAPABILITIES, CentaurRunner
from repro.cpu.cpu_runner import CPU_CAPABILITIES, CPUOnlyRunner
from repro.gpu.gpu_runner import CPU_GPU_CAPABILITIES, CPUGPURunner

register_backend(
    "cpu",
    CPUOnlyRunner,
    design_point="CPU-only",
    description="CPU-only baseline (Broadwell Xeon, all layers in software)",
    aliases=("cpu-only", "cpuonly"),
    capabilities=CPU_CAPABILITIES,
)

register_backend(
    "cpu-gpu",
    CPUGPURunner,
    design_point="CPU-GPU",
    description="CPU gathers + discrete GPU dense layers over PCIe (DGX-1 V100)",
    aliases=("cpugpu", "gpu"),
    capabilities=CPU_GPU_CAPABILITIES,
)

register_backend(
    "centaur",
    CentaurRunner,
    design_point="Centaur",
    description="Chiplet FPGA accelerator: EB-Streamer gathers + dense complex",
    aliases=("fpga",),
    capabilities=CENTAUR_CAPABILITIES,
)
