"""Backend registry: one entry point for every device design point.

Usage::

    from repro.backends import get_backend, available_backends

    centaur = get_backend("centaur", HARPV2_SYSTEM)
    result = centaur.run(DLRM3, 64)

The three paper design points are registered under ``"cpu"``, ``"cpu-gpu"``
and ``"centaur"`` (with their paper labels as aliases).  New devices join
with :func:`register_backend` and are immediately usable by
:class:`repro.experiment.Experiment`, the serving clusters and the CLI.
"""

from repro.backends.base import Backend, BackendCapabilities
from repro.backends.registry import (
    BackendFactory,
    BackendRegistration,
    available_backends,
    backend_registration,
    canonical_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendFactory",
    "BackendRegistration",
    "available_backends",
    "backend_registration",
    "canonical_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
]
