"""Centaur reproduction: a chiplet-based hybrid sparse-dense accelerator model.

This package reproduces, in Python, the system described in *"Centaur: A
Chiplet-based, Hybrid Sparse-Dense Accelerator for Personalized
Recommendations"* (ISCA 2020): a from-scratch DLRM inference library, CPU /
CPU-GPU / Centaur performance models calibrated to the paper's evaluation
platform (Intel HARPv2), an FPGA resource estimator, power/energy models and
an analysis harness that regenerates every table and figure of the paper's
evaluation.

Quickstart::

    from repro import DLRM, UniformTraceGenerator, CentaurDevice
    from repro import CPUOnlyRunner, CentaurRunner
    from repro.config import DLRM1, HARPV2_SYSTEM

    model = DLRM.from_config(DLRM1, seed=0)
    batch = UniformTraceGenerator(seed=1).model_batch(DLRM1, batch_size=16)
    probabilities = CentaurDevice(model, HARPV2_SYSTEM).predict(batch)

    cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
    fpga = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 16)
    print(f"speedup: {fpga.speedup_over(cpu):.2f}x")

Backends are addressed by registry name, and experiment grids replace
hand-built runner loops::

    from repro import Experiment, get_backend, available_backends
    from repro.config import HARPV2_SYSTEM, PAPER_MODELS, PAPER_BATCH_SIZES

    result = (
        Experiment(HARPV2_SYSTEM)
        .backends("cpu", "centaur")
        .models(PAPER_MODELS)
        .batch_sizes(PAPER_BATCH_SIZES)
        .run()
    )
    print(result.get("centaur", "DLRM(3)", 64).latency_seconds)
"""

from repro.version import __version__, PAPER_TITLE, PAPER_VENUE, PAPER_AUTHORS
from repro.errors import (
    ReproError,
    ConfigurationError,
    ModelShapeError,
    TraceError,
    SimulationError,
    CapacityError,
    ResourceEstimationError,
)
from repro.results import InferenceResult, LatencyBreakdown
from repro.config import (
    CPUConfig,
    MemoryConfig,
    LinkConfig,
    FPGAConfig,
    GPUConfig,
    PowerConfig,
    SystemConfig,
    DLRMConfig,
    EmbeddingTableConfig,
    MLPConfig,
    HARPV2_SYSTEM,
    PAPER_MODELS,
    PAPER_BATCH_SIZES,
    DLRM1,
    DLRM2,
    DLRM3,
    DLRM4,
    DLRM5,
    DLRM6,
    dlrm_preset,
)
from repro.dlrm import (
    DLRM,
    DLRMOutput,
    DLRMBatch,
    SparseTrace,
    UniformTraceGenerator,
    ZipfianTraceGenerator,
    EmbeddingBagCollection,
    DenseEmbeddingTable,
    VirtualEmbeddingTable,
    sparse_lengths_sum,
    MLP,
)
from repro.backends import (
    Backend,
    BackendCapabilities,
    available_backends,
    get_backend,
    register_backend,
)
from repro.experiment import (
    Experiment,
    ExperimentResult,
    ResultCache,
    default_cache,
    run_grid,
)
from repro.cpu import CPUOnlyRunner
from repro.gpu import CPUGPURunner
from repro.core import (
    CentaurDevice,
    CentaurRunner,
    EBStreamer,
    DenseAcceleratorComplex,
    FPGAResourceModel,
)
from repro.power import PowerModel
from repro.serving import (
    AdaptiveWindowBatching,
    CloseOnFullBatching,
    ClusterReport,
    ClusterSimulator,
    FixedSizeBatching,
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PoissonRequestGenerator,
    PowerOfTwoChoicesDispatcher,
    ReplicaSpec,
    RoundRobinDispatcher,
    ServingSimulator,
    SizeBucketedBatching,
    TimeoutBatching,
)
from repro.workloads import (
    ArrivalProcess,
    ConstantRateArrivals,
    DiurnalArrivals,
    InferenceRequest,
    OnOffArrivals,
    PerTableTrace,
    PoissonArrivals,
    ReplayArrivals,
    TraceModel,
    TrafficMix,
    UniformTrace,
    Workload,
    WorkingSetTrace,
    ZipfianTrace,
    poisson_workload,
)
from repro.analysis import DesignPointSweep, headline_summary

__all__ = [
    "__version__",
    "PAPER_TITLE",
    "PAPER_VENUE",
    "PAPER_AUTHORS",
    "ReproError",
    "ConfigurationError",
    "ModelShapeError",
    "TraceError",
    "SimulationError",
    "CapacityError",
    "ResourceEstimationError",
    "InferenceResult",
    "LatencyBreakdown",
    "CPUConfig",
    "MemoryConfig",
    "LinkConfig",
    "FPGAConfig",
    "GPUConfig",
    "PowerConfig",
    "SystemConfig",
    "DLRMConfig",
    "EmbeddingTableConfig",
    "MLPConfig",
    "HARPV2_SYSTEM",
    "PAPER_MODELS",
    "PAPER_BATCH_SIZES",
    "DLRM1",
    "DLRM2",
    "DLRM3",
    "DLRM4",
    "DLRM5",
    "DLRM6",
    "dlrm_preset",
    "DLRM",
    "DLRMOutput",
    "DLRMBatch",
    "SparseTrace",
    "UniformTraceGenerator",
    "ZipfianTraceGenerator",
    "EmbeddingBagCollection",
    "DenseEmbeddingTable",
    "VirtualEmbeddingTable",
    "sparse_lengths_sum",
    "MLP",
    "Backend",
    "BackendCapabilities",
    "available_backends",
    "get_backend",
    "register_backend",
    "Experiment",
    "ExperimentResult",
    "ResultCache",
    "default_cache",
    "run_grid",
    "CPUOnlyRunner",
    "CPUGPURunner",
    "CentaurDevice",
    "CentaurRunner",
    "EBStreamer",
    "DenseAcceleratorComplex",
    "FPGAResourceModel",
    "PowerModel",
    "FixedSizeBatching",
    "TimeoutBatching",
    "CloseOnFullBatching",
    "AdaptiveWindowBatching",
    "SizeBucketedBatching",
    "PoissonRequestGenerator",
    "ServingSimulator",
    "ClusterSimulator",
    "ClusterReport",
    "HeterogeneousCluster",
    "ReplicaSpec",
    "RoundRobinDispatcher",
    "JoinShortestQueueDispatcher",
    "LeastLoadedDispatcher",
    "PowerOfTwoChoicesDispatcher",
    "ArrivalProcess",
    "PoissonArrivals",
    "ConstantRateArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "ReplayArrivals",
    "InferenceRequest",
    "TraceModel",
    "UniformTrace",
    "ZipfianTrace",
    "WorkingSetTrace",
    "PerTableTrace",
    "TrafficMix",
    "Workload",
    "poisson_workload",
    "DesignPointSweep",
    "headline_summary",
]
