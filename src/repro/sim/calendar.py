"""A calendar (bucketed) event queue with exact heap-equivalent semantics.

The classic discrete-event structure (R. Brown, CACM 1988): time is cut
into fixed-width *days* (buckets) arranged in a ring of *years*.  An event
lands in the bucket of its day; popping scans forward from the current day
and only considers events belonging to the year under the cursor, so each
operation is O(1) amortized when the bucket width tracks the mean
inter-event gap — the structure resizes itself to keep it there.

Correctness contract (pinned by ``tests/sim/test_queues.py`` and the
integration equivalence matrix): pop order is *identical* to the binary
heap's, i.e. strictly ``(time, sequence)``.  Two events with equal time
always hash to the same bucket, and every bucket is itself a ``(time,
sequence)`` min-heap, so ties break exactly as the heap breaks them.

When to use it: very deep, densely scheduled queues (hundreds of
thousands of outstanding events).  At serving-simulation depths (tens of
in-flight events) the C-implemented binary heap wins — which is why
``Simulator(queue="auto")`` resolves to the heap; see
``BENCH_engine.json`` for the measured comparison.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional

from repro.errors import SimulationError
from repro.sim.engine import BaseEventQueue, Event, _Entry

__all__ = ["CalendarQueue"]

#: Resize bounds: grow when the ring holds > ``_GROW_FACTOR`` events per
#: bucket, shrink below half an event per bucket.
_GROW_FACTOR = 2
_MIN_BUCKETS = 4
#: Sample size used to re-estimate the bucket width on resize.
_WIDTH_SAMPLE = 64


class CalendarQueue(BaseEventQueue):
    """Bucket/calendar priority queue of :class:`~repro.sim.engine.Event`.

    Args:
        pool: Recycle fired events through a free list (default on).
        bucket_width: Initial day width in simulated seconds; adapted on
            every resize to ~3x the observed mean inter-event gap.
        num_buckets: Initial ring size (doubled/halved as the population
            grows and shrinks).
    """

    kind = "calendar"

    def __init__(
        self,
        pool: bool = True,
        bucket_width: float = 1e-4,
        num_buckets: int = 16,
    ) -> None:
        super().__init__(pool=pool)
        if bucket_width <= 0:
            raise SimulationError(
                f"bucket_width must be positive, got {bucket_width}"
            )
        if num_buckets < 1:
            raise SimulationError(f"num_buckets must be positive, got {num_buckets}")
        self._width = float(bucket_width)
        self._num_buckets = int(num_buckets)
        self._buckets: List[List[_Entry]] = [[] for _ in range(self._num_buckets)]
        self._count = 0
        #: Virtual day index of the pop cursor (floor(last popped / width)).
        self._vday = 0

    def __len__(self) -> int:
        return self._count

    # -- storage primitives ---------------------------------------------
    def _insert(self, entry: _Entry) -> None:
        heappush(self._buckets[int(entry[0] / self._width) % self._num_buckets], entry)
        self._count += 1
        if self._count > _GROW_FACTOR * self._num_buckets:
            self._resize(self._num_buckets * 2)

    def _take_min(self) -> _Entry:
        buckets = self._buckets
        num_buckets = self._num_buckets
        width = self._width
        vday = self._vday
        for offset in range(num_buckets):
            day = vday + offset
            bucket = buckets[day % num_buckets]
            # The bucket's head is its earliest entry; it belongs to the
            # year under the cursor iff its day — computed with the exact
            # arithmetic _insert used, so float rounding can never disagree
            # — is the day under the cursor.
            if bucket and int(bucket[0][0] / width) == day:
                self._vday = day
                entry = heappop(bucket)
                break
        else:
            # A sparse year: nothing within one full ring scan.  Jump the
            # cursor straight to the globally earliest entry.
            entry = self._direct_min()
            day = int(entry[0] / width)
            self._vday = day
            heappop(buckets[day % num_buckets])
        self._count -= 1
        if (
            self._num_buckets > _MIN_BUCKETS
            and self._count * _GROW_FACTOR < self._num_buckets
        ):
            self._resize(max(_MIN_BUCKETS, self._num_buckets // 2))
        return entry

    def _direct_min(self) -> _Entry:
        best: Optional[_Entry] = None
        for bucket in self._buckets:
            # Equal times always share a bucket, so comparing heads never
            # ties on time and the comparison stops before the Event field.
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if best is None:  # pragma: no cover - guarded by pop()'s len check
            raise SimulationError("cannot pop from an empty event queue")
        return best

    def _min_entry(self) -> Optional[_Entry]:
        if self._count == 0:
            return None
        return self._direct_min()

    def _compact_entries(self) -> List[Event]:
        dropped: List[Event] = []
        for index, bucket in enumerate(self._buckets):
            if not any(entry[2].cancelled for entry in bucket):
                continue
            dropped.extend(entry[2] for entry in bucket if entry[2].cancelled)
            live = [entry for entry in bucket if not entry[2].cancelled]
            heapify(live)
            self._buckets[index] = live
        self._count -= len(dropped)
        return dropped

    # -- resizing ---------------------------------------------------------
    def _resize(self, num_buckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._width = self._estimate_width(entries)
        self._num_buckets = num_buckets
        self._buckets = [[] for _ in range(num_buckets)]
        width = self._width
        for entry in entries:
            heappush(self._buckets[int(entry[0] / width) % num_buckets], entry)
        self._vday = int(self._floor / width)

    def _estimate_width(self, entries: List[_Entry]) -> float:
        """~3x the mean gap of a sample of queued times (Brown's rule)."""
        if len(entries) < 2:
            return self._width
        times = sorted(entry[0] for entry in entries[:_WIDTH_SAMPLE])
        span = times[-1] - times[0]
        if span <= 0.0:
            return self._width
        return 3.0 * span / (len(times) - 1)
