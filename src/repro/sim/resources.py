"""Shared resources for the event-driven models: bandwidth pipes and credits."""

from __future__ import annotations

from repro.errors import SimulationError


class BandwidthResource:
    """A serial resource that streams bytes at a fixed bandwidth.

    Transfers are serviced in request order: a transfer starts when the
    previous one finishes (or immediately if the resource is idle) and lasts
    ``bytes / bandwidth`` seconds.  This models a link or memory channel at
    the granularity the performance model needs without token-level detail.
    """

    def __init__(self, bandwidth_bytes_per_s: float, name: str = "link"):
        if bandwidth_bytes_per_s <= 0:
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth_bytes_per_s}"
            )
        self.bandwidth = bandwidth_bytes_per_s
        self.name = name
        self.busy_until = 0.0
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    def request(self, now: float, num_bytes: float) -> float:
        """Submit a transfer at time ``now``; returns its completion time."""
        if num_bytes < 0:
            raise SimulationError(f"num_bytes must be non-negative, got {num_bytes}")
        start = max(now, self.busy_until)
        duration = num_bytes / self.bandwidth
        self.busy_until = start + duration
        self.bytes_transferred += num_bytes
        self.busy_time += duration
        return self.busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the resource spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class TokenPool:
    """A counting-semaphore credit pool (e.g. outstanding-request credits)."""

    def __init__(self, capacity: int, name: str = "credits"):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.available = capacity
        self.name = name
        self.acquisitions = 0
        self.blocked = 0

    def try_acquire(self, count: int = 1) -> bool:
        """Take ``count`` credits if available; returns success."""
        if count <= 0:
            raise SimulationError(f"count must be positive, got {count}")
        if self.available >= count:
            self.available -= count
            self.acquisitions += count
            return True
        self.blocked += 1
        return False

    def release(self, count: int = 1) -> None:
        """Return credits to the pool."""
        if count <= 0:
            raise SimulationError(f"count must be positive, got {count}")
        if self.available + count > self.capacity:
            raise SimulationError(
                f"releasing {count} credits would exceed capacity "
                f"({self.available}/{self.capacity})"
            )
        self.available += count

    @property
    def in_use(self) -> int:
        return self.capacity - self.available
