"""A minimal discrete-event simulation engine.

Used by the detailed (cycle-approximate) mode of the Centaur EB-Streamer to
model gather requests in flight over the chiplet link, and available to any
other component that wants event-level timing rather than closed-form
estimates.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.resources import BandwidthResource, TokenPool

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "BandwidthResource",
    "TokenPool",
]
