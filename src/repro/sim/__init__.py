"""A minimal discrete-event simulation engine.

Used by the detailed (cycle-approximate) mode of the Centaur EB-Streamer to
model gather requests in flight over the chiplet link, and by the serving
stack (replicas, clusters, autoscalers, shard groups) for fleet-scale
event-driven runs.  The hot path is tuned for million-event simulations:
``__slots__`` events recycled through a free-list pool, a C-heap default
queue with a :class:`CalendarQueue` alternative behind the same interface,
and an opt-in per-label profile (``Simulator(profile=True)``).
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import (
    BaseEventQueue,
    Event,
    EventQueue,
    Simulator,
    make_event_queue,
)
from repro.sim.profile import SimProfile
from repro.sim.resources import BandwidthResource, TokenPool

__all__ = [
    "BaseEventQueue",
    "CalendarQueue",
    "Event",
    "EventQueue",
    "SimProfile",
    "Simulator",
    "make_event_queue",
    "BandwidthResource",
    "TokenPool",
]
