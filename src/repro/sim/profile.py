"""Lightweight event-loop profiling: who eats the wall-clock, by label.

Enable with ``Simulator(profile=True)``; the run loop then records, for
every fired event, its label, and the host wall-clock its callback spent.
The result answers the first question of any engine optimisation: *which
event class dominates?* — without reaching for ``cProfile``.

Labels follow the convention the serving stack already uses:
``"arrival"``, ``"<replica>:batch-close"``, ``"<replica>:complete"``,
``"autoscale:tick"``, ``"autoscale:warm"``.  Unlabeled events group under
``"(unlabeled)"``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

__all__ = ["SimProfile", "LabelStats"]

#: Fallback group for events scheduled without a label.
_UNLABELED = "(unlabeled)"


class LabelStats:
    """Aggregate of one event label: fire count and cumulative wall-clock."""

    __slots__ = ("label", "count", "seconds")

    def __init__(self, label: str, count: int = 0, seconds: float = 0.0):
        self.label = label
        self.count = count
        self.seconds = seconds

    @property
    def mean_us(self) -> float:
        """Mean callback wall-clock in microseconds."""
        if self.count == 0:
            return 0.0
        return 1e6 * self.seconds / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabelStats({self.label!r}, count={self.count}, "
            f"seconds={self.seconds:.6f})"
        )


class SimProfile:
    """Per-event-label counts and cumulative host wall-clock of one run."""

    def __init__(self) -> None:
        self._stats: Dict[str, LabelStats] = {}

    # -- recording (engine-internal hot path) ---------------------------
    def record(self, label: str, seconds: float) -> None:
        if not label:
            label = _UNLABELED
        stats = self._stats.get(label)
        if stats is None:
            stats = self._stats[label] = LabelStats(label)
        stats.count += 1
        stats.seconds += seconds

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[LabelStats]:
        """Labels ordered by cumulative wall-clock, heaviest first."""
        return iter(
            sorted(self._stats.values(), key=lambda s: (-s.seconds, s.label))
        )

    def get(self, label: str) -> LabelStats:
        """Stats of one label (zeroes when the label never fired)."""
        return self._stats.get(label, LabelStats(label))

    @property
    def total_events(self) -> int:
        return sum(stats.count for stats in self._stats.values())

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self._stats.values())

    def merge(self, other: "SimProfile") -> "SimProfile":
        """Pool two profiles (e.g. several streams through one cluster)."""
        merged = SimProfile()
        for source in (self, other):
            for stats in source._stats.values():
                target = merged._stats.get(stats.label)
                if target is None:
                    target = merged._stats[stats.label] = LabelStats(stats.label)
                target.count += stats.count
                target.seconds += stats.seconds
        return merged

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """Render-ready rows: (label, count, seconds, mean µs, share).

        Shares are fractions of the recorded total; heaviest label first.
        """
        total = self.total_seconds
        return [
            (
                stats.label,
                stats.count,
                stats.seconds,
                stats.mean_us,
                stats.seconds / total if total > 0 else 0.0,
            )
            for stats in self
        ]
