"""Discrete-event simulation core: events, an event queue and a simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Events order by ``(time, sequence)`` so that simultaneous events fire in
    the order they were scheduled (deterministic execution).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing when it is popped."""
        self.cancelled = True


class EventQueue:
    """A stable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Runs events in time order and tracks the simulated clock (seconds)."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_fired: int = 0
        self._stop_requested = False

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule a callback at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event in the past: {time} < now ({self.now})"
            )
        return self.queue.push(time, callback, label)

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, callback, label)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask :meth:`run` to return after the current event.

        Useful from inside a callback (e.g. when a measurement horizon or an
        error condition is reached); the remaining events stay queued, so a
        later :meth:`run` resumes where the simulation stopped.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns ``False`` when the queue is empty."""
        while len(self.queue):
            event = self.queue.pop()
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {event.time} is in the past "
                    f"(now {self.now})"
                )
            self.now = event.time
            event.callback()
            self.events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until`` / ``max_events`` is hit).

        Returns:
            The simulated time at which execution stopped.
        """
        fired = 0
        self._stop_requested = False
        while len(self.queue):
            if self._stop_requested:
                break
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = until
                break
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return self.now
