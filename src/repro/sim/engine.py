"""Discrete-event simulation core: events, event queues and a simulator.

The hot path is tuned for million-event serving runs:

* :class:`Event` is a ``__slots__`` record, and every queue keeps a free
  list so a steady-state run allocates O(in-flight) event objects instead
  of O(total events) (disable with ``pool=False`` / ``event_pool=False``).
* The heap stores ``(time, sequence, event)`` tuples, so ordering is
  resolved by C-level tuple comparison — the event object itself is never
  compared.
* :class:`EventQueue` (a binary heap) and
  :class:`~repro.sim.calendar.CalendarQueue` (a bucketed calendar queue)
  implement the same interface with identical ``(time, sequence)``
  tie-break semantics; pick one with ``Simulator(queue=...)``.
* ``Simulator(profile=True)`` records per-label event counts and
  cumulative host wall-clock into a :class:`~repro.sim.profile.SimProfile`
  (zero overhead when disabled).

Event references stay valid until the event fires or is cancelled; after
that the engine may recycle the object for a future event, so holders must
drop their reference once it fires (every in-repo holder does — e.g. a
batch-close timer slot is cleared before the callback body runs).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Callable, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sim.profile import SimProfile


class Event:
    """One scheduled callback.

    Events fire in ``(time, sequence)`` order, so simultaneous events fire
    in the order they were scheduled (deterministic execution).
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Optional[Callable[[], None]],
        label: str = "",
        queue: Optional["BaseEventQueue"] = None,
    ):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing when it is popped.

        Cancelling drops the callback reference immediately, so request
        state closed over by the callback is collectable right away instead
        of surviving in the queue until the event's time passes.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.sequence}, label={self.label!r}{state})"


#: One queue entry; compared as a tuple, so the event object never is.
_Entry = Tuple[float, int, Event]

#: Compact only when at least this many cancelled events are queued (a tiny
#: queue is cheaper to drain lazily than to rebuild).
_COMPACT_MIN_CANCELLED = 8


class BaseEventQueue:
    """Shared queue machinery: validation, sequencing, pooling, compaction.

    Subclasses implement the storage primitives (``_insert``, ``_take_min``,
    ``_min_entry``, ``_compact_entries``) and must order entries by
    ``(time, sequence)``.
    """

    kind = "base"

    def __init__(self, pool: bool = True) -> None:
        self._next_sequence = 0
        self._free: Optional[List[Event]] = [] if pool else None
        self._cancelled = 0
        # Causality floor: the largest time popped so far.  Scheduling below
        # it would silently corrupt event order, so push refuses.
        self._floor = 0.0

    # -- storage primitives (subclass responsibility) -------------------
    def _insert(self, entry: _Entry) -> None:
        raise NotImplementedError

    def _take_min(self) -> _Entry:
        raise NotImplementedError

    def _min_entry(self) -> Optional[_Entry]:
        raise NotImplementedError

    def _compact_entries(self) -> List[Event]:
        """Drop cancelled entries from storage; return the dropped events."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- shared interface ------------------------------------------------
    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        if time < self._floor:
            raise SimulationError(
                f"event {label!r} scheduled at {time} is before the current "
                f"simulation time ({self._floor}); causality would be violated"
            )
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.label = label
            event.cancelled = False
        else:
            event = Event(time, sequence, callback, label, self)
        self._insert((time, sequence, event))
        return event

    def take(self) -> Optional[Event]:
        """Pop the next event, or return ``None`` when the queue is empty.

        The engine's run loop uses this instead of :meth:`pop` so draining
        the queue costs no exception and no extra emptiness probe.
        """
        if not len(self):
            return None
        time, _, event = self._take_min()
        self._floor = time
        if event.cancelled:
            self._cancelled -= 1
        return event

    def pop(self) -> Event:
        event = self.take()
        if event is None:
            raise SimulationError("cannot pop from an empty event queue")
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` when the queue is empty."""
        entry = self._min_entry()
        return entry[0] if entry is not None else None

    def release(self, event: Event) -> None:
        """Return a fired (or popped-cancelled) event to the free list.

        Engine-internal: only events that are no longer queued may be
        released, and the caller must not use the object afterwards.
        """
        free = self._free
        if free is not None:
            event.callback = None
            free.append(event)

    # -- cancellation bookkeeping ---------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self)
        ):
            for event in self._compact_entries():
                self.release(event)
            self._cancelled = 0


class EventQueue(BaseEventQueue):
    """A stable binary-heap priority queue of :class:`Event` objects.

    The default queue: C ``heapq`` on ``(time, sequence, event)`` tuples
    dominates at the queue depths serving simulations produce (tens of
    outstanding events).
    """

    kind = "heap"

    def __init__(self, pool: bool = True) -> None:
        super().__init__(pool=pool)
        self._heap: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _insert(self, entry: _Entry) -> None:
        heappush(self._heap, entry)

    def _take_min(self) -> _Entry:
        return heappop(self._heap)

    # -- hot-path overrides: the base implementations delegate through
    # _insert/_take_min so subclasses stay small, but on the default queue
    # that indirection is measurable at millions of events, so push/take
    # inline the storage access.
    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        if time < self._floor:
            raise SimulationError(
                f"event {label!r} scheduled at {time} is before the current "
                f"simulation time ({self._floor}); causality would be violated"
            )
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.label = label
            event.cancelled = False
        else:
            event = Event(time, sequence, callback, label, self)
        heappush(self._heap, (time, sequence, event))
        return event

    def take(self) -> Optional[Event]:
        heap = self._heap
        if not heap:
            return None
        time, _, event = heappop(heap)
        self._floor = time
        if event.cancelled:
            self._cancelled -= 1
        return event

    def _min_entry(self) -> Optional[_Entry]:
        heap = self._heap
        return heap[0] if heap else None

    def _compact_entries(self) -> List[Event]:
        dropped = [entry[2] for entry in self._heap if entry[2].cancelled]
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapify(self._heap)
        return dropped


#: Queue selector accepted by :class:`Simulator`: a kind name, an instance,
#: or a queue class.
QueueSpec = Union[str, BaseEventQueue, type, None]


def make_event_queue(spec: QueueSpec = "auto", pool: bool = True) -> BaseEventQueue:
    """Build an event queue from a :data:`QueueSpec`.

    ``"auto"`` (and ``None``) selects the binary heap: its per-operation
    cost is C-level and O(log n) in the outstanding-event count, which is
    small (in-flight work only) for every serving workload in this repo.
    The calendar queue's O(1) amortized operations only pay off for very
    deep, densely scheduled queues — opt in with ``"calendar"``.
    """
    if spec is None or spec == "auto" or spec == "heap":
        return EventQueue(pool=pool)
    if spec == "calendar":
        from repro.sim.calendar import CalendarQueue

        return CalendarQueue(pool=pool)
    if isinstance(spec, BaseEventQueue):
        return spec
    if isinstance(spec, type) and issubclass(spec, BaseEventQueue):
        return spec(pool=pool)
    raise SimulationError(
        f"unknown event queue {spec!r}; expected 'auto', 'heap', 'calendar', "
        "an event-queue instance or an event-queue class"
    )


class Simulator:
    """Runs events in time order and tracks the simulated clock (seconds).

    Args:
        queue: Event-queue selector — ``"auto"`` / ``"heap"`` /
            ``"calendar"``, a queue instance, or a queue class.
        profile: Record per-label event counts and cumulative host
            wall-clock into :attr:`profile` (a
            :class:`~repro.sim.profile.SimProfile`).  Off by default; the
            unprofiled run loop pays nothing for the hook.
        event_pool: Recycle fired events through a free list (on by
            default); ignored when ``queue`` is already an instance.
    """

    def __init__(
        self,
        queue: QueueSpec = "auto",
        profile: bool = False,
        event_pool: bool = True,
    ) -> None:
        self.queue = make_event_queue(queue, pool=event_pool)
        self.profile: Optional[SimProfile] = SimProfile() if profile else None
        self.now: float = 0.0
        self.events_fired: int = 0
        self._stop_requested = False

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule a callback at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event in the past: {time} < now ({self.now})"
            )
        return self.queue.push(time, callback, label)

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, callback, label)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask :meth:`run` to return after the current event.

        Useful from inside a callback (e.g. when a measurement horizon or an
        error condition is reached); the remaining events stay queued, so a
        later :meth:`run` resumes where the simulation stopped.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns ``False`` when the queue is empty."""
        queue = self.queue
        while len(queue):
            event = queue.pop()
            if event.cancelled:
                queue.release(event)
                continue
            if event.time < self.now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {event.time} is in the past "
                    f"(now {self.now})"
                )
            self.now = event.time
            callback = event.callback
            if self.profile is not None:
                started = perf_counter()
                callback()
                self.profile.record(event.label, perf_counter() - started)
            else:
                callback()
            queue.release(event)
            self.events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains (or ``until`` / ``max_events`` is hit).

        Returns:
            The simulated time at which execution stopped.
        """
        fired = 0
        self._stop_requested = False
        queue = self.queue
        profile = self.profile
        take = queue.take
        # Inlined queue.release(): one list append per event instead of a
        # method call.  ``_free`` is None exactly when pooling is off.
        free_list = queue._free
        while True:
            if self._stop_requested:
                break
            if until is not None:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if next_time > until:
                    self.now = until
                    break
            event = take()
            if event is None:
                break
            if event.cancelled:
                # cancel() already dropped the callback reference.
                if free_list is not None:
                    free_list.append(event)
                continue
            time = event.time
            if time < self.now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {time} is in the past "
                    f"(now {self.now})"
                )
            self.now = time
            callback = event.callback
            if profile is not None:
                started = perf_counter()
                callback()
                profile.record(event.label, perf_counter() - started)
            else:
                callback()
            if free_list is not None:
                event.callback = None
                free_list.append(event)
            self.events_fired += 1
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return self.now
