"""Workload catalog and spec parsing for the CLI and experiment tooling.

Arrival processes and trace models are addressable by compact text specs so
``python -m repro serve --workload bursty:on=40000,off=2000`` can build the
same objects Python callers compose by hand:

* ``poisson:30000`` — Poisson arrivals at 30 kQPS.
* ``constant:10000`` — evenly spaced arrivals at 10 kQPS.
* ``bursty:on=40000,off=2000,mean_on=0.05,mean_off=0.1`` — MMPP on/off.
* ``diurnal:trough=5000,peak=30000,period=0.5`` — sinusoidal day curve.
* ``replay:0.001,0.002,0.0035`` — explicit timestamps.

Trace specs follow the same shape: ``uniform``, ``zipf:1.05``,
``hotcold:frac=0.05,weight=0.9``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    ArrivalProcess,
    ConstantRateArrivals,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    ReplayArrivals,
)
from repro.workloads.traces import (
    TraceModel,
    UniformTrace,
    WorkingSetTrace,
    ZipfianTrace,
)
from repro.workloads.updates import UPDATE_MODES, UpdateProcess
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class CatalogEntry:
    """One spec-addressable generator family shown by ``list-workloads``."""

    kind: str
    summary: str
    example: str
    build: Callable[[str], object]


def _parse_kv(body: str, defaults: Dict[str, float], kind: str) -> Dict[str, float]:
    """Parse a ``a=1,b=2`` parameter body against a dict of defaults."""
    values = dict(defaults)
    if not body:
        return values
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigurationError(
                f"{kind} spec parameters must be key=value, got {item!r} "
                f"(known keys: {', '.join(defaults)})"
            )
        key, _, raw = item.partition("=")
        key = key.strip()
        if key not in defaults:
            raise ConfigurationError(
                f"unknown {kind} parameter {key!r} (known: {', '.join(defaults)})"
            )
        try:
            values[key] = float(raw)
        except ValueError:
            raise ConfigurationError(f"{kind} parameter {key!r} is not a number: {raw!r}")
    return values


def _require_number(body: str, kind: str, what: str) -> float:
    try:
        return float(body)
    except ValueError:
        raise ConfigurationError(f"{kind} spec needs a {what}, got {body!r}")


def _build_poisson(body: str) -> ArrivalProcess:
    return PoissonArrivals(rate_qps=_require_number(body, "poisson", "rate in QPS"))


def _build_constant(body: str) -> ArrivalProcess:
    return ConstantRateArrivals(rate_qps=_require_number(body, "constant", "rate in QPS"))


def _build_bursty(body: str) -> ArrivalProcess:
    values = _parse_kv(
        body,
        {"on": 40_000.0, "off": 0.0, "mean_on": 0.05, "mean_off": 0.1},
        "bursty",
    )
    return OnOffArrivals(
        on_rate_qps=values["on"],
        off_rate_qps=values["off"],
        mean_on_s=values["mean_on"],
        mean_off_s=values["mean_off"],
    )


def _build_diurnal(body: str) -> ArrivalProcess:
    values = _parse_kv(
        body,
        {"trough": 5_000.0, "peak": 30_000.0, "period": 1.0},
        "diurnal",
    )
    return DiurnalArrivals(
        trough_qps=values["trough"],
        peak_qps=values["peak"],
        period_s=values["period"],
    )


def _build_replay(body: str) -> ArrivalProcess:
    if not body:
        raise ConfigurationError("replay spec needs a comma-separated list of times")
    try:
        times = [float(item) for item in body.split(",") if item.strip()]
    except ValueError:
        raise ConfigurationError(f"replay times must be numbers, got {body!r}")
    return ReplayArrivals(times)


ARRIVAL_CATALOG: Dict[str, CatalogEntry] = {
    "poisson": CatalogEntry(
        kind="poisson",
        summary="memoryless open-loop traffic (exponential gaps)",
        example="poisson:30000",
        build=_build_poisson,
    ),
    "constant": CatalogEntry(
        kind="constant",
        summary="evenly spaced closed-loop arrivals (zero burstiness)",
        example="constant:10000",
        build=_build_constant,
    ),
    "bursty": CatalogEntry(
        kind="bursty",
        summary="MMPP on/off bursts with exponential sojourns",
        example="bursty:on=40000,off=2000,mean_on=0.05,mean_off=0.1",
        build=_build_bursty,
    ),
    "diurnal": CatalogEntry(
        kind="diurnal",
        summary="sinusoidal day-curve rate, sampled by thinning",
        example="diurnal:trough=5000,peak=30000,period=0.5",
        build=_build_diurnal,
    ),
    "replay": CatalogEntry(
        kind="replay",
        summary="replay explicit arrival timestamps",
        example="replay:0.001,0.002,0.0035",
        build=_build_replay,
    ),
}


def _build_uniform_trace(body: str) -> TraceModel:
    if body:
        raise ConfigurationError("uniform trace spec takes no parameters")
    return UniformTrace()


def _build_zipf_trace(body: str) -> TraceModel:
    alpha = _require_number(body, "zipf", "skew alpha") if body else 1.05
    return ZipfianTrace(alpha=alpha)


def _build_hotcold_trace(body: str) -> TraceModel:
    values = _parse_kv(body, {"frac": 0.05, "weight": 0.9}, "hotcold")
    return WorkingSetTrace(hot_fraction=values["frac"], hot_weight=values["weight"])


TRACE_CATALOG: Dict[str, CatalogEntry] = {
    "uniform": CatalogEntry(
        kind="uniform",
        summary="uniform low-locality lookups (the paper's regime)",
        example="uniform",
        build=_build_uniform_trace,
    ),
    "zipf": CatalogEntry(
        kind="zipf",
        summary="Zipf popularity skew over table rows",
        example="zipf:1.05",
        build=_build_zipf_trace,
    ),
    "hotcold": CatalogEntry(
        kind="hotcold",
        summary="hot/cold working set (hot fraction takes most lookups)",
        example="hotcold:frac=0.05,weight=0.9",
        build=_build_hotcold_trace,
    ),
}


def _split_spec(spec: str) -> Tuple[str, str]:
    text = spec.strip()
    kind, _, body = text.partition(":")
    return kind.strip().lower(), body.strip()


def parse_arrival_spec(spec: str) -> ArrivalProcess:
    """Build an :class:`ArrivalProcess` from a compact text spec."""
    kind, body = _split_spec(spec)
    entry = ARRIVAL_CATALOG.get(kind)
    if entry is None:
        raise ConfigurationError(
            f"unknown arrival process {kind!r}; available: "
            f"{', '.join(sorted(ARRIVAL_CATALOG))}"
        )
    return entry.build(body)  # type: ignore[return-value]


def parse_trace_spec(spec: str) -> TraceModel:
    """Build a :class:`TraceModel` from a compact text spec."""
    kind, body = _split_spec(spec)
    entry = TRACE_CATALOG.get(kind)
    if entry is None:
        raise ConfigurationError(
            f"unknown trace model {kind!r}; available: "
            f"{', '.join(sorted(TRACE_CATALOG))}"
        )
    return entry.build(body)  # type: ignore[return-value]


def parse_workload_spec(spec: str, trace_spec: str = "uniform") -> Workload:
    """Build a :class:`Workload` from arrival + trace specs."""
    return Workload(
        arrivals=parse_arrival_spec(spec),
        trace=parse_trace_spec(trace_spec),
    )


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault drill: a fault schedule plus the traffic it assumes.

    Scenarios store *spec strings*, not built objects: the fault grammar
    lives in :mod:`repro.chaos` and is parsed lazily, so the workload
    catalog stays import-light and the scenario text doubles as the exact
    ``--faults`` spec a user could have typed by hand.
    """

    name: str
    summary: str
    fault_spec: str
    arrival_spec: str
    trace_spec: str = "uniform"

    def schedule(self):
        """Parse :attr:`fault_spec` into a ``FaultSchedule``."""
        from repro.chaos.faults import parse_fault_schedule

        return parse_fault_schedule(self.fault_spec)

    def workload(self) -> Workload:
        """Build the scenario's assumed traffic."""
        return parse_workload_spec(self.arrival_spec, self.trace_spec)


SCENARIO_CATALOG: Dict[str, ChaosScenario] = {
    "region-failover": ChaosScenario(
        name="region-failover",
        summary=(
            "two replicas die at once (a rack/region partition) and restart "
            "after a cold outage window; survivors absorb the re-dispatch"
        ),
        fault_spec=(
            "crash:at=0.06,restart=0.05;"
            "crash:at=0.06,restart=0.05;"
            "report:sla=0.005"
        ),
        arrival_spec="poisson:20000",
    ),
    "cascading-brownout": ChaosScenario(
        name="cascading-brownout",
        summary=(
            "thermal throttling marches across the fleet as overlapping "
            "brownouts, then the hottest replica crashes outright"
        ),
        fault_spec=(
            "brownout:at=0.03,for=0.06,replica=0,slow=3;"
            "brownout:at=0.06,for=0.06,replica=1,slow=3;"
            "crash:at=0.1,restart=0.04;"
            "report:sla=0.005"
        ),
        arrival_spec="bursty:on=30000,off=5000,mean_on=0.05,mean_off=0.05",
    ),
}


_MODE_ALIASES = {
    "invalidate": "invalidate",
    "write-through": "write-through",
    "writethrough": "write-through",
    "write_through": "write-through",
    "ignore": "ignore",
}


def parse_update_spec(spec) -> "UpdateProcess | None":
    """Build an :class:`~repro.workloads.updates.UpdateProcess` from text.

    Grammar: ``MODE:rate=R,rows=K[,trace=TRACESPEC]`` where ``MODE`` is
    ``invalidate`` / ``write-through`` / ``ignore``; ``rate`` is pushes/s
    (Poisson) and ``rows`` the rows rewritten per push.  A bare number
    body (``invalidate:4000``) is the rate.  ``None``, ``""``, ``"off"``,
    ``"none"`` and ``rate=0`` all mean no update stream — the read-only
    serving path.  The trace sub-spec may not contain commas beyond its
    own parameters (``trace=zipf:1.05`` works; quote odd shapes in code).
    """
    if spec is None:
        return None
    text = str(spec).strip()
    if not text or text.lower() in ("off", "none"):
        return None
    mode_text, _, body = text.partition(":")
    mode = _MODE_ALIASES.get(mode_text.strip().lower())
    if mode is None:
        raise ConfigurationError(
            f"unknown update mode {mode_text.strip()!r}; use one of "
            f"{', '.join(UPDATE_MODES)} (or 'off')"
        )
    rate = 1000.0
    rows = 1
    trace: TraceModel | None = None
    body = body.strip()
    if body:
        for item in body.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if not sep:
                rate = _require_number(item, "update", "push rate in pushes/s")
                continue
            if key == "rate":
                rate = _require_number(raw, "update", "push rate in pushes/s")
            elif key == "rows":
                rate_rows = _require_number(raw, "update", "rows per push")
                rows = int(rate_rows)
            elif key == "trace":
                trace = parse_trace_spec(raw)
            else:
                raise ConfigurationError(
                    f"unknown update parameter {key!r} (known: rate, rows, trace)"
                )
    if rate < 0:
        raise ConfigurationError(f"update rate must be >= 0, got {rate:g}")
    if rate == 0:
        return None
    return UpdateProcess(
        arrivals=rate, rows_per_update=rows, mode=mode, trace=trace
    )


@dataclass(frozen=True)
class UpdateScenario:
    """A named embedding-push drill: an update spec plus assumed traffic."""

    name: str
    summary: str
    update_spec: str
    arrival_spec: str
    trace_spec: str = "uniform"

    def updates(self) -> "UpdateProcess | None":
        """Parse :attr:`update_spec` into an :class:`UpdateProcess`."""
        return parse_update_spec(self.update_spec)

    def workload(self) -> Workload:
        """Build the scenario's assumed traffic."""
        return parse_workload_spec(self.arrival_spec, self.trace_spec)


UPDATE_SCENARIO_CATALOG: Dict[str, UpdateScenario] = {
    "model-push-storm": UpdateScenario(
        name="model-push-storm",
        summary=(
            "a full model push streams retrained rows into serving at high "
            "rate; invalidations strip the hot set while zipf reads hammer it"
        ),
        update_spec="invalidate:rate=4000,rows=32",
        arrival_spec="poisson:30000",
        trace_spec="zipf:1.05",
    ),
}


def resolve_update_spec(spec) -> "UpdateProcess | None":
    """Resolve ``--updates`` text: a scenario name or a raw update spec."""
    if spec is not None and str(spec).strip().lower() in UPDATE_SCENARIO_CATALOG:
        scenario = UPDATE_SCENARIO_CATALOG[str(spec).strip().lower()]
        return scenario.updates()
    return parse_update_spec(spec)


def resolve_fault_spec(spec: str):
    """Resolve ``--faults`` text: a scenario name or a raw fault spec.

    Returns the parsed ``FaultSchedule`` (or ``None`` for ``off``/``none``).
    """
    if spec is not None and spec.strip().lower() in SCENARIO_CATALOG:
        return SCENARIO_CATALOG[spec.strip().lower()].schedule()
    from repro.chaos.faults import parse_fault_schedule

    return parse_fault_schedule(spec)
