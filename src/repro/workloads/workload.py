"""The :class:`Workload` object: arrivals + traces + traffic mix, composed.

A workload answers three questions about the traffic a serving system sees:

* **when** do requests arrive (:class:`~repro.workloads.arrivals.ArrivalProcess`),
* **what** do they look up (:class:`~repro.workloads.traces.TraceModel`),
* **which** models do they target (:class:`~repro.workloads.mix.TrafficMix`).

All three are stateless descriptions; randomness enters through one seed at
generation time, split explicitly (via :class:`numpy.random.SeedSequence`)
between the arrival stream, the mix tagging and the trace draws, so changing
how one dimension consumes randomness never perturbs the others.

Workloads are the unit the rest of the system speaks:
``ServingSimulator.serve_workload``, ``HeterogeneousCluster.serve_workload``
and ``Experiment.workloads(...).serve(...)`` all take one, and backend
capability flags (:class:`repro.backends.base.BackendCapabilities`) gate
which workloads a backend can price.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.workloads.arrivals import ArrivalProcess, InferenceRequest, as_arrival_process
from repro.workloads.mix import TrafficMix
from repro.workloads.traces import DLRMBatch, TraceModel, UniformTrace, model_batch

#: Capability tags a workload may require from a backend.
TAG_MULTI_MODEL = "multi-model"
TAG_SKEWED_TRACE = "skewed-trace"


@dataclass(frozen=True)
class Workload:
    """One complete, composable traffic description.

    Attributes:
        arrivals: When requests arrive.  A bare number is accepted and
            interpreted as a Poisson rate in QPS.
        trace: Sparse-index locality model (uniform by default).
        mix: Which models the requests target; ``None`` leaves the model
            choice to the serving front-end (single-model streams).
        name: Label used by experiment grids and the CLI; derived from the
            parts when omitted.
    """

    arrivals: ArrivalProcess
    trace: TraceModel = field(default_factory=UniformTrace)
    mix: Optional[TrafficMix] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", as_arrival_process(self.arrivals))
        if not isinstance(self.trace, TraceModel):
            raise SimulationError(
                f"trace must be a TraceModel, got {self.trace!r}"
            )
        if self.mix is not None and not isinstance(self.mix, TrafficMix):
            raise SimulationError(f"mix must be a TrafficMix, got {self.mix!r}")
        if not self.name:
            object.__setattr__(self, "name", self._derive_name())

    def _derive_name(self) -> str:
        parts = [f"{self.arrivals.kind}-{self.arrivals.mean_rate_qps:,.0f}qps"]
        if self.trace.kind != "uniform":
            parts.append(self.trace.kind)
        if self.mix is not None and self.mix.is_multi_model:
            parts.append(f"mix{len(self.mix)}")
        return "-".join(parts)

    # ------------------------------------------------------------------
    # Seed splitting: one user-facing seed fans out into independent
    # sub-streams so arrivals, mix tags and traces never share an RNG.
    # ------------------------------------------------------------------
    @staticmethod
    def _split_seed(seed: int) -> Tuple[np.random.SeedSequence, ...]:
        return tuple(np.random.SeedSequence(seed).spawn(3))

    # ------------------------------------------------------------------
    def requests(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> Iterator[InferenceRequest]:
        """A lazy, deterministic stream of (optionally model-tagged) requests.

        Exactly one of ``duration_s`` / ``num_requests`` must be provided.
        The stream is time-ordered and holds O(1) memory: serving drivers
        pull arrivals on demand, so a 5M-request run materializes only the
        requests currently in flight.
        """
        arrival_seed, mix_seed, _ = self._split_seed(seed)
        names = self.mix.name_stream(mix_seed) if self.mix is not None else None
        return self.arrivals.arrivals(
            duration_s=duration_s,
            num_requests=num_requests,
            seed=arrival_seed,
            model_names=names,
        )

    def request_list(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: int = 0,
    ) -> List[InferenceRequest]:
        """Eagerly materialized :meth:`requests` (small streams only)."""
        return list(self.requests(duration_s=duration_s, num_requests=num_requests, seed=seed))

    # ------------------------------------------------------------------
    def batch(self, model: DLRMConfig, batch_size: int, seed: int = 0) -> DLRMBatch:
        """One inference batch drawn from this workload's trace model."""
        _, _, trace_seed = self._split_seed(seed)
        rng = np.random.default_rng(trace_seed)
        return model_batch(self.trace, rng, model, batch_size)

    def batches(
        self, model: DLRMConfig, batch_size: int, count: int, seed: int = 0
    ) -> Iterator[DLRMBatch]:
        """``count`` independent batches (one shared trace RNG stream)."""
        _, _, trace_seed = self._split_seed(seed)
        rng = np.random.default_rng(trace_seed)
        for _ in range(count):
            yield model_batch(self.trace, rng, model, batch_size)

    # ------------------------------------------------------------------
    @property
    def models(self) -> Tuple[DLRMConfig, ...]:
        """Models this workload targets (empty when the front-end decides)."""
        if self.mix is None:
            return ()
        return self.mix.models

    def required_tags(self) -> Tuple[str, ...]:
        """Capability tags a backend must support to price this workload."""
        tags: List[str] = []
        if self.mix is not None and self.mix.is_multi_model:
            tags.append(TAG_MULTI_MODEL)
        if self.trace.kind not in ("uniform", "abstract"):
            tags.append(TAG_SKEWED_TRACE)
        return tuple(tags)

    def incompatibility(self, capabilities) -> Optional[str]:
        """Why a backend with ``capabilities`` cannot serve this workload.

        Returns ``None`` when the backend is compatible.  ``capabilities``
        is duck-typed (any object with the
        :class:`~repro.backends.base.BackendCapabilities` gating fields) so
        this module never imports the backends package.
        """
        tags = self.required_tags()
        if TAG_MULTI_MODEL in tags and not getattr(
            capabilities, "supports_multi_model", True
        ):
            return (
                f"workload {self.name!r} blends {len(self.mix)} models but the "
                "backend cannot serve multi-model traffic"
            )
        if TAG_SKEWED_TRACE in tags and not getattr(
            capabilities, "supports_skewed_traces", True
        ):
            return (
                f"workload {self.name!r} uses a {self.trace.kind} trace model but "
                "the backend only prices uniform-locality traffic"
            )
        return None

    def compatible_with(self, capabilities) -> bool:
        """True when a backend with ``capabilities`` can serve this workload."""
        return self.incompatibility(capabilities) is None

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-part one-liner for tables, reports and the CLI."""
        parts = [self.arrivals.describe(), f"trace: {self.trace.describe()}"]
        if self.mix is not None:
            parts.append(f"mix: {self.mix.label}")
        return " | ".join(parts)

    def __repr__(self) -> str:
        return f"Workload({self.name}: {self.describe()})"


def poisson_workload(
    rate_qps: float,
    trace: Optional[TraceModel] = None,
    mix: Optional[TrafficMix] = None,
    name: str = "",
) -> Workload:
    """Shorthand for the most common workload shape."""
    from repro.workloads.arrivals import PoissonArrivals

    return Workload(
        arrivals=PoissonArrivals(rate_qps=rate_qps),
        trace=trace if trace is not None else UniformTrace(),
        mix=mix,
        name=name,
    )
