"""Composable, streaming workload subsystem: traces, arrivals, traffic mixes.

The paper's central claim rests on workload shape — sparse embedding gathers
with poor locality dominate CPU inference, and the hybrid device wins across
batch sizes and traffic levels.  This package makes workload shape a
first-class, composable object:

* :class:`ArrivalProcess` — *when* requests arrive (Poisson, bursty on/off,
  diurnal, constant-rate, replay), all lazy iterators with explicit seeds.
* :class:`TraceModel` — *what* they look up (uniform, Zipf, hot/cold working
  set, per-table skew overrides).
* :class:`TrafficMix` — *which* models they target (weighted multi-model
  blends served by one cluster).
* :class:`Workload` — the three composed, with explicit seed-splitting; the
  unit that serving simulators, experiment grids and the CLI consume.

The legacy entry points (``repro.dlrm.trace``, ``repro.serving.requests``)
remain as deprecated shims re-exporting from here.
"""

from repro.workloads.arrivals import (
    CHUNK_SIZE,
    ArrivalProcess,
    ConstantRateArrivals,
    DiurnalArrivals,
    InferenceRequest,
    OnOffArrivals,
    PoissonArrivals,
    PoissonRequestGenerator,
    ReplayArrivals,
    as_arrival_process,
    merge_streams,
)
from repro.workloads.traces import (
    DLRMBatch,
    ModelTraceGenerator,
    PerTableTrace,
    SparseTrace,
    TraceGenerator,
    TraceModel,
    UniformTrace,
    UniformTraceGenerator,
    WorkingSetTrace,
    ZipfianTrace,
    ZipfianTraceGenerator,
    concatenate_traces,
    model_batch,
    table_trace,
)
from repro.workloads.mix import MixComponent, TrafficMix
from repro.workloads.updates import (
    UPDATE_MODES,
    EmbeddingUpdate,
    UpdateProcess,
)
from repro.workloads.workload import (
    TAG_MULTI_MODEL,
    TAG_SKEWED_TRACE,
    Workload,
    poisson_workload,
)
from repro.workloads.catalog import (
    ARRIVAL_CATALOG,
    SCENARIO_CATALOG,
    TRACE_CATALOG,
    UPDATE_SCENARIO_CATALOG,
    CatalogEntry,
    ChaosScenario,
    UpdateScenario,
    parse_arrival_spec,
    parse_trace_spec,
    parse_update_spec,
    parse_workload_spec,
    resolve_fault_spec,
    resolve_update_spec,
)

__all__ = [
    "CHUNK_SIZE",
    "ArrivalProcess",
    "PoissonArrivals",
    "ConstantRateArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "ReplayArrivals",
    "InferenceRequest",
    "PoissonRequestGenerator",
    "as_arrival_process",
    "merge_streams",
    "TraceModel",
    "UniformTrace",
    "ZipfianTrace",
    "WorkingSetTrace",
    "PerTableTrace",
    "TraceGenerator",
    "UniformTraceGenerator",
    "ZipfianTraceGenerator",
    "ModelTraceGenerator",
    "SparseTrace",
    "DLRMBatch",
    "concatenate_traces",
    "model_batch",
    "table_trace",
    "MixComponent",
    "TrafficMix",
    "Workload",
    "poisson_workload",
    "TAG_MULTI_MODEL",
    "TAG_SKEWED_TRACE",
    "EmbeddingUpdate",
    "UpdateProcess",
    "UPDATE_MODES",
    "CatalogEntry",
    "ChaosScenario",
    "UpdateScenario",
    "ARRIVAL_CATALOG",
    "SCENARIO_CATALOG",
    "TRACE_CATALOG",
    "UPDATE_SCENARIO_CATALOG",
    "parse_arrival_spec",
    "parse_trace_spec",
    "parse_update_spec",
    "parse_workload_spec",
    "resolve_fault_spec",
    "resolve_update_spec",
]
