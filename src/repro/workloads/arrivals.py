"""Request-arrival processes: lazy, seedable generators of inference traffic.

An :class:`ArrivalProcess` describes *when* requests reach the serving
system.  Every process is a stateless description — all randomness enters
through an explicit seed at iteration time, so the same process object can
drive many independent streams — and every stream is a lazy iterator, so a
multi-million-request serving run never materializes more than the requests
currently in flight.

Provided processes:

* :class:`PoissonArrivals` — memoryless open-loop traffic (the classic
  serving assumption; exponential inter-arrival times).
* :class:`OnOffArrivals` — a two-state Markov-modulated Poisson process
  (MMPP-2): bursts at one rate, lulls at another, with exponentially
  distributed sojourns.  Models flash crowds and batchy upstream callers.
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose rate
  follows a sinusoidal day-curve between a trough and a peak (sampled by
  thinning).  Models the day/night swing of a user-facing service.
* :class:`ConstantRateArrivals` — deterministic, evenly spaced arrivals
  (closed-loop load-generator behaviour; zero burstiness baseline).
* :class:`ReplayArrivals` — replay an explicit array of arrival timestamps
  (production traces, hand-built worst cases).

:class:`PoissonRequestGenerator` is the legacy eager API, kept working (and
re-exported through the deprecated :mod:`repro.serving.requests` shim); new
code should compose an :class:`ArrivalProcess` into a
:class:`repro.workloads.Workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError

#: Arrival times are drawn/cumsum'd in chunks of this many samples: large
#: enough that numpy vectorization dominates, small enough that a stream
#: holds only a few thousand floats ahead of the simulation clock.
CHUNK_SIZE = 4096

#: Seed material accepted everywhere: an integer or a numpy SeedSequence
#: (the latter is how :class:`repro.workloads.Workload` splits its seed).
SeedLike = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class InferenceRequest:
    """One ranking request (one sample) arriving at the serving system.

    Attributes:
        request_id: Monotonically increasing identifier.
        arrival_time_s: Time the request entered the queue.
        model_name: Model this request targets; ``None`` means "whatever
            model the serving replica is configured with" (single-model
            streams).  Multi-model traffic mixes tag every request.
    """

    request_id: int
    arrival_time_s: float
    model_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise SimulationError(f"request_id must be non-negative, got {self.request_id}")
        if self.arrival_time_s < 0:
            raise SimulationError(
                f"arrival_time_s must be non-negative, got {self.arrival_time_s}"
            )


def _make_rng(seed: SeedLike) -> np.random.Generator:
    return np.random.default_rng(seed)


class ArrivalProcess:
    """Base class: a stateless description of an arrival-time distribution.

    Subclasses implement :meth:`times` — an *infinite* lazy iterator of
    strictly increasing arrival timestamps for a given seed.  The base class
    turns timestamps into bounded :class:`InferenceRequest` streams.
    """

    #: Short machine-readable kind, used by capability gating and the CLI.
    kind: str = "abstract"

    @property
    def mean_rate_qps(self) -> float:
        """Long-run average arrival rate in queries per second."""
        raise NotImplementedError

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        """Yield an unbounded, non-decreasing stream of arrival times."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def arrivals(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: SeedLike = 0,
        model_names: Optional[Iterator[Optional[str]]] = None,
    ) -> Iterator[InferenceRequest]:
        """Lazily generate arrivals for a time window or a request count.

        Exactly one of ``duration_s`` / ``num_requests`` must be provided.

        Args:
            duration_s: Generate every arrival with ``time <= duration_s``.
            num_requests: Generate exactly this many arrivals.
            seed: Stream seed; identical seeds give identical streams.
            model_names: Optional iterator of per-request model tags (used
                by :class:`~repro.workloads.mix.TrafficMix`).
        """
        if (duration_s is None) == (num_requests is None):
            raise SimulationError("provide exactly one of duration_s or num_requests")
        if duration_s is not None and duration_s <= 0:
            raise SimulationError(f"duration_s must be positive, got {duration_s}")
        if num_requests is not None and num_requests <= 0:
            raise SimulationError(f"num_requests must be positive, got {num_requests}")

        request_id = 0
        for now in self.times(seed):
            if duration_s is not None and now > duration_s:
                return
            name = next(model_names) if model_names is not None else None
            yield InferenceRequest(
                request_id=request_id, arrival_time_s=now, model_name=name
            )
            request_id += 1
            if num_requests is not None and request_id >= num_requests:
                return

    def generate(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> List[InferenceRequest]:
        """Eagerly materialize :meth:`arrivals` (small streams only)."""
        return list(self.arrivals(duration_s=duration_s, num_requests=num_requests, seed=seed))

    def describe(self) -> str:
        """One-line human-readable summary for tables and reports."""
        return f"{self.kind} @ {self.mean_rate_qps:,.0f} QPS"


def _check_rate(rate_qps: float, what: str = "rate_qps") -> None:
    if rate_qps <= 0:
        raise SimulationError(f"{what} must be positive, got {rate_qps}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival times at a fixed rate.

    The stream is drawn in vectorized chunks; numpy's ``Generator`` produces
    the same variate sequence whether drawn one at a time or in blocks, so
    this is draw-for-draw identical to the legacy per-request loop.
    """

    rate_qps: float
    kind = "poisson"

    def __post_init__(self) -> None:
        _check_rate(self.rate_qps)

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        rng = _make_rng(seed)
        scale = 1.0 / self.rate_qps
        now = 0.0
        while True:
            gaps = rng.exponential(scale, size=CHUNK_SIZE)
            # Fold the running clock into the first gap *before* the cumsum
            # so float additions associate exactly like the sequential
            # ``now += gap`` loop — bit-identical across chunk boundaries.
            gaps[0] += now
            np.cumsum(gaps, out=gaps)
            now = float(gaps[-1])
            yield from gaps.tolist()


@dataclass(frozen=True)
class ConstantRateArrivals(ArrivalProcess):
    """Deterministic, evenly spaced arrivals (a closed-loop load generator).

    Request ``k`` (1-based) arrives at ``k / rate_qps`` — the same "first
    arrival strictly after time zero" convention the stochastic processes
    follow, with zero variance.
    """

    rate_qps: float
    kind = "constant"

    def __post_init__(self) -> None:
        _check_rate(self.rate_qps)

    @property
    def mean_rate_qps(self) -> float:
        return self.rate_qps

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        period = 1.0 / self.rate_qps
        k = 1
        while True:
            block = np.arange(k, k + CHUNK_SIZE, dtype=np.float64) * period
            k += CHUNK_SIZE
            yield from block.tolist()


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty two-state Markov-modulated Poisson process (MMPP-2).

    The source alternates between an ON state (arrivals at ``on_rate_qps``)
    and an OFF state (arrivals at ``off_rate_qps``, which may be zero for
    pure silence); sojourn times in each state are exponential with the
    given means.  This is the standard analytic model for bursty traffic —
    flash crowds, retry storms, batchy upstream callers.

    Attributes:
        on_rate_qps: Arrival rate while the source is ON.
        off_rate_qps: Arrival rate while the source is OFF (``>= 0``).
        mean_on_s: Mean sojourn in the ON state.
        mean_off_s: Mean sojourn in the OFF state.
    """

    on_rate_qps: float
    off_rate_qps: float = 0.0
    mean_on_s: float = 0.1
    mean_off_s: float = 0.1
    kind = "bursty"

    def __post_init__(self) -> None:
        _check_rate(self.on_rate_qps, "on_rate_qps")
        if self.off_rate_qps < 0:
            raise SimulationError(
                f"off_rate_qps must be non-negative, got {self.off_rate_qps}"
            )
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise SimulationError(
                f"sojourn means must be positive, got on={self.mean_on_s}, "
                f"off={self.mean_off_s}"
            )

    @property
    def mean_rate_qps(self) -> float:
        total = self.mean_on_s + self.mean_off_s
        return (
            self.on_rate_qps * self.mean_on_s + self.off_rate_qps * self.mean_off_s
        ) / total

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        rng = _make_rng(seed)
        now = 0.0
        on = True
        while True:
            rate = self.on_rate_qps if on else self.off_rate_qps
            sojourn = float(rng.exponential(self.mean_on_s if on else self.mean_off_s))
            end = now + sojourn
            if rate > 0.0:
                t = now
                scale = 1.0 / rate
                # Size chunks near the sojourn's expected arrival count so
                # short bursts do not discard most of a 4096-draw block.
                chunk = int(min(CHUNK_SIZE, max(64, rate * sojourn * 1.25 + 16)))
                while True:
                    gaps = rng.exponential(scale, size=chunk)
                    gaps[0] += t
                    np.cumsum(gaps, out=gaps)
                    inside = gaps[gaps <= end]
                    yield from inside.tolist()
                    if len(inside) < len(gaps):
                        break
                    t = float(gaps[-1])
            now = end
            on = not on


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Day-curve traffic: a non-homogeneous Poisson process via thinning.

    The instantaneous rate follows a raised sinusoid between ``trough_qps``
    and ``peak_qps`` with the given period::

        rate(t) = trough + (peak - trough) * (1 - cos(2 pi t / period)) / 2

    so a stream starts at the trough, crests mid-period and returns.
    Candidates are drawn at ``peak_qps`` and accepted with probability
    ``rate(t) / peak_qps`` (Lewis-Shedler thinning), which is exact for any
    bounded rate curve.

    Attributes:
        trough_qps: Minimum (night-time) arrival rate.
        peak_qps: Maximum (prime-time) arrival rate.
        period_s: Length of one full day-curve cycle in simulated seconds.
    """

    trough_qps: float
    peak_qps: float
    period_s: float = 1.0
    kind = "diurnal"

    def __post_init__(self) -> None:
        _check_rate(self.trough_qps, "trough_qps")
        _check_rate(self.peak_qps, "peak_qps")
        if self.peak_qps < self.trough_qps:
            raise SimulationError(
                f"peak_qps ({self.peak_qps}) must be >= trough_qps ({self.trough_qps})"
            )
        if self.period_s <= 0:
            raise SimulationError(f"period_s must be positive, got {self.period_s}")

    @property
    def mean_rate_qps(self) -> float:
        return (self.trough_qps + self.peak_qps) / 2.0

    def rate_at(self, time_s: float) -> float:
        """The instantaneous arrival rate of the day curve at ``time_s``."""
        swing = (self.peak_qps - self.trough_qps) / 2.0
        return self.trough_qps + swing * (1.0 - np.cos(2.0 * np.pi * time_s / self.period_s))

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        rng = _make_rng(seed)
        scale = 1.0 / self.peak_qps
        now = 0.0
        while True:
            gaps = rng.exponential(scale, size=CHUNK_SIZE)
            gaps[0] += now
            np.cumsum(gaps, out=gaps)
            now = float(gaps[-1])
            accept = rng.random(CHUNK_SIZE) * self.peak_qps <= self.rate_at(gaps)
            yield from gaps[accept].tolist()


@dataclass(frozen=True)
class ReplayArrivals(ArrivalProcess):
    """Replay an explicit, non-decreasing array of arrival timestamps.

    The seed is accepted (and ignored) so replays compose with everything
    that seeds its arrival process.  Unlike the stochastic processes the
    stream is finite; bounding by ``num_requests`` beyond its length simply
    exhausts it.
    """

    arrival_times_s: Tuple[float, ...]
    kind = "replay"

    def __init__(self, arrival_times_s: Union[Sequence[float], np.ndarray]):
        times = np.asarray(arrival_times_s, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise SimulationError("replay needs a non-empty 1-D array of arrival times")
        if times[0] < 0:
            raise SimulationError("replay arrival times must be non-negative")
        if np.any(np.diff(times) < 0):
            raise SimulationError("replay arrival times must be non-decreasing")
        object.__setattr__(self, "arrival_times_s", tuple(times.tolist()))

    @property
    def mean_rate_qps(self) -> float:
        span = self.arrival_times_s[-1]
        return len(self.arrival_times_s) / span if span > 0 else float("inf")

    def times(self, seed: SeedLike = 0) -> Iterator[float]:
        return iter(self.arrival_times_s)

    def describe(self) -> str:
        return f"replay of {len(self.arrival_times_s)} recorded arrivals"


class PoissonRequestGenerator:
    """Legacy eager Poisson generator (prefer :class:`PoissonArrivals`).

    Every :meth:`generate` call restarts from the stored seed, so two calls
    with the same arguments return identical arrivals — "same seed" always
    means "same stream", whether or not the instance is fresh.

    Args:
        rate_qps: Average arrival rate in queries (samples) per second.
        seed: RNG seed; arrivals are fully deterministic given the seed.
    """

    def __init__(self, rate_qps: float, seed: int = 0):
        _check_rate(rate_qps)
        self.rate_qps = rate_qps
        self._seed = seed
        self._process = PoissonArrivals(rate_qps=rate_qps)

    @property
    def seed(self) -> int:
        return self._seed

    def generate(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> List[InferenceRequest]:
        """Generate arrivals for a time window or a fixed request count.

        Exactly one of ``duration_s`` / ``num_requests`` must be provided.
        """
        return self._process.generate(
            duration_s=duration_s, num_requests=num_requests, seed=self._seed
        )

    def stream(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> Iterator[InferenceRequest]:
        """Lazy counterpart of :meth:`generate` (same stream, no list)."""
        return self._process.arrivals(
            duration_s=duration_s, num_requests=num_requests, seed=self._seed
        )


def as_arrival_process(spec: Union[ArrivalProcess, float, int]) -> ArrivalProcess:
    """Coerce a bare number (QPS) or a process into an :class:`ArrivalProcess`."""
    if isinstance(spec, ArrivalProcess):
        return spec
    if isinstance(spec, (int, float)):
        return PoissonArrivals(rate_qps=float(spec))
    raise SimulationError(
        f"cannot interpret {spec!r} as an arrival process; pass an "
        "ArrivalProcess or a Poisson rate in QPS"
    )


def merge_streams(
    streams: Sequence[Iterable[InferenceRequest]],
) -> Iterator[InferenceRequest]:
    """Merge several time-ordered request streams into one, lazily.

    Request IDs are renumbered to stay monotonic in the merged order; ties
    resolve toward the earlier stream (stable).
    """
    import heapq

    if not streams:
        raise SimulationError("cannot merge zero request streams")
    heap: List[Tuple[float, int, InferenceRequest, Iterator[InferenceRequest]]] = []
    for index, stream in enumerate(streams):
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.arrival_time_s, index, first, iterator))
    heapq.heapify(heap)
    request_id = 0
    while heap:
        time, index, request, iterator = heapq.heappop(heap)
        yield InferenceRequest(
            request_id=request_id,
            arrival_time_s=request.arrival_time_s,
            model_name=request.model_name,
        )
        request_id += 1
        successor = next(iterator, None)
        if successor is not None:
            heapq.heappush(heap, (successor.arrival_time_s, index, successor, iterator))
