"""Weighted multi-model traffic blends.

A :class:`TrafficMix` describes one serving cluster handling several DLRM
configurations concurrently — e.g. 70 % of requests hitting the mid-size
ranking model and 30 % hitting a heavyweight re-ranker.  The mix tags each
generated request with its target model name; the serving replicas group
batch segments per model and price each segment with that model's backend
prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple, Union

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import SimulationError

#: Model-name tags are drawn in chunks of this many samples.
_NAME_CHUNK = 4096


@dataclass(frozen=True)
class MixComponent:
    """One model of a traffic mix and its share of the request stream."""

    model: DLRMConfig
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SimulationError(
                f"mix weight for {self.model.name} must be positive, got {self.weight}"
            )


class TrafficMix:
    """A weighted blend of DLRM configurations served by one cluster.

    Args:
        components: ``(model, weight)`` pairs or :class:`MixComponent`
            objects.  Weights are relative (normalized internally) and
            model names must be distinct.
    """

    def __init__(
        self,
        components: Sequence[Union[MixComponent, Tuple[DLRMConfig, float]]],
    ):
        if not components:
            raise SimulationError("a traffic mix needs at least one model")
        parsed = []
        for component in components:
            if not isinstance(component, MixComponent):
                model, weight = component
                component = MixComponent(model=model, weight=float(weight))
            parsed.append(component)
        names = [component.model.name for component in parsed]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"mix models must have distinct names, got {names}"
            )
        self.components: Tuple[MixComponent, ...] = tuple(parsed)
        total = sum(component.weight for component in self.components)
        self._probabilities = np.array(
            [component.weight / total for component in self.components], dtype=np.float64
        )

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, model: DLRMConfig) -> "TrafficMix":
        """A degenerate mix: every request targets one model."""
        return cls([(model, 1.0)])

    @classmethod
    def of(cls, *pairs: Tuple[DLRMConfig, float]) -> "TrafficMix":
        """``TrafficMix.of((DLRM2, 0.7), (DLRM4, 0.3))``."""
        return cls(list(pairs))

    # ------------------------------------------------------------------
    @property
    def models(self) -> Tuple[DLRMConfig, ...]:
        return tuple(component.model for component in self.components)

    @property
    def model_names(self) -> Tuple[str, ...]:
        return tuple(component.model.name for component in self.components)

    @property
    def is_multi_model(self) -> bool:
        return len(self.components) > 1

    def probability_of(self, model_name: str) -> float:
        """The normalized traffic share of one model."""
        for component, probability in zip(self.components, self._probabilities):
            if component.model.name == model_name:
                return float(probability)
        raise SimulationError(f"model {model_name!r} is not part of this mix")

    @property
    def label(self) -> str:
        """Compact description, e.g. ``"70%DLRM(2)+30%DLRM(4)"``."""
        if not self.is_multi_model:
            return self.components[0].model.name
        return "+".join(
            f"{probability:.0%}{component.model.name}"
            for component, probability in zip(self.components, self._probabilities)
        )

    def __len__(self) -> int:
        return len(self.components)

    def __repr__(self) -> str:
        return f"TrafficMix({self.label})"

    # ------------------------------------------------------------------
    def name_stream(self, seed) -> Iterator[str]:
        """An unbounded, seeded iterator of per-request model names."""
        rng = np.random.default_rng(seed)
        names = np.array(self.model_names, dtype=object)
        if len(names) == 1:
            only = str(names[0])
            while True:
                yield only
        while True:
            picks = rng.choice(len(names), size=_NAME_CHUNK, p=self._probabilities)
            for index in picks:
                yield str(names[index])

    def expected_shares(self) -> Dict[str, float]:
        """``{model name: normalized traffic share}``."""
        return {
            component.model.name: float(probability)
            for component, probability in zip(self.components, self._probabilities)
        }
