"""Rate-controlled embedding update streams (model-push traffic).

The serving paths in this repo treat the hot-row cache as read-only, but
production recommendation fleets continuously push freshly trained
embedding rows into serving.  An :class:`UpdateProcess` models that write
stream: push *times* come from any :class:`~repro.workloads.arrivals.ArrivalProcess`
(so storms can be Poisson, constant, bursty or diurnal just like reads),
and the *rows* each push touches are drawn from the same
:class:`~repro.workloads.traces.TraceModel` family that shapes reads — hot
rows are retrained most often, so write skew follows read skew unless a
different trace is given explicitly.

Determinism mirrors :class:`~repro.workloads.workload.Workload`: one seed
is split with ``np.random.SeedSequence.spawn`` into independent children
for push times and row draws, so two streams built from equal arguments
are bit-identical and neither perturbs the serving-side trace RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import ConfigurationError
from repro.workloads.arrivals import ArrivalProcess, SeedLike, as_arrival_process
from repro.workloads.traces import TraceModel, UniformTrace

#: Freshness modes an update stream can drive a cache with.
UPDATE_MODES = ("invalidate", "write-through", "ignore")


@dataclass(frozen=True)
class EmbeddingUpdate:
    """One model push: ``rows`` of one table updated at ``time_s``."""

    sequence: int
    time_s: float
    table_index: int
    rows: np.ndarray


@dataclass(frozen=True)
class UpdateProcess:
    """A seeded stream of embedding-row pushes into serving.

    Args:
        arrivals: Push-time process, or a bare rate in pushes/s (coerced
            to Poisson, mirroring ``Workload``'s arrivals coercion).
        rows_per_update: Rows each push rewrites (> 0).
        mode: How caches react to a push — ``"invalidate"`` drops the rows
            (next read misses), ``"write-through"`` refreshes them in
            place (reads stay hits but the refresh costs gather time),
            ``"ignore"`` applies nothing and only counts stale hits.
        trace: Row-skew model of the pushed rows; ``None`` uses the
            serving workload's read trace at serve time so write skew
            matches read skew.
        name: Optional label for reports.
    """

    arrivals: Union[ArrivalProcess, float, int]
    rows_per_update: int = 1
    mode: str = "invalidate"
    trace: Optional[TraceModel] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", as_arrival_process(self.arrivals))
        if self.mode not in UPDATE_MODES:
            raise ConfigurationError(
                f"update mode must be one of {UPDATE_MODES}, got {self.mode!r}"
            )
        if int(self.rows_per_update) <= 0:
            raise ConfigurationError(
                f"rows_per_update must be positive, got {self.rows_per_update}"
            )
        object.__setattr__(self, "rows_per_update", int(self.rows_per_update))

    # ------------------------------------------------------------------
    @property
    def mean_push_rate(self) -> float:
        """Mean pushes per second."""
        return self.arrivals.mean_rate_qps

    @property
    def mean_row_rate(self) -> float:
        """Mean updated rows per second."""
        return self.arrivals.mean_rate_qps * self.rows_per_update

    def label(self) -> str:
        """Stable axis label for grids/reports."""
        if self.name:
            return self.name
        return f"{self.mode}:{self.mean_push_rate:g}x{self.rows_per_update}"

    def describe(self) -> str:
        return (
            f"{self.mode} pushes, {self.arrivals.describe()}, "
            f"{self.rows_per_update} rows/push"
        )

    # ------------------------------------------------------------------
    def events(
        self,
        model: DLRMConfig,
        seed: SeedLike = 0,
        default_trace: Optional[TraceModel] = None,
    ) -> Iterator[EmbeddingUpdate]:
        """Lazily generate the (infinite) push stream against ``model``.

        Each push picks a table weighted by its row count (bigger tables
        retrain more rows) and draws ``rows_per_update`` row IDs from the
        trace model.  The stream never ends on its own; the serving driver
        stops pulling when the request stream drains.
        """
        trace = self.trace
        if trace is None:
            trace = default_trace if default_trace is not None else UniformTrace()
        entropy = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        time_seed, draw_seed = entropy.spawn(2)
        rng = np.random.default_rng(draw_seed)
        tables = model.tables
        weights = np.array([table.num_rows for table in tables], dtype=float)
        weights /= weights.sum()
        indices = np.arange(len(tables))
        rows_per_update = self.rows_per_update
        for sequence, time_s in enumerate(self.arrivals.times(time_seed)):
            table_index = int(rng.choice(indices, p=weights))
            rows = trace.draw(
                rng, tables[table_index].num_rows, rows_per_update, table_index
            )
            yield EmbeddingUpdate(
                sequence=sequence,
                time_s=float(time_s),
                table_index=table_index,
                rows=rows,
            )
