"""Sparse-index trace generation for DLRM inference.

A *trace* is the stream of sparse indices that an inference batch looks up
from each embedding table, expressed exactly like Caffe2's
``SparseLengthsSum`` operator in the paper's Fig. 2: a flat index array plus
a per-sample offset array.

Two layers live here:

* The **legacy generators** (:class:`TraceGenerator`,
  :class:`UniformTraceGenerator`, :class:`ZipfianTraceGenerator`) — stateful
  objects moved unchanged from ``repro.dlrm.trace``; the shim there still
  re-exports them.
* The **trace models** (:class:`TraceModel` and friends) — stateless
  index-distribution descriptions used by :class:`repro.workloads.Workload`.
  A model only knows how to draw row IDs given an RNG, which is what lets a
  workload split seeds explicitly and lets per-table overrides compose
  (:class:`PerTableTrace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config.models import DLRMConfig, EmbeddingTableConfig
from repro.errors import TraceError


@dataclass(frozen=True)
class SparseTrace:
    """Lookup indices for one embedding table over one batch.

    Attributes:
        indices: Flat ``int64`` array of row IDs, concatenated over samples.
        offsets: ``int64`` array of length ``batch_size + 1``; sample ``i``
            owns ``indices[offsets[i]:offsets[i+1]]``.
        num_rows: Number of rows in the table the indices refer to.
    """

    indices: np.ndarray
    offsets: np.ndarray
    num_rows: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices)
        offsets = np.asarray(self.offsets)
        if indices.ndim != 1:
            raise TraceError(f"indices must be one-dimensional, got shape {indices.shape}")
        if offsets.ndim != 1 or len(offsets) < 2:
            raise TraceError(
                "offsets must be one-dimensional with at least two entries "
                f"(got shape {offsets.shape})"
            )
        if offsets[0] != 0 or offsets[-1] != len(indices):
            raise TraceError(
                "offsets must start at 0 and end at len(indices): "
                f"got first={offsets[0]}, last={offsets[-1]}, len={len(indices)}"
            )
        if np.any(np.diff(offsets) < 0):
            raise TraceError("offsets must be non-decreasing")
        if self.num_rows <= 0:
            raise TraceError(f"num_rows must be positive, got {self.num_rows}")
        if len(indices) and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise TraceError(
                f"indices must lie in [0, {self.num_rows}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )

    @property
    def batch_size(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_lookups(self) -> int:
        return int(len(self.indices))

    def lookups_for_sample(self, sample: int) -> np.ndarray:
        """Return the row IDs gathered for one sample."""
        if not 0 <= sample < self.batch_size:
            raise IndexError(f"sample {sample} out of range for batch {self.batch_size}")
        return self.indices[self.offsets[sample] : self.offsets[sample + 1]]

    def unique_rows(self) -> int:
        """Number of distinct rows touched by the whole batch."""
        if self.total_lookups == 0:
            return 0
        return int(len(np.unique(self.indices)))


@dataclass(frozen=True)
class DLRMBatch:
    """One inference batch: dense features plus one trace per embedding table."""

    dense_features: np.ndarray
    sparse_traces: Tuple[SparseTrace, ...]

    def __post_init__(self) -> None:
        dense = np.asarray(self.dense_features)
        if dense.ndim != 2:
            raise TraceError(
                f"dense_features must be [batch, features], got shape {dense.shape}"
            )
        for table_id, trace in enumerate(self.sparse_traces):
            if trace.batch_size != dense.shape[0]:
                raise TraceError(
                    f"trace for table {table_id} has batch size {trace.batch_size} "
                    f"but dense features have batch size {dense.shape[0]}"
                )

    @property
    def batch_size(self) -> int:
        return int(self.dense_features.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.sparse_traces)

    @property
    def total_lookups(self) -> int:
        return sum(trace.total_lookups for trace in self.sparse_traces)

    def embedding_bytes(self, embedding_dim: int, dtype_bytes: int = 4) -> int:
        """Useful bytes gathered from embedding tables for this batch."""
        return self.total_lookups * embedding_dim * dtype_bytes


# ----------------------------------------------------------------------
# Stateless trace models (the repro.workloads abstraction).
# ----------------------------------------------------------------------
class TraceModel:
    """A stateless distribution over the rows of an embedding table.

    Models draw row IDs given an explicit RNG — they hold no generator
    state of their own, so one model instance can parameterize any number
    of independently seeded streams.
    """

    #: Short machine-readable kind, used by the CLI catalog.
    kind: str = "abstract"

    def draw(
        self,
        rng: np.random.Generator,
        num_rows: int,
        count: int,
        table_index: Optional[int] = None,
    ) -> np.ndarray:
        """Draw ``count`` row IDs in ``[0, num_rows)`` as an int64 array."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


@dataclass(frozen=True)
class UniformTrace(TraceModel):
    """Rows drawn uniformly at random — the paper's low-locality regime."""

    kind = "uniform"

    def draw(self, rng, num_rows, count, table_index=None):
        return rng.integers(0, num_rows, size=count, dtype=np.int64)


@dataclass(frozen=True)
class ZipfianTrace(TraceModel):
    """Rows drawn from a (truncated) Zipf distribution.

    Hot rows get low ranks; a fixed permutation derived from
    ``scatter_seed`` spreads them over the table so popular rows are not
    physically adjacent (which would overstate spatial locality).

    Attributes:
        alpha: Skew parameter; ``alpha -> 0`` approaches uniform and larger
            values concentrate traffic on a few hot rows.
        scatter_seed: Seed of the hot-row scattering permutation (part of
            the model description, not of the stream seed, so two streams
            with different seeds still agree on where the hot rows live).
    """

    alpha: float = 1.05
    scatter_seed: int = 0x5EED
    kind = "zipf"

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise TraceError(f"alpha must be positive, got {self.alpha}")

    def _cdf(self, num_rows: int) -> np.ndarray:
        key = (self.alpha, num_rows)
        cached = _ZIPF_CDF_CACHE.get(key)
        if cached is None:
            ranks = np.arange(1, num_rows + 1, dtype=np.float64)
            weights = ranks ** (-self.alpha)
            cached = np.cumsum(weights)
            cached /= cached[-1]
            _cache_put(_ZIPF_CDF_CACHE, key, cached)
        return cached

    def draw(self, rng, num_rows, count, table_index=None):
        cdf = self._cdf(num_rows)
        uniform = rng.random(count)
        ranks = np.searchsorted(cdf, uniform, side="left")
        permutation = _scatter_permutation(self.scatter_seed, num_rows)
        return permutation[np.clip(ranks, 0, num_rows - 1)]

    def describe(self) -> str:
        return f"zipf(alpha={self.alpha})"


#: Zipf CDFs and hot-row scatter permutations are pure functions of their
#: keys but O(num_rows) each, so the process-global caches are bounded:
#: oldest entries are evicted FIFO once the cap is reached (a sweep over
#: many alphas/table sizes stays at a bounded footprint).
_TRACE_CACHE_CAP = 32

_ZIPF_CDF_CACHE: Dict[Tuple[float, int], np.ndarray] = {}
_SCATTER_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def _cache_put(cache: Dict, key, value) -> None:
    while len(cache) >= _TRACE_CACHE_CAP:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _scatter_permutation(scatter_seed: int, num_rows: int) -> np.ndarray:
    key = (scatter_seed, num_rows)
    cached = _SCATTER_CACHE.get(key)
    if cached is None:
        cached = np.random.default_rng(scatter_seed ^ num_rows).permutation(num_rows)
        _cache_put(_SCATTER_CACHE, key, cached)
    return cached


@dataclass(frozen=True)
class WorkingSetTrace(TraceModel):
    """A hot/cold working-set model: a small row set absorbs most traffic.

    A fraction ``hot_fraction`` of the table's rows (scattered by a fixed
    permutation) receives ``hot_weight`` of the lookups, uniformly within
    the hot set; the remaining traffic is uniform over the cold rows.  This
    is the two-level locality model production traces are usually summarized
    by, and it gives cache studies a directly interpretable knob.

    Attributes:
        hot_fraction: Fraction of rows in the hot set (``0 < f < 1``).
        hot_weight: Probability a lookup targets the hot set (``0 < w < 1``).
        scatter_seed: Seed of the hot-row placement permutation.
    """

    hot_fraction: float = 0.05
    hot_weight: float = 0.9
    scatter_seed: int = 0x5EED
    kind = "hotcold"

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction < 1.0:
            raise TraceError(
                f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
            )
        if not 0.0 < self.hot_weight < 1.0:
            raise TraceError(f"hot_weight must be in (0, 1), got {self.hot_weight}")

    def draw(self, rng, num_rows, count, table_index=None):
        hot_rows = max(1, int(round(num_rows * self.hot_fraction)))
        cold_rows = num_rows - hot_rows
        is_hot = rng.random(count) < self.hot_weight
        draws = np.empty(count, dtype=np.int64)
        hot_count = int(is_hot.sum())
        draws[is_hot] = rng.integers(0, hot_rows, size=hot_count, dtype=np.int64)
        if cold_rows > 0:
            draws[~is_hot] = hot_rows + rng.integers(
                0, cold_rows, size=count - hot_count, dtype=np.int64
            )
        else:
            draws[~is_hot] = rng.integers(0, hot_rows, size=count - hot_count, dtype=np.int64)
        return _scatter_permutation(self.scatter_seed, num_rows)[draws]

    def describe(self) -> str:
        return (
            f"hot/cold ({self.hot_fraction:.0%} of rows take "
            f"{self.hot_weight:.0%} of lookups)"
        )


class PerTableTrace(TraceModel):
    """Per-table skew overrides around a default model.

    Args:
        default: Model applied to tables without an override.
        overrides: ``{table_index: TraceModel}`` exceptions — e.g. one
            user-history table that is far more skewed than the rest.
    """

    kind = "per-table"

    def __init__(self, default: TraceModel, overrides: Mapping[int, TraceModel]):
        if not isinstance(default, TraceModel):
            raise TraceError(f"default must be a TraceModel, got {default!r}")
        for index, model in overrides.items():
            if int(index) < 0:
                raise TraceError(f"table index must be non-negative, got {index}")
            if not isinstance(model, TraceModel):
                raise TraceError(f"override for table {index} is not a TraceModel")
        self.default = default
        self.overrides: Dict[int, TraceModel] = {int(i): m for i, m in overrides.items()}

    def model_for(self, table_index: Optional[int]) -> TraceModel:
        if table_index is None:
            return self.default
        return self.overrides.get(int(table_index), self.default)

    def draw(self, rng, num_rows, count, table_index=None):
        return self.model_for(table_index).draw(rng, num_rows, count, table_index)

    def describe(self) -> str:
        parts = ", ".join(
            f"table {index}: {model.describe()}"
            for index, model in sorted(self.overrides.items())
        )
        return f"{self.default.describe()} with overrides [{parts}]"


def table_trace(
    model: TraceModel,
    rng: np.random.Generator,
    table: EmbeddingTableConfig,
    batch_size: int,
    lookups_per_sample: Optional[int] = None,
    table_index: Optional[int] = None,
) -> SparseTrace:
    """Draw one table's :class:`SparseTrace` from a stateless trace model."""
    if batch_size <= 0:
        raise TraceError(f"batch_size must be positive, got {batch_size}")
    lookups = table.gathers if lookups_per_sample is None else lookups_per_sample
    if lookups < 0:
        raise TraceError(f"lookups_per_sample must be non-negative, got {lookups}")
    total = batch_size * lookups
    indices = model.draw(rng, table.num_rows, total, table_index).astype(np.int64)
    if lookups == 0:
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
    else:
        offsets = np.arange(0, total + 1, lookups, dtype=np.int64)
    return SparseTrace(indices=indices, offsets=offsets, num_rows=table.num_rows)


def model_batch(
    trace_model: TraceModel,
    rng: np.random.Generator,
    model: DLRMConfig,
    batch_size: int,
) -> DLRMBatch:
    """Draw dense features and per-table traces for a whole model."""
    dense = rng.standard_normal((batch_size, model.num_dense_features)).astype(np.float32)
    traces = tuple(
        table_trace(trace_model, rng, table, batch_size, table_index=index)
        for index, table in enumerate(model.tables)
    )
    return DLRMBatch(dense_features=dense, sparse_traces=traces)


# ----------------------------------------------------------------------
# Legacy stateful generators (moved verbatim from repro.dlrm.trace).
# ----------------------------------------------------------------------
class TraceGenerator:
    """Base class for sparse-index trace generators.

    Subclasses implement :meth:`_draw_indices`, producing row IDs for a given
    number of lookups over a table; the base class handles offsets, batching
    and whole-model batch generation.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def reseed(self, seed: int) -> None:
        """Reset the generator to a fresh deterministic state."""
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def table_trace(
        self,
        table: EmbeddingTableConfig,
        batch_size: int,
        lookups_per_sample: Optional[int] = None,
    ) -> SparseTrace:
        """Generate a trace for one table over a batch.

        Args:
            table: The table configuration (row count, default lookup count).
            batch_size: Number of samples in the batch.
            lookups_per_sample: Override of the per-sample lookup count; the
                table's configured ``gathers`` value is used when omitted.
        """
        if batch_size <= 0:
            raise TraceError(f"batch_size must be positive, got {batch_size}")
        lookups = table.gathers if lookups_per_sample is None else lookups_per_sample
        if lookups < 0:
            raise TraceError(f"lookups_per_sample must be non-negative, got {lookups}")
        total = batch_size * lookups
        indices = self._draw_indices(table.num_rows, total).astype(np.int64)
        if lookups == 0:
            offsets = np.zeros(batch_size + 1, dtype=np.int64)
        else:
            offsets = np.arange(0, total + 1, lookups, dtype=np.int64)
        return SparseTrace(indices=indices, offsets=offsets, num_rows=table.num_rows)

    def model_batch(self, model: DLRMConfig, batch_size: int) -> DLRMBatch:
        """Generate dense features and per-table traces for a whole model."""
        dense = self._rng.standard_normal(
            (batch_size, model.num_dense_features)
        ).astype(np.float32)
        traces = tuple(
            self.table_trace(table, batch_size) for table in model.tables
        )
        return DLRMBatch(dense_features=dense, sparse_traces=traces)

    def batches(
        self, model: DLRMConfig, batch_size: int, count: int
    ) -> Iterable[DLRMBatch]:
        """Yield ``count`` independent batches."""
        for _ in range(count):
            yield self.model_batch(model, batch_size)


class UniformTraceGenerator(TraceGenerator):
    """Indices drawn uniformly at random — the paper's low-locality regime."""

    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        return self._rng.integers(0, num_rows, size=count, dtype=np.int64)


class ZipfianTraceGenerator(TraceGenerator):
    """Indices drawn from a (truncated) Zipf distribution over table rows.

    Args:
        alpha: Skew parameter; ``alpha -> 0`` approaches uniform and larger
            values concentrate traffic on a few hot rows.
        seed: RNG seed.
    """

    def __init__(self, alpha: float = 1.05, seed: int = 0):
        if alpha <= 0:
            raise TraceError(f"alpha must be positive, got {alpha}")
        super().__init__(seed=seed)
        self.alpha = alpha
        self._cdf_cache: dict = {}

    def _cdf(self, num_rows: int) -> np.ndarray:
        cached = self._cdf_cache.get(num_rows)
        if cached is not None:
            return cached
        ranks = np.arange(1, num_rows + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf_cache[num_rows] = cdf
        return cdf

    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        cdf = self._cdf(num_rows)
        uniform = self._rng.random(count)
        # Hot rows get low ranks; scatter them over the table with a fixed
        # permutation derived from the seed so that "popular" rows are not
        # physically adjacent (which would overstate spatial locality).
        ranks = np.searchsorted(cdf, uniform, side="left")
        permutation = np.random.default_rng(self._seed ^ 0x5EED).permutation(num_rows)
        return permutation[np.clip(ranks, 0, num_rows - 1)]


class ModelTraceGenerator(TraceGenerator):
    """Adapter: drive the legacy generator interface from a trace model.

    Lets code written against :class:`TraceGenerator` (e.g.
    ``repro.cpu.trace_exec``) consume any :class:`TraceModel`, including
    hot/cold and per-table mixes the legacy classes cannot express.
    """

    def __init__(self, trace_model: TraceModel, seed: int = 0):
        super().__init__(seed=seed)
        self.trace_model = trace_model

    def _draw_indices(self, num_rows: int, count: int) -> np.ndarray:
        return self.trace_model.draw(self._rng, num_rows, count)

    def model_batch(self, model: DLRMConfig, batch_size: int) -> DLRMBatch:
        dense = self._rng.standard_normal(
            (batch_size, model.num_dense_features)
        ).astype(np.float32)
        traces = tuple(
            table_trace(self.trace_model, self._rng, table, batch_size, table_index=index)
            for index, table in enumerate(model.tables)
        )
        return DLRMBatch(dense_features=dense, sparse_traces=traces)


def concatenate_traces(traces: Sequence[SparseTrace]) -> SparseTrace:
    """Concatenate per-batch traces for the *same* table into one trace.

    Useful when modelling multiple inference requests back to back.
    """
    if not traces:
        raise TraceError("cannot concatenate an empty sequence of traces")
    num_rows = traces[0].num_rows
    if any(trace.num_rows != num_rows for trace in traces):
        raise TraceError("all traces must refer to tables with the same row count")
    indices: List[np.ndarray] = []
    offsets: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    running = 0
    for trace in traces:
        indices.append(trace.indices)
        offsets.append(trace.offsets[1:] + running)
        running += trace.total_lookups
    return SparseTrace(
        indices=np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64),
        offsets=np.concatenate(offsets),
        num_rows=num_rows,
    )
