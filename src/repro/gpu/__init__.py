"""CPU-GPU design-point model (discrete GPU behind PCIe).

The paper's second baseline keeps the embedding tables in CPU memory (they
do not fit in GPU HBM), performs the gathers/reductions on the CPU exactly
like the CPU-only system, and then ships the reduced embeddings plus dense
features to a discrete GPU over PCIe for the dense MLP/interaction layers.
"""

from repro.gpu.pcie import PCIeLink, TransferEstimate
from repro.gpu.device import GPUDevice, GPUGemmEstimate
from repro.gpu.gpu_runner import CPUGPURunner

__all__ = [
    "PCIeLink",
    "TransferEstimate",
    "GPUDevice",
    "GPUGemmEstimate",
    "CPUGPURunner",
]
