"""Throughput model of the discrete GPU executing DLRM's dense layers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.models import DLRMConfig
from repro.config.system import GPUConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class GPUGemmEstimate:
    """Latency decomposition of the GPU-side dense computation."""

    latency_s: float
    compute_s: float
    launch_s: float
    flops: float
    efficiency: float

    @property
    def sustained_flops(self) -> float:
        if self.compute_s == 0:
            return 0.0
        return self.flops / self.compute_s


@dataclass(frozen=True)
class GPUDevice:
    """A V100-class GPU running the MLP and feature-interaction kernels.

    Small-batch recommendation GEMMs are notoriously inefficient on big GPUs
    (the kernels cannot fill the SMs), so the sustained-throughput curve
    interpolates between ``gemm_efficiency_small`` at batch 1 and
    ``gemm_efficiency_large`` asymptotically, with a per-kernel launch
    overhead on top.
    """

    gpu: GPUConfig
    batch_half_point: float = 64.0

    def __post_init__(self) -> None:
        if self.batch_half_point <= 0:
            raise SimulationError("batch_half_point must be positive")

    def efficiency(self, batch_size: int) -> float:
        """Sustained fraction of peak FLOP/s at a batch size."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        gain = self.gpu.gemm_efficiency_large - self.gpu.gemm_efficiency_small
        saturation = (batch_size - 1) / (batch_size - 1 + self.batch_half_point)
        return self.gpu.gemm_efficiency_small + gain * saturation

    def estimate(self, flops: float, batch_size: int, num_kernels: int) -> GPUGemmEstimate:
        """Latency of a dense workload on the GPU."""
        if flops < 0:
            raise SimulationError(f"flops must be non-negative, got {flops}")
        if num_kernels < 0:
            raise SimulationError(f"num_kernels must be non-negative, got {num_kernels}")
        efficiency = self.efficiency(batch_size)
        sustained = self.gpu.peak_flops * efficiency
        compute_s = flops / sustained if flops else 0.0
        launch_s = num_kernels * self.gpu.kernel_launch_overhead_s
        return GPUGemmEstimate(
            latency_s=compute_s + launch_s,
            compute_s=compute_s,
            launch_s=launch_s,
            flops=flops,
            efficiency=efficiency,
        )

    def estimate_model(self, model: DLRMConfig, batch_size: int) -> GPUGemmEstimate:
        """Latency of all dense layers of a DLRM model on the GPU."""
        flops = model.total_dense_flops_per_sample() * batch_size
        num_kernels = model.bottom_mlp.num_layers + model.top_mlp.num_layers + 2
        return self.estimate(flops, batch_size, num_kernels)
