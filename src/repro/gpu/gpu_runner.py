"""End-to-end model of the CPU-GPU design point.

Execution flow (Section V, "CPU-GPU [38]"):

1. The CPU gathers and reduces all embeddings (identical to CPU-only).
2. The reduced embeddings and dense features are copied to the GPU over PCIe.
3. The GPU runs the bottom MLP, feature interaction and top MLP.
4. The (tiny) result vector is copied back to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import BackendCapabilities
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.cpu.embedding_exec import EmbeddingExecutionModel
from repro.errors import SimulationError
from repro.gpu.device import GPUDevice
from repro.gpu.pcie import PCIeLink
from repro.memsys.analytic import MLPAccessProfile
from repro.results import InferenceResult, LatencyBreakdown

#: What the CPU-GPU backend reports (registered as ``"cpu-gpu"``).
CPU_GPU_CAPABILITIES = BackendCapabilities(
    reports_embedding_throughput=True,
    reports_mlp_traffic=True,
    uses_accelerator=True,
    offloads_embeddings=False,
    stages=("EMB", "PCIe", "MLP", "Other"),
    # CUDA context + weight upload over PCIe before the first batch.
    provision_warmup_s=5e-3,
)


@dataclass
class CPUGPURunner:
    """Produces :class:`~repro.results.InferenceResult` for the CPU-GPU system.

    Deprecated as a direct entry point: prefer
    ``repro.backends.get_backend("cpu-gpu", system)``, which resolves this
    class through the backend registry.
    """

    system: SystemConfig
    other_fixed_s: float = 14.0e-6
    other_per_sample_s: float = 0.15e-6
    #: Driver/stream synchronization cost of handing a request to the GPU and
    #: waiting for its completion, on top of the raw PCIe transfer time.
    offload_sync_s: float = 60.0e-6
    embedding_model: EmbeddingExecutionModel = field(default=None)  # type: ignore[assignment]
    gpu_device: GPUDevice = field(default=None)  # type: ignore[assignment]
    pcie: PCIeLink = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.other_fixed_s < 0 or self.other_per_sample_s < 0:
            raise SimulationError("CPU-GPU 'Other' overheads must be non-negative")
        if self.embedding_model is None:
            self.embedding_model = EmbeddingExecutionModel(
                cpu=self.system.cpu, memory=self.system.memory
            )
        if self.gpu_device is None:
            self.gpu_device = GPUDevice(gpu=self.system.gpu)
        if self.pcie is None:
            self.pcie = PCIeLink(gpu=self.system.gpu)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Backend-registry key of this design point."""
        return "cpu-gpu"

    @property
    def design_point(self) -> str:
        return "CPU-GPU"

    @property
    def capabilities(self) -> BackendCapabilities:
        return CPU_GPU_CAPABILITIES

    def energy(self, model: DLRMConfig, batch_size: int) -> float:
        """Energy in joules of one batch (power x latency)."""
        return self.run(model, batch_size).energy_joules

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        """Model one inference batch end to end on the CPU-GPU system."""
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")

        embedding = self.embedding_model.estimate(model, batch_size)

        # Host -> device: reduced embeddings (one vector per table per sample)
        # plus the dense features; device -> host: one probability per sample.
        reduced_bytes = model.num_tables * model.embedding_dim * 4 * batch_size
        dense_bytes = model.dense_feature_bytes_per_sample() * batch_size
        result_bytes = 4 * batch_size
        pcie_s = (
            self.pcie.round_trip(reduced_bytes + dense_bytes, result_bytes)
            + self.offload_sync_s
        )

        dense = self.gpu_device.estimate_model(model, batch_size)
        other_s = self.other_fixed_s + self.other_per_sample_s * batch_size

        breakdown = LatencyBreakdown()
        breakdown.add("EMB", embedding.latency_s)
        breakdown.add("PCIe", pcie_s)
        breakdown.add("MLP", dense.latency_s)
        breakdown.add("Other", other_s)

        mlp_profile = MLPAccessProfile(cpu=self.system.cpu)
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=breakdown,
            embedding_traffic=embedding.traffic,
            mlp_traffic=mlp_profile.compute(model, batch_size),
            power_watts=self.system.power.cpu_gpu_total_watts,
            extra={
                "pcie_bytes": reduced_bytes + dense_bytes + result_bytes,
                "gpu_efficiency": dense.efficiency,
                "gpu_launch_s": dense.launch_s,
            },
        )
