"""PCIe transfer model for the discrete-GPU design point.

Unlike the package-integrated CPU+FPGA (which reads CPU memory at cache-line
granularity in hardware), a discrete GPU moves data with driver-mediated DMA
copies: every transfer pays a fixed software/driver latency before the bytes
stream at the effective link bandwidth.  This is the overhead the paper
identifies as making CPU-GPU lose to CPU-only on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import GPUConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class TransferEstimate:
    """Latency decomposition of one host<->device DMA transfer."""

    bytes_transferred: float
    latency_s: float
    fixed_s: float
    streaming_s: float

    @property
    def achieved_bandwidth(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.bytes_transferred / self.latency_s


@dataclass(frozen=True)
class PCIeLink:
    """A host<->device PCIe link with per-transfer launch overhead."""

    gpu: GPUConfig

    def transfer(self, num_bytes: float) -> TransferEstimate:
        """Estimate the latency of one ``cudaMemcpy``-style transfer."""
        if num_bytes < 0:
            raise SimulationError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return TransferEstimate(0.0, 0.0, 0.0, 0.0)
        streaming_s = num_bytes / self.gpu.pcie_bandwidth
        fixed_s = self.gpu.pcie_latency_s
        return TransferEstimate(
            bytes_transferred=float(num_bytes),
            latency_s=fixed_s + streaming_s,
            fixed_s=fixed_s,
            streaming_s=streaming_s,
        )

    def round_trip(self, bytes_to_device: float, bytes_to_host: float) -> float:
        """Total latency of an input upload plus a result download."""
        return self.transfer(bytes_to_device).latency_s + self.transfer(bytes_to_host).latency_s
