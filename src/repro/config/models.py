"""Workload (DLRM model) configuration dataclasses.

A :class:`DLRMConfig` fully describes one personalized-recommendation model
in the style of Facebook's open-sourced DLRM: a set of embedding tables with
a per-table lookup count, a bottom MLP operating on dense features, a
dot-product feature-interaction stage, and a top MLP ending in a sigmoid.

The paper's Table I characterizes models by four aggregate quantities
(number of tables, gathers per table, total embedding-table bytes and MLP
bytes); :class:`DLRMConfig` exposes all of them as derived properties so the
Table I reproduction can print them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.units import bytes_to_human

#: Bytes per embedding element / MLP weight (fp32 throughout the paper).
DTYPE_BYTES = 4


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """One sparse embedding lookup table.

    Attributes:
        num_rows: Number of embedding vectors stored in the table (scales
            with the number of users/items of the service).
        embedding_dim: Width of each embedding vector (32 by default, as in
            the paper and DLRM's published configurations).
        gathers: Number of lookups ("pooling factor") performed on this table
            per inference sample.
    """

    num_rows: int
    embedding_dim: int = 32
    gathers: int = 20

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ConfigurationError(f"num_rows must be positive, got {self.num_rows}")
        if self.embedding_dim <= 0:
            raise ConfigurationError(
                f"embedding_dim must be positive, got {self.embedding_dim}"
            )
        if self.gathers <= 0:
            raise ConfigurationError(f"gathers must be positive, got {self.gathers}")

    @property
    def row_bytes(self) -> int:
        """Bytes occupied by one embedding vector."""
        return self.embedding_dim * DTYPE_BYTES

    @property
    def table_bytes(self) -> int:
        """Total memory footprint of the table."""
        return self.num_rows * self.row_bytes


@dataclass(frozen=True)
class MLPConfig:
    """A stack of fully connected layers with ReLU activations in between.

    ``layer_dims`` lists every layer width *including* the input dimension,
    e.g. ``(13, 128, 64, 32)`` is a three-layer MLP taking 13 dense features
    to a 32-wide output.
    """

    layer_dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ConfigurationError(
                "an MLP needs an input dimension and at least one layer, got "
                f"{self.layer_dims!r}"
            )
        if any(dim <= 0 for dim in self.layer_dims):
            raise ConfigurationError(
                f"all MLP layer dimensions must be positive, got {self.layer_dims!r}"
            )

    @property
    def num_layers(self) -> int:
        return len(self.layer_dims) - 1

    @property
    def input_dim(self) -> int:
        return self.layer_dims[0]

    @property
    def output_dim(self) -> int:
        return self.layer_dims[-1]

    @property
    def num_parameters(self) -> int:
        """Weights plus biases across every layer."""
        total = 0
        for in_dim, out_dim in zip(self.layer_dims[:-1], self.layer_dims[1:]):
            total += in_dim * out_dim + out_dim
        return total

    @property
    def parameter_bytes(self) -> int:
        return self.num_parameters * DTYPE_BYTES

    def flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for one input sample."""
        flops = 0
        for in_dim, out_dim in zip(self.layer_dims[:-1], self.layer_dims[1:]):
            flops += 2 * in_dim * out_dim
        return flops

    def with_output_dim(self, output_dim: int) -> "MLPConfig":
        """Return a copy whose last layer produces ``output_dim`` features."""
        return MLPConfig(layer_dims=self.layer_dims[:-1] + (output_dim,))


@dataclass(frozen=True)
class DLRMConfig:
    """Full configuration of one DLRM recommendation model.

    Attributes:
        name: Identifier, e.g. ``"DLRM(3)"``.
        tables: Per-table configurations (all six paper presets use identical
            tables, but heterogeneous tables are supported).
        bottom_mlp: MLP applied to the dense feature vector.  Its output
            width must equal the embedding dimension so that the dense
            feature can participate in the dot-product interaction.
        top_mlp: MLP applied to the concatenated interaction output; its
            input dimension must match :meth:`interaction_output_dim`.
        num_dense_features: Width of the raw dense-feature input.
    """

    name: str
    tables: Tuple[EmbeddingTableConfig, ...]
    bottom_mlp: MLPConfig
    top_mlp: MLPConfig
    num_dense_features: int = 13

    def __post_init__(self) -> None:
        if not self.tables:
            raise ConfigurationError("a DLRM model needs at least one embedding table")
        if self.num_dense_features <= 0:
            raise ConfigurationError(
                f"num_dense_features must be positive, got {self.num_dense_features}"
            )
        dims = {table.embedding_dim for table in self.tables}
        if len(dims) != 1:
            raise ConfigurationError(
                "all embedding tables must share one embedding dimension for the "
                f"dot-product interaction, got {sorted(dims)}"
            )
        if self.bottom_mlp.input_dim != self.num_dense_features:
            raise ConfigurationError(
                "bottom MLP input dimension "
                f"({self.bottom_mlp.input_dim}) must equal num_dense_features "
                f"({self.num_dense_features})"
            )
        if self.bottom_mlp.output_dim != self.embedding_dim:
            raise ConfigurationError(
                "bottom MLP output dimension "
                f"({self.bottom_mlp.output_dim}) must equal the embedding "
                f"dimension ({self.embedding_dim})"
            )
        if self.top_mlp.input_dim != self.interaction_output_dim:
            raise ConfigurationError(
                "top MLP input dimension "
                f"({self.top_mlp.input_dim}) must equal the feature-interaction "
                f"output dimension ({self.interaction_output_dim})"
            )

    # ------------------------------------------------------------------
    # Table I aggregate quantities
    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def embedding_dim(self) -> int:
        return self.tables[0].embedding_dim

    @property
    def gathers_per_table(self) -> float:
        """Average number of lookups per table per sample."""
        return sum(table.gathers for table in self.tables) / len(self.tables)

    @property
    def total_gathers_per_sample(self) -> int:
        return sum(table.gathers for table in self.tables)

    @property
    def embedding_table_bytes(self) -> int:
        """Aggregate embedding-table footprint ("Table size" in Table I)."""
        return sum(table.table_bytes for table in self.tables)

    @property
    def mlp_parameter_bytes(self) -> int:
        """Aggregate MLP model size ("MLP size" in Table I)."""
        return self.bottom_mlp.parameter_bytes + self.top_mlp.parameter_bytes

    # ------------------------------------------------------------------
    # Shapes derived from the DLRM dataflow
    # ------------------------------------------------------------------
    @property
    def num_interaction_vectors(self) -> int:
        """Vectors entering the dot-product interaction (tables + bottom MLP)."""
        return self.num_tables + 1

    @property
    def num_interaction_pairs(self) -> int:
        """Distinct vector pairs produced by the dot-product interaction."""
        n = self.num_interaction_vectors
        return n * (n - 1) // 2

    @property
    def interaction_output_dim(self) -> int:
        """Width of the concatenated top-MLP input (pairs + bottom MLP output)."""
        return self.num_interaction_pairs + self.embedding_dim

    # ------------------------------------------------------------------
    # Per-sample work estimates used throughout the performance models
    # ------------------------------------------------------------------
    def embedding_bytes_per_sample(self) -> int:
        """Useful bytes gathered from embedding tables for one sample."""
        return sum(table.gathers * table.row_bytes for table in self.tables)

    def sparse_index_bytes_per_sample(self) -> int:
        """Bytes of sparse indices (int32) consumed by one sample."""
        return self.total_gathers_per_sample * DTYPE_BYTES

    def dense_feature_bytes_per_sample(self) -> int:
        """Bytes of dense features consumed by one sample."""
        return self.num_dense_features * DTYPE_BYTES

    def reduction_flops_per_sample(self) -> int:
        """Element-wise additions performed by embedding reductions."""
        flops = 0
        for table in self.tables:
            # Reducing G gathered vectors of width D needs (G - 1) * D adds.
            flops += max(table.gathers - 1, 0) * table.embedding_dim
        return flops

    def interaction_flops_per_sample(self) -> int:
        """FLOPs of the batched-GEMM dot-product feature interaction."""
        return 2 * self.num_interaction_pairs * self.embedding_dim

    def mlp_flops_per_sample(self) -> int:
        """FLOPs of bottom + top MLP for one sample."""
        return self.bottom_mlp.flops_per_sample() + self.top_mlp.flops_per_sample()

    def total_dense_flops_per_sample(self) -> int:
        """All GEMM-like FLOPs handled by the dense accelerator per sample."""
        return self.mlp_flops_per_sample() + self.interaction_flops_per_sample()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_gathers_per_table(self, gathers: int) -> "DLRMConfig":
        """Return a copy where every table performs ``gathers`` lookups."""
        new_tables = tuple(replace(table, gathers=gathers) for table in self.tables)
        return replace(self, tables=new_tables)

    def with_num_tables(self, num_tables: int) -> "DLRMConfig":
        """Return a copy with ``num_tables`` copies of the first table.

        The top MLP's input layer is re-sized to match the new interaction
        output dimension.
        """
        if num_tables <= 0:
            raise ConfigurationError(f"num_tables must be positive, got {num_tables}")
        new_tables = tuple(self.tables[0] for _ in range(num_tables))
        n = num_tables + 1
        interaction_dim = n * (n - 1) // 2 + self.embedding_dim
        new_top = MLPConfig(layer_dims=(interaction_dim,) + self.top_mlp.layer_dims[1:])
        return replace(self, tables=new_tables, top_mlp=new_top)

    def summary(self) -> str:
        """One-line description in the style of a Table I row."""
        return (
            f"{self.name}: {self.num_tables} tables, "
            f"{self.gathers_per_table:.0f} gathers/table, "
            f"{bytes_to_human(self.embedding_table_bytes)} tables, "
            f"{bytes_to_human(self.mlp_parameter_bytes)} MLP"
        )


def homogeneous_dlrm(
    name: str,
    num_tables: int,
    rows_per_table: int,
    gathers_per_table: int,
    embedding_dim: int = 32,
    bottom_hidden: Sequence[int] = (128, 64),
    top_hidden: Sequence[int] = (64, 32),
    num_dense_features: int = 13,
) -> DLRMConfig:
    """Build a DLRM model with identical embedding tables.

    This mirrors how the paper constructs its six benchmark configurations:
    pick a table count, a per-table size and a per-table lookup count, and
    attach small bottom/top MLPs around the interaction stage.

    Args:
        name: Model identifier.
        num_tables: Number of embedding tables.
        rows_per_table: Rows per table.
        gathers_per_table: Lookups per table per sample.
        embedding_dim: Embedding vector width.
        bottom_hidden: Hidden layer widths of the bottom MLP (the output
            layer of width ``embedding_dim`` is appended automatically).
        top_hidden: Hidden layer widths of the top MLP (a final single-unit
            output layer is appended automatically).
        num_dense_features: Width of the dense-feature input.

    Returns:
        A fully validated :class:`DLRMConfig`.
    """
    table = EmbeddingTableConfig(
        num_rows=rows_per_table,
        embedding_dim=embedding_dim,
        gathers=gathers_per_table,
    )
    tables = tuple(table for _ in range(num_tables))
    bottom = MLPConfig(
        layer_dims=(num_dense_features, *bottom_hidden, embedding_dim)
    )
    n = num_tables + 1
    interaction_dim = n * (n - 1) // 2 + embedding_dim
    top = MLPConfig(layer_dims=(interaction_dim, *top_hidden, 1))
    return DLRMConfig(
        name=name,
        tables=tables,
        bottom_mlp=bottom,
        top_mlp=top,
        num_dense_features=num_dense_features,
    )
