"""Hardware and workload presets matching the paper's evaluation setup.

Hardware presets mirror Section V (Methodology): Intel HARPv2 with a
Broadwell Xeon E5-2680v4 and an Altera Arria 10 GX1150, a quad-channel DDR4
memory system with 77 GB/s of peak bandwidth, a 28.8 GB/s (theoretical)
CPU<->FPGA link, and an NVIDIA DGX-1 V100 for the ``CPU-GPU`` design point.

Workload presets mirror Table I.  The paper does not publish exact MLP layer
shapes, so the layer widths below are chosen to land close to the quoted
model sizes (~57 KB for DLRM(1)-(5) and ~0.5 MB for DLRM(6)); the Table I
benchmark prints both the paper's figure and the value computed from these
shapes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.models import DLRMConfig, homogeneous_dlrm
from repro.config.system import (
    CPUConfig,
    FPGAConfig,
    FPGAFabricConfig,
    GPUConfig,
    LinkConfig,
    MemoryConfig,
    PowerConfig,
    SystemConfig,
)

# ---------------------------------------------------------------------------
# Hardware presets (Section V)
# ---------------------------------------------------------------------------

#: Host CPU of the HARPv2 package.
BROADWELL_XEON = CPUConfig()

#: Quad-channel DDR4 memory system with 77 GB/s of peak bandwidth.
DDR4_QUAD_CHANNEL = MemoryConfig()

#: HARPv2 CPU<->FPGA communication: two PCIe links plus one UPI link.
HARPV2_LINK = LinkConfig()

#: Raw fabric capacity of the Altera Arria 10 GX1150.
ARRIA10_GX1150 = FPGAFabricConfig()

#: Default Centaur accelerator configuration (4x4 MLP PEs + 4 interaction PEs).
CENTAUR_FPGA = FPGAConfig()

#: The DGX-1 V100 used for the CPU-GPU design point.
DGX1_V100 = GPUConfig()

#: Table IV power figures.
PAPER_POWER = PowerConfig()

#: The full evaluation platform.
HARPV2_SYSTEM = SystemConfig(
    cpu=BROADWELL_XEON,
    memory=DDR4_QUAD_CHANNEL,
    link=HARPV2_LINK,
    fpga=CENTAUR_FPGA,
    gpu=DGX1_V100,
    power=PAPER_POWER,
)

# ---------------------------------------------------------------------------
# Workload presets (Table I)
# ---------------------------------------------------------------------------

#: Rows per 25.6 MB table (32-wide fp32 vectors -> 128 bytes per row).
_ROWS_SMALL_TABLE = 200_000
#: Rows per 64 MB table, used by DLRM(5).
_ROWS_LARGE_TABLE = 500_000

DLRM1: DLRMConfig = homogeneous_dlrm(
    name="DLRM(1)",
    num_tables=5,
    rows_per_table=_ROWS_SMALL_TABLE,
    gathers_per_table=20,
)

DLRM2: DLRMConfig = homogeneous_dlrm(
    name="DLRM(2)",
    num_tables=50,
    rows_per_table=_ROWS_SMALL_TABLE,
    gathers_per_table=20,
)

DLRM3: DLRMConfig = homogeneous_dlrm(
    name="DLRM(3)",
    num_tables=5,
    rows_per_table=_ROWS_SMALL_TABLE,
    gathers_per_table=80,
)

DLRM4: DLRMConfig = homogeneous_dlrm(
    name="DLRM(4)",
    num_tables=50,
    rows_per_table=_ROWS_SMALL_TABLE,
    gathers_per_table=80,
)

DLRM5: DLRMConfig = homogeneous_dlrm(
    name="DLRM(5)",
    num_tables=50,
    rows_per_table=_ROWS_LARGE_TABLE,
    gathers_per_table=80,
)

DLRM6: DLRMConfig = homogeneous_dlrm(
    name="DLRM(6)",
    num_tables=5,
    rows_per_table=_ROWS_SMALL_TABLE,
    gathers_per_table=2,
    bottom_hidden=(320, 160),
    top_hidden=(320, 160),
)

#: The six Table I models in paper order.
PAPER_MODELS: Tuple[DLRMConfig, ...] = (DLRM1, DLRM2, DLRM3, DLRM4, DLRM5, DLRM6)

#: Input batch sizes swept throughout the evaluation (Figures 5-7 and 13-15).
PAPER_BATCH_SIZES: Tuple[int, ...] = (1, 4, 16, 32, 64, 128)

_PRESETS_BY_NAME: Dict[str, DLRMConfig] = {model.name: model for model in PAPER_MODELS}
_PRESETS_BY_INDEX: Dict[int, DLRMConfig] = {
    index + 1: model for index, model in enumerate(PAPER_MODELS)
}


def dlrm_preset(which: "int | str") -> DLRMConfig:
    """Look up one of the six Table I models by index (1-6) or name.

    Args:
        which: ``3`` or ``"DLRM(3)"`` for the third configuration.

    Returns:
        The corresponding :class:`~repro.config.models.DLRMConfig`.

    Raises:
        KeyError: If the index/name does not correspond to a Table I model.
    """
    if isinstance(which, int):
        if which not in _PRESETS_BY_INDEX:
            raise KeyError(
                f"DLRM preset index must be in 1..{len(PAPER_MODELS)}, got {which}"
            )
        return _PRESETS_BY_INDEX[which]
    if which not in _PRESETS_BY_NAME:
        raise KeyError(
            f"unknown DLRM preset {which!r}; available: {sorted(_PRESETS_BY_NAME)}"
        )
    return _PRESETS_BY_NAME[which]
