"""Hardware/system configuration dataclasses.

These dataclasses hold every calibration constant used by the performance
models.  The default instances in :mod:`repro.config.presets` mirror the
evaluation platform of the paper: an Intel HARPv2 package (Broadwell Xeon
E5-2680v4 + Altera Arria 10 GX1150) plus an NVIDIA DGX-1 V100 for the
``CPU-GPU`` design point.

All bandwidths are bytes/second, all latencies are seconds, all capacities
are bytes, all frequencies are Hz unless the field name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.utils.units import GB, GIB, KIB, MIB


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class CPUConfig:
    """Configuration of the host CPU (Broadwell Xeon class).

    Attributes:
        name: Human-readable identifier.
        num_cores: Physical core count used for inference.
        frequency_hz: Nominal core clock.
        simd_flops_per_cycle: Single-precision FLOPs one core can retire per
            cycle with AVX/FMA (Broadwell: 2 x 8-wide FMA = 32 FLOPs, but the
            sustained GEMM rate of the PyTorch/OpenMP backend is far lower; the
            efficiency curve lives in :class:`repro.cpu.gemm.CPUGemmModel`).
        l1_bytes / l2_bytes / llc_bytes: Per-core L1/L2 and shared LLC sizes.
        llc_ways: LLC associativity (used by the trace-driven simulator).
        cache_line_bytes: Cache line granularity.
        mshrs_per_core: Outstanding L1 misses a core can sustain; the key
            limiter of memory-level parallelism for embedding gathers.
        load_issue_overhead_s: Software cost per embedding lookup (address
            generation, bounds checks, loop overhead) on one core.
        instructions_per_lookup: Retired-instruction estimate per embedding
            lookup (drives the MPKI model).
        instructions_per_flop: Retired instructions per MLP FLOP (fused
            multiply-adds retire ~0.5 instruction per FLOP plus loop/loads).
    """

    name: str = "Xeon E5-2680v4"
    num_cores: int = 14
    frequency_hz: float = 2.4e9
    simd_flops_per_cycle: float = 32.0
    l1_bytes: int = 32 * KIB
    l2_bytes: int = 256 * KIB
    llc_bytes: int = 35 * MIB
    llc_ways: int = 20
    cache_line_bytes: int = 64
    mshrs_per_core: int = 10
    load_issue_overhead_s: float = 4.0e-9
    instructions_per_lookup: float = 36.0
    instructions_per_flop: float = 0.75

    def __post_init__(self) -> None:
        _require_positive("num_cores", self.num_cores)
        _require_positive("frequency_hz", self.frequency_hz)
        _require_positive("simd_flops_per_cycle", self.simd_flops_per_cycle)
        _require_positive("l1_bytes", self.l1_bytes)
        _require_positive("l2_bytes", self.l2_bytes)
        _require_positive("llc_bytes", self.llc_bytes)
        _require_positive("llc_ways", self.llc_ways)
        _require_positive("cache_line_bytes", self.cache_line_bytes)
        _require_positive("mshrs_per_core", self.mshrs_per_core)
        _require_non_negative("load_issue_overhead_s", self.load_issue_overhead_s)
        _require_positive("instructions_per_lookup", self.instructions_per_lookup)
        _require_positive("instructions_per_flop", self.instructions_per_flop)
        if self.l1_bytes > self.l2_bytes or self.l2_bytes > self.llc_bytes:
            raise ConfigurationError(
                "cache hierarchy must be monotonically increasing in capacity: "
                f"L1={self.l1_bytes} L2={self.l2_bytes} LLC={self.llc_bytes}"
            )

    @property
    def peak_flops(self) -> float:
        """Aggregate single-precision peak FLOP/s across all cores."""
        return self.num_cores * self.frequency_hz * self.simd_flops_per_cycle

    @property
    def total_mshrs(self) -> int:
        """Total outstanding misses the socket can sustain."""
        return self.num_cores * self.mshrs_per_core


@dataclass(frozen=True)
class MemoryConfig:
    """Configuration of the capacity-optimized CPU DDR memory system."""

    name: str = "DDR4-2400 x4"
    num_channels: int = 4
    peak_bandwidth: float = 77.0 * GB
    idle_latency_s: float = 80e-9
    loaded_latency_s: float = 140e-9
    row_buffer_bytes: int = 8 * KIB
    banks_per_channel: int = 16
    capacity_bytes: int = 256 * GIB

    def __post_init__(self) -> None:
        _require_positive("num_channels", self.num_channels)
        _require_positive("peak_bandwidth", self.peak_bandwidth)
        _require_positive("idle_latency_s", self.idle_latency_s)
        _require_positive("loaded_latency_s", self.loaded_latency_s)
        _require_positive("row_buffer_bytes", self.row_buffer_bytes)
        _require_positive("banks_per_channel", self.banks_per_channel)
        _require_positive("capacity_bytes", self.capacity_bytes)
        if self.loaded_latency_s < self.idle_latency_s:
            raise ConfigurationError(
                "loaded DRAM latency cannot be lower than idle latency"
            )

    @property
    def per_channel_bandwidth(self) -> float:
        return self.peak_bandwidth / self.num_channels


@dataclass(frozen=True)
class LinkConfig:
    """CPU<->FPGA chiplet communication configuration (HARPv2: 2xPCIe + UPI).

    Attributes:
        theoretical_bandwidth: Aggregate uni-directional raw bandwidth
            (28.8 GB/s on HARPv2).
        effective_bandwidth: Achievable uni-directional bandwidth after
            protocol overheads (the paper quotes 17-18 GB/s).
        latency_s: One-way request->data latency over the link including the
            CPU-side cache/memory lookup.
        max_outstanding_requests: Cache-line-granularity requests the FPGA
            can keep in flight (link credits + IOMMU/TLB capacity).
        request_granularity_bytes: Transfer granularity (one cache line).
        cache_bypass_available: Whether the "proposed architecture" bypass
            path of Fig. 8 is available (HARPv2: no).
        bypass_bandwidth: Bandwidth of the bypass path when present; the
            Section VII discussion provisions it to match DRAM bandwidth.
    """

    name: str = "HARPv2 2xPCIe + UPI"
    theoretical_bandwidth: float = 28.8 * GB
    effective_bandwidth: float = 17.5 * GB
    latency_s: float = 450e-9
    max_outstanding_requests: int = 128
    request_granularity_bytes: int = 64
    mmio_write_latency_s: float = 1.0e-6
    cache_bypass_available: bool = False
    bypass_bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        _require_positive("theoretical_bandwidth", self.theoretical_bandwidth)
        _require_positive("effective_bandwidth", self.effective_bandwidth)
        _require_positive("latency_s", self.latency_s)
        _require_positive("max_outstanding_requests", self.max_outstanding_requests)
        _require_positive("request_granularity_bytes", self.request_granularity_bytes)
        _require_non_negative("mmio_write_latency_s", self.mmio_write_latency_s)
        if self.effective_bandwidth > self.theoretical_bandwidth:
            raise ConfigurationError(
                "effective link bandwidth cannot exceed theoretical bandwidth"
            )
        if self.cache_bypass_available and self.bypass_bandwidth is None:
            raise ConfigurationError(
                "bypass_bandwidth must be set when cache_bypass_available is True"
            )
        if self.bypass_bandwidth is not None:
            _require_positive("bypass_bandwidth", self.bypass_bandwidth)

    def with_bypass(self, bypass_bandwidth: float) -> "LinkConfig":
        """Return a copy with the cache-bypass path enabled (Fig. 8 ablation)."""
        return replace(
            self,
            cache_bypass_available=True,
            bypass_bandwidth=bypass_bandwidth,
        )


@dataclass(frozen=True)
class FPGAFabricConfig:
    """Raw resource capacity of the FPGA fabric (Arria 10 GX1150)."""

    name: str = "Arria 10 GX1150"
    alms: int = 427_200
    block_memory_bits: int = 55_500_000
    ram_blocks: int = 2_713
    dsps: int = 1_518
    plls: int = 176

    def __post_init__(self) -> None:
        for field_name in ("alms", "block_memory_bits", "ram_blocks", "dsps", "plls"):
            _require_positive(field_name, getattr(self, field_name))


@dataclass(frozen=True)
class FPGAConfig:
    """Configuration of the Centaur accelerator synthesized onto the FPGA.

    Attributes:
        frequency_hz: Fabric clock of the accelerator (200 MHz in the paper).
        pe_tile_dim: GEMM tile edge handled by one processing engine (32).
        mlp_pe_rows / mlp_pe_cols: The spatial PE array of the MLP unit (4x4).
        interaction_pes: PEs dedicated to the feature-interaction batched GEMM.
        sparse_index_sram_entries: Depth of the sparse-index SRAM array in the
            EB-Streamer; bounds the number of gathers in flight.
        reduction_lanes: Scalar ALUs in the embedding reduction unit.
        mlp_weight_sram_bytes: SRAM provisioned for persistent MLP weights.
        dense_feature_sram_bytes: SRAM for bottom-MLP input features.
        mlp_input_sram_bytes: SRAM for feature-interaction outputs / top-MLP
            inputs.
        fabric: Resource capacity of the hosting FPGA.
    """

    name: str = "Centaur on Arria 10"
    frequency_hz: float = 200e6
    pe_tile_dim: int = 32
    mlp_pe_rows: int = 4
    mlp_pe_cols: int = 4
    interaction_pes: int = 4
    sparse_index_sram_entries: int = 393_216
    reduction_lanes: int = 32
    mlp_weight_sram_bytes: int = 640 * KIB
    dense_feature_sram_bytes: int = 96 * KIB
    mlp_input_sram_bytes: int = 104 * KIB
    gemm_efficiency: float = 0.78
    fabric: FPGAFabricConfig = field(default_factory=FPGAFabricConfig)

    def __post_init__(self) -> None:
        _require_positive("frequency_hz", self.frequency_hz)
        _require_positive("pe_tile_dim", self.pe_tile_dim)
        _require_positive("mlp_pe_rows", self.mlp_pe_rows)
        _require_positive("mlp_pe_cols", self.mlp_pe_cols)
        _require_positive("interaction_pes", self.interaction_pes)
        _require_positive("sparse_index_sram_entries", self.sparse_index_sram_entries)
        _require_positive("reduction_lanes", self.reduction_lanes)
        _require_positive("mlp_weight_sram_bytes", self.mlp_weight_sram_bytes)
        _require_positive("dense_feature_sram_bytes", self.dense_feature_sram_bytes)
        _require_positive("mlp_input_sram_bytes", self.mlp_input_sram_bytes)
        if not 0 < self.gemm_efficiency <= 1:
            raise ConfigurationError(
                f"gemm_efficiency must be in (0, 1], got {self.gemm_efficiency}"
            )

    @property
    def total_pes(self) -> int:
        """Processing engines across the MLP unit and feature-interaction unit."""
        return self.mlp_pe_rows * self.mlp_pe_cols + self.interaction_pes

    @property
    def flops_per_pe_per_cycle(self) -> float:
        """FLOPs one PE retires per cycle.

        Calibrated so that the default 20-PE configuration at 200 MHz yields
        the paper's aggregate 313 GFLOPS.
        """
        return 78.25

    @property
    def peak_flops(self) -> float:
        """Aggregate dense-accelerator throughput (about 313 GFLOPS)."""
        return self.total_pes * self.flops_per_pe_per_cycle * self.frequency_hz


@dataclass(frozen=True)
class GPUConfig:
    """Configuration of the discrete GPU used by the ``CPU-GPU`` design point."""

    name: str = "NVIDIA V100 (DGX-1)"
    peak_flops: float = 15.7e12
    memory_bandwidth: float = 900.0 * GB
    memory_capacity_bytes: int = 32 * GIB
    pcie_bandwidth: float = 12.0 * GB
    pcie_latency_s: float = 10e-6
    kernel_launch_overhead_s: float = 10e-6
    gemm_efficiency_small: float = 0.002
    gemm_efficiency_large: float = 0.08

    def __post_init__(self) -> None:
        _require_positive("peak_flops", self.peak_flops)
        _require_positive("memory_bandwidth", self.memory_bandwidth)
        _require_positive("memory_capacity_bytes", self.memory_capacity_bytes)
        _require_positive("pcie_bandwidth", self.pcie_bandwidth)
        _require_positive("pcie_latency_s", self.pcie_latency_s)
        _require_non_negative("kernel_launch_overhead_s", self.kernel_launch_overhead_s)
        if not 0 < self.gemm_efficiency_small <= 1:
            raise ConfigurationError("gemm_efficiency_small must be in (0, 1]")
        if not 0 < self.gemm_efficiency_large <= 1:
            raise ConfigurationError("gemm_efficiency_large must be in (0, 1]")
        if self.gemm_efficiency_small > self.gemm_efficiency_large:
            raise ConfigurationError(
                "small-GEMM efficiency cannot exceed large-GEMM efficiency"
            )


@dataclass(frozen=True)
class PowerConfig:
    """Average power draw (Watts) of each design point, as in Table IV."""

    cpu_only_watts: float = 80.0
    cpu_gpu_cpu_watts: float = 91.0
    cpu_gpu_gpu_watts: float = 56.0
    centaur_watts: float = 74.0

    def __post_init__(self) -> None:
        for field_name in (
            "cpu_only_watts",
            "cpu_gpu_cpu_watts",
            "cpu_gpu_gpu_watts",
            "centaur_watts",
        ):
            _require_positive(field_name, getattr(self, field_name))

    @property
    def cpu_gpu_total_watts(self) -> float:
        """Combined socket + device power of the ``CPU-GPU`` design point."""
        return self.cpu_gpu_cpu_watts + self.cpu_gpu_gpu_watts


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of every hardware configuration for one evaluation platform."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    fpga: FPGAConfig = field(default_factory=FPGAConfig)
    gpu: GPUConfig = field(default_factory=GPUConfig)
    power: PowerConfig = field(default_factory=PowerConfig)

    def with_link(self, link: LinkConfig) -> "SystemConfig":
        """Return a copy with a different chiplet-link configuration."""
        return replace(self, link=link)

    def with_fpga(self, fpga: FPGAConfig) -> "SystemConfig":
        """Return a copy with a different FPGA/accelerator configuration."""
        return replace(self, fpga=fpga)
