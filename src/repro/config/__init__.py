"""Configuration objects and presets for the Centaur reproduction.

Two families of configuration live here:

* Hardware/system configurations (:mod:`repro.config.system`) describing the
  CPU, memory system, chiplet link, FPGA fabric, GPU and power envelopes of
  the three design points evaluated in the paper (``CPU-only``, ``CPU-GPU``
  and ``Centaur``).
* Workload configurations (:mod:`repro.config.models`) describing DLRM
  recommendation models, with the six Table I presets in
  :mod:`repro.config.presets`.
"""

from repro.config.system import (
    CPUConfig,
    MemoryConfig,
    LinkConfig,
    FPGAConfig,
    GPUConfig,
    PowerConfig,
    SystemConfig,
)
from repro.config.models import DLRMConfig, EmbeddingTableConfig, MLPConfig
from repro.config.presets import (
    BROADWELL_XEON,
    DDR4_QUAD_CHANNEL,
    HARPV2_LINK,
    ARRIA10_GX1150,
    CENTAUR_FPGA,
    DGX1_V100,
    PAPER_POWER,
    HARPV2_SYSTEM,
    DLRM1,
    DLRM2,
    DLRM3,
    DLRM4,
    DLRM5,
    DLRM6,
    PAPER_MODELS,
    PAPER_BATCH_SIZES,
    dlrm_preset,
)

__all__ = [
    "CPUConfig",
    "MemoryConfig",
    "LinkConfig",
    "FPGAConfig",
    "GPUConfig",
    "PowerConfig",
    "SystemConfig",
    "DLRMConfig",
    "EmbeddingTableConfig",
    "MLPConfig",
    "BROADWELL_XEON",
    "DDR4_QUAD_CHANNEL",
    "HARPV2_LINK",
    "ARRIA10_GX1150",
    "CENTAUR_FPGA",
    "DGX1_V100",
    "PAPER_POWER",
    "HARPV2_SYSTEM",
    "DLRM1",
    "DLRM2",
    "DLRM3",
    "DLRM4",
    "DLRM5",
    "DLRM6",
    "PAPER_MODELS",
    "PAPER_BATCH_SIZES",
    "dlrm_preset",
]
