"""Result containers shared by the CPU-only, CPU-GPU and Centaur runners.

Every design point produces an :class:`InferenceResult` per (model, batch)
pair; the analysis layer (:mod:`repro.analysis`) aggregates these into the
paper's figures and tables.  Keeping one shared result type guarantees that
speedups and efficiency ratios compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import SimulationError
from repro.memsys.stats import MemoryTrafficStats
from repro.utils.stats_utils import safe_divide


class LatencyBreakdown:
    """An ordered mapping of execution-stage name to latency in seconds.

    Stage names are free-form; the conventions used by the runners are:

    * CPU-only / CPU-GPU: ``"EMB"``, ``"MLP"``, ``"Other"`` (Figure 5), plus
      ``"PCIe"`` for the CPU-GPU design point.
    * Centaur: ``"IDX"``, ``"EMB"``, ``"DNF"``, ``"MLP"``, ``"Other"``
      (Figure 14).
    """

    def __init__(self, stages: Optional[Mapping[str, float]] = None):
        self._stages: Dict[str, float] = {}
        if stages:
            for name, value in stages.items():
                self.add(name, value)

    def add(self, stage: str, seconds: float) -> None:
        """Add (or accumulate into) a stage."""
        if seconds < 0:
            raise SimulationError(f"stage {stage!r} has negative latency {seconds}")
        self._stages[stage] = self._stages.get(stage, 0.0) + float(seconds)

    def get(self, stage: str) -> float:
        """Latency of one stage (0.0 when the stage is absent)."""
        return self._stages.get(stage, 0.0)

    @property
    def stages(self) -> Dict[str, float]:
        """A copy of the stage -> seconds mapping (insertion ordered)."""
        return dict(self._stages)

    @property
    def total_seconds(self) -> float:
        return sum(self._stages.values())

    def fraction(self, stage: str) -> float:
        """Share of the total latency spent in one stage."""
        return safe_divide(self.get(stage), self.total_seconds)

    def fractions(self) -> Dict[str, float]:
        """Share of total latency per stage."""
        total = self.total_seconds
        return {name: safe_divide(value, total) for name, value in self._stages.items()}

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """Return a copy with every stage multiplied by ``factor``."""
        if factor < 0:
            raise SimulationError(f"scale factor must be non-negative, got {factor}")
        return LatencyBreakdown({name: value * factor for name, value in self._stages.items()})

    def to_dict(self) -> Dict[str, float]:
        """Stage -> seconds mapping (JSON-compatible, insertion ordered)."""
        return dict(self._stages)

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "LatencyBreakdown":
        """Inverse of :meth:`to_dict`."""
        return cls(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{name}={value:.3e}" for name, value in self._stages.items())
        return f"LatencyBreakdown({inner})"


@dataclass
class InferenceResult:
    """Latency, traffic and energy of one inference batch on one design point.

    Attributes:
        design_point: ``"CPU-only"``, ``"CPU-GPU"`` or ``"Centaur"``.
        model_name: Name of the DLRM configuration (e.g. ``"DLRM(3)"``).
        batch_size: Input batch size.
        breakdown: Per-stage latency.
        embedding_traffic: Traffic/cache profile of the embedding layer.
        mlp_traffic: Traffic/cache profile of the dense layers.
        power_watts: Average power draw of the design point while serving.
        extra: Free-form auxiliary metrics (e.g. link utilization).
    """

    design_point: str
    model_name: str
    batch_size: int
    breakdown: LatencyBreakdown
    embedding_traffic: Optional[MemoryTrafficStats] = None
    mlp_traffic: Optional[MemoryTrafficStats] = None
    power_watts: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {self.batch_size}")
        if self.power_watts < 0:
            raise SimulationError(f"power_watts must be non-negative, got {self.power_watts}")

    # ------------------------------------------------------------------
    @property
    def latency_seconds(self) -> float:
        """End-to-end latency of the batch."""
        return self.breakdown.total_seconds

    @property
    def throughput_samples_per_second(self) -> float:
        """Inference throughput in samples per second."""
        return safe_divide(self.batch_size, self.latency_seconds)

    @property
    def energy_joules(self) -> float:
        """Energy of the batch (power x latency), following the paper's method."""
        return self.power_watts * self.latency_seconds

    @property
    def energy_per_sample_joules(self) -> float:
        return safe_divide(self.energy_joules, self.batch_size)

    @property
    def effective_embedding_throughput(self) -> float:
        """Useful embedding bytes per second over the embedding stage time.

        This is the paper's "effective memory throughput" metric: the size of
        all gathered embedding vectors divided by the latency of the
        embedding layer stage alone.
        """
        if self.embedding_traffic is None:
            return 0.0
        emb_time = self.breakdown.get("EMB")
        return safe_divide(self.embedding_traffic.useful_bytes, emb_time)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize to a plain, JSON-compatible dictionary.

        The inverse, :meth:`from_dict`, reconstructs an equal result; the
        round trip is exact because no value is rounded or re-derived.  Used
        by :class:`repro.experiment.ResultCache` persistence and the CLI.
        """
        return {
            "design_point": self.design_point,
            "model_name": self.model_name,
            "batch_size": self.batch_size,
            "breakdown": self.breakdown.to_dict(),
            "embedding_traffic": (
                self.embedding_traffic.to_dict()
                if self.embedding_traffic is not None
                else None
            ),
            "mlp_traffic": (
                self.mlp_traffic.to_dict() if self.mlp_traffic is not None else None
            ),
            "power_watts": self.power_watts,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "InferenceResult":
        """Rebuild an :class:`InferenceResult` serialized by :meth:`to_dict`.

        Every key :meth:`to_dict` writes is required — a truncated or
        hand-edited payload raises ``KeyError`` instead of silently zeroing
        metrics (the traffic profiles are themselves optional and may be
        ``None``, but their keys must be present).
        """
        embedding_traffic = payload["embedding_traffic"]
        mlp_traffic = payload["mlp_traffic"]
        return cls(
            design_point=str(payload["design_point"]),
            model_name=str(payload["model_name"]),
            batch_size=int(payload["batch_size"]),  # type: ignore[arg-type]
            breakdown=LatencyBreakdown.from_dict(payload["breakdown"]),  # type: ignore[arg-type]
            embedding_traffic=(
                MemoryTrafficStats.from_dict(embedding_traffic)  # type: ignore[arg-type]
                if embedding_traffic is not None
                else None
            ),
            mlp_traffic=(
                MemoryTrafficStats.from_dict(mlp_traffic)  # type: ignore[arg-type]
                if mlp_traffic is not None
                else None
            ),
            power_watts=float(payload["power_watts"]),  # type: ignore[arg-type]
            extra=dict(payload["extra"]),  # type: ignore[arg-type]
        )

    def speedup_over(self, baseline: "InferenceResult") -> float:
        """End-to-end speedup of this result relative to ``baseline``."""
        _check_comparable(self, baseline)
        return safe_divide(baseline.latency_seconds, self.latency_seconds)

    def energy_efficiency_over(self, baseline: "InferenceResult") -> float:
        """Energy-efficiency improvement (baseline energy / this energy)."""
        _check_comparable(self, baseline)
        return safe_divide(baseline.energy_joules, self.energy_joules)


def _check_comparable(lhs: InferenceResult, rhs: InferenceResult) -> None:
    if lhs.model_name != rhs.model_name or lhs.batch_size != rhs.batch_size:
        raise SimulationError(
            "results are not comparable: "
            f"({lhs.model_name}, batch {lhs.batch_size}) vs "
            f"({rhs.model_name}, batch {rhs.batch_size})"
        )
