"""Analysis harness: regenerates every table and figure of the evaluation.

Each ``figureN_*`` / ``tableN_*`` function returns plain dataclasses or
dictionaries so the benchmark scripts can both print the same rows/series
the paper reports and assert on their shape (who wins, by how much, where
the crossovers fall).
"""

from repro.analysis.sweep import DesignPointSweep, SweepResult
from repro.analysis.characterization import (
    Figure5Row,
    Figure6Row,
    Figure7Point,
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    figure7_lookup_sweep,
)
from repro.analysis.evaluation import (
    Figure13Row,
    Figure14Row,
    Figure15Row,
    AblationPoint,
    figure13_centaur_throughput,
    figure13_lookup_sweep,
    figure14_centaur_breakdown,
    figure15_comparison,
    ablation_link_bandwidth,
    headline_summary,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    batch_size_sweep,
    embedding_dim_sweep,
    render_sensitivity,
)
from repro.analysis.tables import (
    table1_model_configurations,
    table2_fpga_utilization,
    table3_module_resources,
    table4_power,
    table5_related_work,
)
from repro.analysis.report import (
    render_autoscale_timeline,
    render_capacity_plan,
    render_experiment,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure13,
    render_figure14,
    render_figure15,
    render_ablation,
    render_headline,
    render_serving_comparison,
    render_serving_grid,
    render_workload_catalog,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "DesignPointSweep",
    "SweepResult",
    "Figure5Row",
    "Figure6Row",
    "Figure7Point",
    "figure5_latency_breakdown",
    "figure6_cache_behaviour",
    "figure7_effective_throughput",
    "figure7_lookup_sweep",
    "Figure13Row",
    "Figure14Row",
    "Figure15Row",
    "AblationPoint",
    "figure13_centaur_throughput",
    "figure13_lookup_sweep",
    "figure14_centaur_breakdown",
    "figure15_comparison",
    "ablation_link_bandwidth",
    "headline_summary",
    "SensitivityPoint",
    "batch_size_sweep",
    "embedding_dim_sweep",
    "render_sensitivity",
    "table1_model_configurations",
    "table2_fpga_utilization",
    "table3_module_resources",
    "table4_power",
    "table5_related_work",
    "render_autoscale_timeline",
    "render_capacity_plan",
    "render_experiment",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_figure13",
    "render_figure14",
    "render_figure15",
    "render_ablation",
    "render_headline",
    "render_serving_comparison",
    "render_serving_grid",
    "render_workload_catalog",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
]
