"""Parameter-sweep driver shared by the figure reproductions.

Running every (design point, model, batch size) combination is the common
substrate of Figures 13-15; :class:`DesignPointSweep` runs them once and
caches the :class:`~repro.results.InferenceResult` objects so each figure
function can slice the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.models import DLRMConfig
from repro.config.presets import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.config.system import SystemConfig
from repro.core.centaur import CentaurRunner
from repro.cpu.cpu_runner import CPUOnlyRunner
from repro.errors import SimulationError
from repro.gpu.gpu_runner import CPUGPURunner
from repro.results import InferenceResult

#: Key identifying one sweep point: (design point, model name, batch size).
SweepKey = Tuple[str, str, int]


@dataclass
class SweepResult:
    """All inference results produced by one sweep."""

    results: Dict[SweepKey, InferenceResult] = field(default_factory=dict)

    def get(self, design_point: str, model_name: str, batch_size: int) -> InferenceResult:
        key = (design_point, model_name, batch_size)
        if key not in self.results:
            raise KeyError(f"no sweep result for {key}")
        return self.results[key]

    def add(self, result: InferenceResult) -> None:
        self.results[(result.design_point, result.model_name, result.batch_size)] = result

    def design_points(self) -> List[str]:
        return sorted({key[0] for key in self.results})

    def model_names(self) -> List[str]:
        names = []
        for key in self.results:
            if key[1] not in names:
                names.append(key[1])
        return names

    def batch_sizes(self) -> List[int]:
        return sorted({key[2] for key in self.results})

    def __len__(self) -> int:
        return len(self.results)


class DesignPointSweep:
    """Runs the three design points over models x batch sizes.

    Args:
        system: Hardware configuration bundle shared by all design points.
        models: DLRM configurations to evaluate (defaults to Table I).
        batch_sizes: Input batch sizes (defaults to the paper's 1-128 sweep).
        design_points: Subset of design points to run.
    """

    def __init__(
        self,
        system: SystemConfig,
        models: Optional[Sequence[DLRMConfig]] = None,
        batch_sizes: Optional[Iterable[int]] = None,
        design_points: Sequence[str] = ("CPU-only", "CPU-GPU", "Centaur"),
    ):
        self.system = system
        self.models = tuple(models) if models is not None else PAPER_MODELS
        self.batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
        if not self.models:
            raise SimulationError("sweep needs at least one model")
        if not self.batch_sizes:
            raise SimulationError("sweep needs at least one batch size")
        unknown = set(design_points) - {"CPU-only", "CPU-GPU", "Centaur"}
        if unknown:
            raise SimulationError(f"unknown design points: {sorted(unknown)}")
        self.design_points = tuple(design_points)
        self._runners = {}
        if "CPU-only" in self.design_points:
            self._runners["CPU-only"] = CPUOnlyRunner(system)
        if "CPU-GPU" in self.design_points:
            self._runners["CPU-GPU"] = CPUGPURunner(system)
        if "Centaur" in self.design_points:
            self._runners["Centaur"] = CentaurRunner(system)

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Run every combination and return the collected results."""
        sweep = SweepResult()
        for model in self.models:
            for batch_size in self.batch_sizes:
                for design_point in self.design_points:
                    runner = self._runners[design_point]
                    sweep.add(runner.run(model, batch_size))
        return sweep

    def model_by_name(self, name: str) -> DLRMConfig:
        for model in self.models:
            if model.name == name:
                return model
        raise KeyError(f"no model named {name!r} in this sweep")
