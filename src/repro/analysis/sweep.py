"""Legacy sweep driver, now a compatibility wrapper over the Experiment API.

:class:`DesignPointSweep` predates :class:`repro.experiment.Experiment`;
it survives as a thin shim so existing call sites keep working, while the
actual grid evaluation (and its memoization) lives in the experiment layer.
New code should build grids with ``Experiment(system).backends(...)``
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backends.registry import canonical_backend_name
from repro.config.models import DLRMConfig
from repro.config.presets import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiment.experiment import Experiment
from repro.results import InferenceResult

#: Key identifying one sweep point: (design point, model name, batch size).
SweepKey = Tuple[str, str, int]


@dataclass
class SweepResult:
    """All inference results produced by one sweep."""

    results: Dict[SweepKey, InferenceResult] = field(default_factory=dict)

    def get(self, design_point: str, model_name: str, batch_size: int) -> InferenceResult:
        key = (design_point, model_name, batch_size)
        if key not in self.results:
            # Accept registry names ("cpu") for points stored under their
            # paper label ("CPU-only"), mirroring ExperimentResult lookups.
            try:
                from repro.backends.registry import backend_registration

                label = backend_registration(design_point).design_point
            except ConfigurationError:
                label = design_point
            key = (label, model_name, batch_size)
        if key not in self.results:
            raise KeyError(f"no sweep result for {key}")
        return self.results[key]

    def add(self, result: InferenceResult) -> None:
        self.results[(result.design_point, result.model_name, result.batch_size)] = result

    def design_points(self) -> List[str]:
        return sorted({key[0] for key in self.results})

    def model_names(self) -> List[str]:
        names = []
        for key in self.results:
            if key[1] not in names:
                names.append(key[1])
        return names

    def batch_sizes(self) -> List[int]:
        return sorted({key[2] for key in self.results})

    def __len__(self) -> int:
        return len(self.results)


class DesignPointSweep:
    """Runs the registered design points over models x batch sizes.

    Deprecated shim: delegates to :class:`repro.experiment.Experiment`, so
    every point it produces is shared with the figure functions through the
    process-wide result cache.

    Args:
        system: Hardware configuration bundle shared by all design points.
        models: DLRM configurations to evaluate (defaults to Table I).
        batch_sizes: Input batch sizes (defaults to the paper's 1-128 sweep).
        design_points: Subset of design points to run; accepts the paper
            labels (``"CPU-only"``) and registry names (``"cpu"``) alike.
    """

    def __init__(
        self,
        system: SystemConfig,
        models: Optional[Sequence[DLRMConfig]] = None,
        batch_sizes: Optional[Iterable[int]] = None,
        design_points: Sequence[str] = ("CPU-only", "CPU-GPU", "Centaur"),
    ):
        self.system = system
        self.models = tuple(models) if models is not None else PAPER_MODELS
        self.batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
        if not self.models:
            raise SimulationError("sweep needs at least one model")
        if not self.batch_sizes:
            raise SimulationError("sweep needs at least one batch size")
        unknown = []
        backend_names = []
        for design_point in design_points:
            try:
                backend_names.append(canonical_backend_name(design_point))
            except ConfigurationError:
                unknown.append(design_point)
        if unknown:
            raise SimulationError(f"unknown design points: {sorted(unknown)}")
        self.design_points = tuple(design_points)
        self._experiment = (
            Experiment(system)
            .backends(*backend_names)
            .models(self.models)
            .batch_sizes(self.batch_sizes)
        )

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Run every combination and return the collected results."""
        return self._experiment.run().to_sweep_result()

    def model_by_name(self, name: str) -> DLRMConfig:
        for model in self.models:
            if model.name == name:
                return model
        raise KeyError(f"no model named {name!r} in this sweep")
