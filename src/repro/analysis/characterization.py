"""Workload characterization of CPU-only DLRM inference (Figures 5-7).

These functions reproduce Section III of the paper: the latency breakdown of
CPU-only inference, the cache behaviour (LLC miss rate and MPKI) of the
embedding versus MLP layers, and the effective memory throughput achieved by
embedding gathers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.config.models import DLRMConfig, homogeneous_dlrm
from repro.config.presets import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.experiment.experiment import Experiment, VariantSweep


@dataclass(frozen=True)
class Figure5Row:
    """One bar of Figure 5: CPU-only latency breakdown for (model, batch)."""

    model_name: str
    batch_size: int
    emb_fraction: float
    mlp_fraction: float
    other_fraction: float
    latency_s: float
    normalized_latency: float

    def fractions_sum(self) -> float:
        return self.emb_fraction + self.mlp_fraction + self.other_fraction


@dataclass(frozen=True)
class Figure6Row:
    """One group of Figure 6: cache behaviour of EMB vs MLP for (model, batch)."""

    model_name: str
    batch_size: int
    emb_llc_miss_rate: float
    mlp_llc_miss_rate: float
    emb_mpki: float
    mlp_mpki: float


@dataclass(frozen=True)
class Figure7Point:
    """One point of Figure 7: effective embedding throughput."""

    model_name: str
    batch_size: int
    lookups_per_table: float
    effective_throughput: float
    peak_dram_bandwidth: float

    @property
    def bandwidth_utilization(self) -> float:
        return self.effective_throughput / self.peak_dram_bandwidth


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
def figure5_latency_breakdown(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
) -> List[Figure5Row]:
    """Reproduce Figure 5: CPU-only latency breakdown and normalized latency.

    Latencies are normalized to the first (model, batch) combination —
    DLRM(1) at batch size 1 in the paper — exactly as the figure's right
    axis does.
    """
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    grid = (
        Experiment(system).backends("cpu").models(models).batch_sizes(batch_sizes).run()
    )
    rows: List[Figure5Row] = []
    reference_latency: Optional[float] = None
    for model in models:
        for batch_size in batch_sizes:
            result = grid.get("cpu", model.name, batch_size)
            if reference_latency is None:
                reference_latency = result.latency_seconds
            rows.append(
                Figure5Row(
                    model_name=model.name,
                    batch_size=batch_size,
                    emb_fraction=result.breakdown.fraction("EMB"),
                    mlp_fraction=result.breakdown.fraction("MLP"),
                    other_fraction=result.breakdown.fraction("Other"),
                    latency_s=result.latency_seconds,
                    normalized_latency=result.latency_seconds / reference_latency,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------
def figure6_cache_behaviour(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
) -> List[Figure6Row]:
    """Reproduce Figure 6: LLC miss rate and MPKI of EMB vs MLP layers."""
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    grid = (
        Experiment(system).backends("cpu").models(models).batch_sizes(batch_sizes).run()
    )
    rows: List[Figure6Row] = []
    for model in models:
        for batch_size in batch_sizes:
            result = grid.get("cpu", model.name, batch_size)
            if result.embedding_traffic is None or result.mlp_traffic is None:
                raise SimulationError("CPU-only runner must attach traffic profiles")
            rows.append(
                Figure6Row(
                    model_name=model.name,
                    batch_size=batch_size,
                    emb_llc_miss_rate=result.embedding_traffic.llc.miss_rate,
                    mlp_llc_miss_rate=result.mlp_traffic.llc.miss_rate,
                    emb_mpki=result.embedding_traffic.mpki,
                    mlp_mpki=result.mlp_traffic.mpki,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------
def figure7_effective_throughput(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
) -> List[Figure7Point]:
    """Reproduce Figure 7(a): CPU-only effective embedding throughput."""
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    grid = (
        Experiment(system).backends("cpu").models(models).batch_sizes(batch_sizes).run()
    )
    points: List[Figure7Point] = []
    for model in models:
        for batch_size in batch_sizes:
            throughput = grid.get("cpu", model.name, batch_size).effective_embedding_throughput
            points.append(
                Figure7Point(
                    model_name=model.name,
                    batch_size=batch_size,
                    lookups_per_table=model.gathers_per_table,
                    effective_throughput=throughput,
                    peak_dram_bandwidth=system.memory.peak_bandwidth,
                )
            )
    return points


def single_table_model(
    reference: DLRMConfig, lookups_per_table: int, name: Optional[str] = None
) -> DLRMConfig:
    """A single-table variant of ``reference`` used by Figure 7(b)/13(b).

    The paper sweeps the total number of lookups performed on one embedding
    table of the DLRM(4) configuration.
    """
    if lookups_per_table <= 0:
        raise SimulationError(f"lookups_per_table must be positive, got {lookups_per_table}")
    single = homogeneous_dlrm(
        name=name or f"{reference.name}-1table-{lookups_per_table}lookups",
        num_tables=1,
        rows_per_table=reference.tables[0].num_rows,
        gathers_per_table=lookups_per_table,
        embedding_dim=reference.embedding_dim,
        num_dense_features=reference.num_dense_features,
    )
    return single


def figure7_lookup_sweep(
    system: SystemConfig,
    reference: Optional[DLRMConfig] = None,
    batch_sizes: Optional[Iterable[int]] = None,
    lookups: Iterable[int] = (1, 2, 5, 10, 20, 50, 100, 200, 400, 800),
) -> List[Figure7Point]:
    """Reproduce Figure 7(b): throughput vs lookups per table (single table).

    ``lookups`` is the number of lookups *per sample*; the x-axis of the
    paper's figure (total lookups per table) is ``lookups * batch``, which is
    reported in the returned points via ``lookups_per_table``.
    """
    reference = reference if reference is not None else PAPER_MODELS[3]  # DLRM(4)
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    lookups = tuple(lookups)
    sweep = VariantSweep(
        system,
        ("cpu",),
        {count: single_table_model(reference, count) for count in lookups},
        batch_sizes,
    )
    points: List[Figure7Point] = []
    for batch_size in batch_sizes:
        for lookup_count in lookups:
            model = sweep.model(lookup_count)
            throughput = sweep.result(
                lookup_count, "cpu", batch_size
            ).effective_embedding_throughput
            points.append(
                Figure7Point(
                    model_name=model.name,
                    batch_size=batch_size,
                    lookups_per_table=float(lookup_count * batch_size),
                    effective_throughput=throughput,
                    peak_dram_bandwidth=system.memory.peak_bandwidth,
                )
            )
    return points
