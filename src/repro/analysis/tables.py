"""Reproduction of the paper's Tables I-V as structured data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config.models import DLRMConfig
from repro.config.presets import PAPER_MODELS
from repro.config.system import FPGAConfig, PowerConfig
from repro.errors import ConfigurationError
from repro.core.resources import FPGAResourceModel, ModuleResources
from repro.power.models import PowerModel


# ---------------------------------------------------------------------------
# Table I: recommendation model configurations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One row of Table I, with the paper's published values for comparison."""

    model_name: str
    num_tables: int
    gathers_per_table: float
    table_bytes: int
    mlp_bytes: int
    paper_table_bytes: Optional[int]
    paper_mlp_bytes: Optional[int]


#: The values printed in the paper's Table I (bytes).
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "DLRM(1)": {"tables": 5, "gathers": 20, "table_bytes": 128_000_000, "mlp_bytes": 57_400},
    "DLRM(2)": {"tables": 50, "gathers": 20, "table_bytes": 1_280_000_000, "mlp_bytes": 57_400},
    "DLRM(3)": {"tables": 5, "gathers": 80, "table_bytes": 128_000_000, "mlp_bytes": 57_400},
    "DLRM(4)": {"tables": 50, "gathers": 80, "table_bytes": 1_280_000_000, "mlp_bytes": 57_400},
    "DLRM(5)": {"tables": 50, "gathers": 80, "table_bytes": 3_200_000_000, "mlp_bytes": 57_400},
    "DLRM(6)": {"tables": 5, "gathers": 2, "table_bytes": 128_000_000, "mlp_bytes": 557_000},
}


def table1_model_configurations(
    models: Optional[Sequence[DLRMConfig]] = None,
) -> List[Table1Row]:
    """Reproduce Table I from the configured models."""
    models = tuple(models) if models is not None else PAPER_MODELS
    rows: List[Table1Row] = []
    for model in models:
        paper = PAPER_TABLE1.get(model.name)
        rows.append(
            Table1Row(
                model_name=model.name,
                num_tables=model.num_tables,
                gathers_per_table=model.gathers_per_table,
                table_bytes=model.embedding_table_bytes,
                mlp_bytes=model.mlp_parameter_bytes,
                paper_table_bytes=paper["table_bytes"] if paper else None,
                paper_mlp_bytes=paper["mlp_bytes"] if paper else None,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table II: Centaur FPGA resource utilization
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    """One resource column of Table II: available, used and utilization."""

    resource: str
    available: float
    used: float
    paper_used: Optional[float]

    @property
    def utilization(self) -> float:
        return self.used / self.available


#: Table II values from the paper (Centaur row).
PAPER_TABLE2: Dict[str, float] = {
    "ALM": 127_719,
    "Block memory bits": 23_700_000,
    "RAM blocks": 2_238,
    "DSP": 784,
    "PLL": 48,
}


def table2_fpga_utilization(fpga: Optional[FPGAConfig] = None) -> List[Table2Row]:
    """Reproduce Table II from the FPGA resource model."""
    fpga = fpga if fpga is not None else FPGAConfig()
    model = FPGAResourceModel(fpga)
    report = model.report()
    fabric = fpga.fabric
    return [
        Table2Row("ALM", fabric.alms, report.alms, PAPER_TABLE2["ALM"]),
        Table2Row(
            "Block memory bits",
            fabric.block_memory_bits,
            report.block_memory_bits,
            PAPER_TABLE2["Block memory bits"],
        ),
        Table2Row("RAM blocks", fabric.ram_blocks, report.ram_blocks, PAPER_TABLE2["RAM blocks"]),
        Table2Row("DSP", fabric.dsps, report.dsps, PAPER_TABLE2["DSP"]),
        Table2Row("PLL", fabric.plls, report.plls, PAPER_TABLE2["PLL"]),
    ]


# ---------------------------------------------------------------------------
# Table III: sparse vs dense module resource usage
# ---------------------------------------------------------------------------
#: Table III values from the paper, keyed by (group, module name).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "Sparse/Base ptr reg.": {"lc_comb": 98, "lc_reg": 211, "mem_bits": 0, "dsp": 0},
    "Sparse/Gather unit": {"lc_comb": 295, "lc_reg": 216, "mem_bits": 0, "dsp": 0},
    "Sparse/Reduction unit": {"lc_comb": 108, "lc_reg": 8_260, "mem_bits": 0, "dsp": 96},
    "Sparse/SRAM arrays": {"lc_comb": 350, "lc_reg": 98, "mem_bits": 12_200_000, "dsp": 0},
    "Dense/MLP unit": {"lc_comb": 40_000, "lc_reg": 131_000, "mem_bits": 2_300_000, "dsp": 512},
    "Dense/Feat. int. unit": {"lc_comb": 10_000, "lc_reg": 33_000, "mem_bits": 593_000, "dsp": 128},
    "Dense/SRAM arrays": {"lc_comb": 1_000, "lc_reg": 11_000, "mem_bits": 1_600_000, "dsp": 48},
    "Dense/Weights": {"lc_comb": 13, "lc_reg": 77, "mem_bits": 5_200_000, "dsp": 0},
    "Others/Misc.": {"lc_comb": 587, "lc_reg": 6_000, "mem_bits": 608_000, "dsp": 0},
}


@dataclass(frozen=True)
class Table3Row:
    """One module row of Table III, alongside the paper's value when known."""

    module: ModuleResources
    paper: Optional[Dict[str, float]]

    @property
    def key(self) -> str:
        return f"{self.module.group}/{self.module.name}"


def table3_module_resources(fpga: Optional[FPGAConfig] = None) -> List[Table3Row]:
    """Reproduce Table III's per-module resource breakdown."""
    fpga = fpga if fpga is not None else FPGAConfig()
    model = FPGAResourceModel(fpga)
    rows: List[Table3Row] = []
    for module in model.all_modules():
        key = f"{module.group}/{module.name}"
        rows.append(Table3Row(module=module, paper=PAPER_TABLE3.get(key)))
    return rows


# ---------------------------------------------------------------------------
# Table IV: power consumption
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table4Row:
    """One design-point column of Table IV.

    ``backend`` carries the registry name of the design point (when one is
    registered), tying the power table to the backend registry the rest of
    the evaluation addresses devices by.
    """

    design_point: str
    watts: float
    paper_watts: float
    backend: Optional[str] = None


PAPER_TABLE4: Dict[str, float] = {"CPU-only": 80.0, "CPU-GPU": 147.0, "Centaur": 74.0}


def table4_power(power: Optional[PowerConfig] = None) -> List[Table4Row]:
    """Reproduce Table IV (the CPU-GPU column is the sum of CPU and GPU power)."""
    from repro.backends.registry import canonical_backend_name

    model = PowerModel(power if power is not None else PowerConfig())
    rows = []
    for design_point, watts in model.table4().items():
        try:
            backend = canonical_backend_name(design_point)
        except ConfigurationError:
            backend = None
        rows.append(
            Table4Row(
                design_point=design_point,
                watts=watts,
                paper_watts=PAPER_TABLE4[design_point],
                backend=backend,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table V: qualitative comparison against prior work
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table5Row:
    """One prior-work column of Table V (a qualitative feature matrix)."""

    system: str
    transparent_to_hardware: bool
    transparent_to_software: bool
    accelerates_dense_dnn: bool
    accelerates_gathers: bool
    handles_small_vector_loads: bool
    studies_recommendation: bool


def table5_related_work() -> List[Table5Row]:
    """Reproduce Table V's comparison between Centaur and prior accelerators."""
    return [
        Table5Row("TABLA", True, True, True, False, False, False),
        Table5Row("DNNWEAVER", True, True, True, False, False, False),
        Table5Row("DNNBuilder", True, True, True, False, False, False),
        Table5Row("Cloud-DNN", True, True, True, False, False, False),
        Table5Row("Chameleon", False, False, False, True, True, False),
        Table5Row("TensorDIMM", False, False, False, True, False, True),
        Table5Row("Centaur (Ours)", True, True, True, True, True, True),
    ]
