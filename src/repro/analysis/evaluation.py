"""Centaur evaluation results (Figures 13-15) and the Section VII ablation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config.models import DLRMConfig
from repro.config.presets import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.config.system import SystemConfig
from repro.analysis.characterization import single_table_model
from repro.analysis.sweep import SweepResult
from repro.errors import SimulationError
from repro.experiment.experiment import Experiment, VariantSweep
from repro.results import InferenceResult
from repro.utils.stats_utils import geometric_mean


# ---------------------------------------------------------------------------
# Figure 13: EB-Streamer effective gather throughput
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure13Row:
    """One bar of Figure 13(a): Centaur gather throughput and its improvement.

    ``lookups_per_table`` records the total number of lookups performed on
    one table for the whole batch (the x-axis of Figure 13(b)).
    """

    model_name: str
    batch_size: int
    centaur_throughput: float
    cpu_throughput: float
    lookups_per_table: float = 0.0

    @property
    def improvement(self) -> float:
        if self.cpu_throughput == 0:
            return float("inf")
        return self.centaur_throughput / self.cpu_throughput


def figure13_centaur_throughput(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
) -> List[Figure13Row]:
    """Reproduce Figure 13(a): Centaur's effective gather throughput vs CPU-only."""
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    grid = (
        Experiment(system)
        .backends("cpu", "centaur")
        .models(models)
        .batch_sizes(batch_sizes)
        .run()
    )
    rows: List[Figure13Row] = []
    for model in models:
        for batch_size in batch_sizes:
            rows.append(
                Figure13Row(
                    model_name=model.name,
                    batch_size=batch_size,
                    centaur_throughput=grid.get(
                        "centaur", model.name, batch_size
                    ).effective_embedding_throughput,
                    cpu_throughput=grid.get(
                        "cpu", model.name, batch_size
                    ).effective_embedding_throughput,
                    lookups_per_table=model.gathers_per_table * batch_size,
                )
            )
    return rows


def figure13_lookup_sweep(
    system: SystemConfig,
    reference: Optional[DLRMConfig] = None,
    batch_sizes: Optional[Iterable[int]] = None,
    lookups: Iterable[int] = (1, 2, 5, 10, 20, 50, 100, 200, 400, 800),
) -> List[Figure13Row]:
    """Reproduce Figure 13(b): Centaur throughput vs lookups per table."""
    reference = reference if reference is not None else PAPER_MODELS[3]  # DLRM(4)
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    lookups = tuple(lookups)
    sweep = VariantSweep(
        system,
        ("cpu", "centaur"),
        {count: single_table_model(reference, count) for count in lookups},
        batch_sizes,
    )
    rows: List[Figure13Row] = []
    for batch_size in batch_sizes:
        for lookup_count in lookups:
            rows.append(
                Figure13Row(
                    model_name=sweep.model(lookup_count).name,
                    batch_size=batch_size,
                    centaur_throughput=sweep.result(
                        lookup_count, "centaur", batch_size
                    ).effective_embedding_throughput,
                    cpu_throughput=sweep.result(
                        lookup_count, "cpu", batch_size
                    ).effective_embedding_throughput,
                    lookups_per_table=float(lookup_count * batch_size),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 14: Centaur latency breakdown and speedup over CPU-only
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure14Row:
    """One bar of Figure 14: Centaur breakdown plus its speedup over CPU-only."""

    model_name: str
    batch_size: int
    idx_fraction: float
    emb_fraction: float
    dnf_fraction: float
    mlp_fraction: float
    other_fraction: float
    centaur_latency_s: float
    cpu_latency_s: float

    @property
    def speedup(self) -> float:
        return self.cpu_latency_s / self.centaur_latency_s

    def fractions_sum(self) -> float:
        return (
            self.idx_fraction
            + self.emb_fraction
            + self.dnf_fraction
            + self.mlp_fraction
            + self.other_fraction
        )


def figure14_centaur_breakdown(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
    sweep: Optional[SweepResult] = None,
) -> List[Figure14Row]:
    """Reproduce Figure 14: Centaur's latency breakdown and end-to-end speedup.

    ``sweep`` may be a legacy :class:`SweepResult` or an
    :class:`~repro.experiment.ExperimentResult`; both answer
    ``get(design_point, model_name, batch_size)``.
    """
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    if sweep is None:
        sweep = (
            Experiment(system)
            .backends("cpu", "centaur")
            .models(models)
            .batch_sizes(batch_sizes)
            .run()
        )
    rows: List[Figure14Row] = []
    for model in models:
        for batch_size in batch_sizes:
            centaur = sweep.get("Centaur", model.name, batch_size)
            cpu = sweep.get("CPU-only", model.name, batch_size)
            fractions = centaur.breakdown.fractions()
            rows.append(
                Figure14Row(
                    model_name=model.name,
                    batch_size=batch_size,
                    idx_fraction=fractions.get("IDX", 0.0),
                    emb_fraction=fractions.get("EMB", 0.0),
                    dnf_fraction=fractions.get("DNF", 0.0),
                    mlp_fraction=fractions.get("MLP", 0.0),
                    other_fraction=fractions.get("Other", 0.0),
                    centaur_latency_s=centaur.latency_seconds,
                    cpu_latency_s=cpu.latency_seconds,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 15: performance and energy-efficiency of all three design points
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure15Row:
    """One group of Figure 15: all design points normalized to CPU-GPU."""

    model_name: str
    batch_size: int
    cpu_gpu_performance: float
    cpu_only_performance: float
    centaur_performance: float
    cpu_gpu_efficiency: float
    cpu_only_efficiency: float
    centaur_efficiency: float

    @property
    def centaur_speedup_over_cpu(self) -> float:
        return self.centaur_performance / self.cpu_only_performance

    @property
    def centaur_efficiency_over_cpu(self) -> float:
        return self.centaur_efficiency / self.cpu_only_efficiency


def figure15_comparison(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
    sweep: Optional[SweepResult] = None,
) -> List[Figure15Row]:
    """Reproduce Figure 15: performance and energy-efficiency vs CPU-GPU.

    ``sweep`` may be a legacy :class:`SweepResult` or an
    :class:`~repro.experiment.ExperimentResult`.
    """
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    if sweep is None:
        sweep = (
            Experiment(system)
            .backends("cpu", "cpu-gpu", "centaur")
            .models(models)
            .batch_sizes(batch_sizes)
            .run()
        )
    rows: List[Figure15Row] = []
    for model in models:
        for batch_size in batch_sizes:
            cpu_gpu = sweep.get("CPU-GPU", model.name, batch_size)
            cpu = sweep.get("CPU-only", model.name, batch_size)
            centaur = sweep.get("Centaur", model.name, batch_size)
            # Performance is normalized to CPU-GPU (the slowest design point
            # in the paper), i.e. CPU-GPU latency / design latency.
            rows.append(
                Figure15Row(
                    model_name=model.name,
                    batch_size=batch_size,
                    cpu_gpu_performance=1.0,
                    cpu_only_performance=cpu.speedup_over(cpu_gpu),
                    centaur_performance=centaur.speedup_over(cpu_gpu),
                    cpu_gpu_efficiency=1.0,
                    cpu_only_efficiency=cpu.energy_efficiency_over(cpu_gpu),
                    centaur_efficiency=centaur.energy_efficiency_over(cpu_gpu),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Section VII ablation: CPU<->FPGA bandwidth and the cache-bypass path
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AblationPoint:
    """End-to-end Centaur latency under one link configuration."""

    label: str
    link_bandwidth: float
    cache_bypass: bool
    model_name: str
    batch_size: int
    latency_s: float
    gather_throughput: float
    speedup_over_harpv2: float


def ablation_link_bandwidth(
    system: SystemConfig,
    model: Optional[DLRMConfig] = None,
    batch_size: int = 64,
    bandwidth_scales: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    include_bypass: bool = True,
) -> List[AblationPoint]:
    """Quantify the Section VII discussion: faster links and the bypass path.

    The paper argues that upcoming package-level signaling (hundreds of GB/s)
    and a cache-bypassing gather path would proportionally lift Centaur's
    embedding throughput.  This sweep scales the HARPv2 link bandwidth and
    optionally enables the bypass path at DRAM bandwidth.
    """
    model = model if model is not None else PAPER_MODELS[3]  # DLRM(4)
    if batch_size <= 0:
        raise SimulationError(f"batch_size must be positive, got {batch_size}")

    def centaur_point(target_system: SystemConfig) -> InferenceResult:
        """One cached Centaur design point on a (possibly modified) platform."""
        grid = (
            Experiment(target_system)
            .backends("centaur")
            .models(model)
            .batch_sizes(batch_size)
            .run()
        )
        return grid.get("centaur", model.name, batch_size)

    baseline = centaur_point(system)
    points: List[AblationPoint] = []
    for scale in bandwidth_scales:
        if scale <= 0:
            raise SimulationError(f"bandwidth scales must be positive, got {scale}")
        from dataclasses import replace as dc_replace

        link = dc_replace(
            system.link,
            theoretical_bandwidth=system.link.theoretical_bandwidth * scale,
            effective_bandwidth=system.link.effective_bandwidth * scale,
            max_outstanding_requests=int(system.link.max_outstanding_requests * scale),
        )
        result = centaur_point(system.with_link(link))
        points.append(
            AblationPoint(
                label=f"{scale:.0f}x link",
                link_bandwidth=link.effective_bandwidth,
                cache_bypass=False,
                model_name=model.name,
                batch_size=batch_size,
                latency_s=result.latency_seconds,
                gather_throughput=result.effective_embedding_throughput,
                speedup_over_harpv2=baseline.latency_seconds / result.latency_seconds,
            )
        )
    if include_bypass:
        bypass_link = system.link.with_bypass(system.memory.peak_bandwidth)
        from dataclasses import replace as dc_replace

        bypass_link = dc_replace(
            bypass_link,
            max_outstanding_requests=system.link.max_outstanding_requests * 4,
        )
        result = centaur_point(system.with_link(bypass_link))
        points.append(
            AblationPoint(
                label="cache-bypass @ DRAM bw",
                link_bandwidth=system.memory.peak_bandwidth,
                cache_bypass=True,
                model_name=model.name,
                batch_size=batch_size,
                latency_s=result.latency_seconds,
                gather_throughput=result.effective_embedding_throughput,
                speedup_over_harpv2=baseline.latency_seconds / result.latency_seconds,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Headline summary (the abstract's numbers)
# ---------------------------------------------------------------------------
def headline_summary(
    system: SystemConfig,
    models: Optional[Sequence[DLRMConfig]] = None,
    batch_sizes: Optional[Iterable[int]] = None,
) -> Dict[str, float]:
    """Compute the paper's headline metrics over the full sweep.

    Returns a dictionary with the min/max/geomean Centaur speedup and
    energy-efficiency improvement over CPU-only, the mean gather-throughput
    improvement, and the CPU-only vs CPU-GPU comparison.
    """
    models = tuple(models) if models is not None else PAPER_MODELS
    batch_sizes = tuple(batch_sizes) if batch_sizes is not None else PAPER_BATCH_SIZES
    sweep = (
        Experiment(system)
        .backends("cpu", "cpu-gpu", "centaur")
        .models(models)
        .batch_sizes(batch_sizes)
        .run()
    )

    speedups: List[float] = []
    efficiencies: List[float] = []
    bandwidth_improvements: List[float] = []
    cpu_vs_gpu_perf: List[float] = []
    cpu_vs_gpu_eff: List[float] = []
    for model in models:
        for batch_size in batch_sizes:
            cpu = sweep.get("CPU-only", model.name, batch_size)
            gpu = sweep.get("CPU-GPU", model.name, batch_size)
            centaur = sweep.get("Centaur", model.name, batch_size)
            speedups.append(centaur.speedup_over(cpu))
            efficiencies.append(centaur.energy_efficiency_over(cpu))
            cpu_throughput = cpu.effective_embedding_throughput
            if cpu_throughput > 0:
                bandwidth_improvements.append(
                    centaur.effective_embedding_throughput / cpu_throughput
                )
            cpu_vs_gpu_perf.append(cpu.speedup_over(gpu))
            cpu_vs_gpu_eff.append(cpu.energy_efficiency_over(gpu))

    return {
        "centaur_speedup_min": min(speedups),
        "centaur_speedup_max": max(speedups),
        "centaur_speedup_geomean": geometric_mean(speedups),
        "centaur_efficiency_min": min(efficiencies),
        "centaur_efficiency_max": max(efficiencies),
        "centaur_efficiency_geomean": geometric_mean(efficiencies),
        "gather_bw_improvement_mean": sum(bandwidth_improvements)
        / len(bandwidth_improvements),
        "gather_bw_improvement_max": max(bandwidth_improvements),
        "gather_bw_improvement_min": min(bandwidth_improvements),
        "cpu_vs_gpu_performance_geomean": geometric_mean(cpu_vs_gpu_perf),
        "cpu_vs_gpu_efficiency_geomean": geometric_mean(cpu_vs_gpu_eff),
    }
