"""Text rendering of the reproduced figures and tables.

The benchmark harness prints these renderings so that the console output of
``pytest benchmarks/ --benchmark-only`` contains the same rows and series
the paper reports.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.analysis.characterization import Figure5Row, Figure6Row, Figure7Point
from repro.analysis.evaluation import AblationPoint, Figure13Row, Figure14Row, Figure15Row
from repro.analysis.tables import Table1Row, Table2Row, Table3Row, Table4Row, Table5Row
from repro.utils.tables import TextTable
from repro.utils.units import bytes_to_human


def render_figure5(rows: Sequence[Figure5Row]) -> str:
    """Render Figure 5 (CPU-only latency breakdown) as a text table."""
    table = TextTable(
        ["model", "batch", "EMB %", "MLP %", "Other %", "latency", "normalized"],
        title="Figure 5: CPU-only inference latency breakdown",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.batch_size,
                100.0 * row.emb_fraction,
                100.0 * row.mlp_fraction,
                100.0 * row.other_fraction,
                f"{row.latency_s * 1e6:.1f} us",
                row.normalized_latency,
            ]
        )
    return table.render()


def render_figure6(rows: Sequence[Figure6Row]) -> str:
    """Render Figure 6 (LLC miss rate and MPKI of EMB vs MLP)."""
    table = TextTable(
        ["model", "batch", "EMB miss %", "MLP miss %", "EMB MPKI", "MLP MPKI"],
        title="Figure 6: LLC miss rate and MPKI (EMB vs MLP)",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.batch_size,
                100.0 * row.emb_llc_miss_rate,
                100.0 * row.mlp_llc_miss_rate,
                row.emb_mpki,
                row.mlp_mpki,
            ]
        )
    return table.render()


def render_figure7(points: Sequence[Figure7Point], title_suffix: str = "(a)") -> str:
    """Render Figure 7 (CPU-only effective embedding throughput)."""
    table = TextTable(
        ["model", "batch", "lookups/table", "effective GB/s", "% of DRAM peak"],
        title=f"Figure 7{title_suffix}: CPU-only effective memory throughput",
    )
    for point in points:
        table.add_row(
            [
                point.model_name,
                point.batch_size,
                point.lookups_per_table,
                point.effective_throughput / 1e9,
                100.0 * point.bandwidth_utilization,
            ]
        )
    return table.render()


def render_figure13(rows: Sequence[Figure13Row], title_suffix: str = "(a)") -> str:
    """Render Figure 13 (Centaur gather throughput and improvement)."""
    table = TextTable(
        ["model", "batch", "Centaur GB/s", "CPU-only GB/s", "improvement"],
        title=f"Figure 13{title_suffix}: Centaur effective gather throughput",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.batch_size,
                row.centaur_throughput / 1e9,
                row.cpu_throughput / 1e9,
                row.improvement,
            ]
        )
    return table.render()


def render_figure14(rows: Sequence[Figure14Row]) -> str:
    """Render Figure 14 (Centaur latency breakdown and speedup)."""
    table = TextTable(
        ["model", "batch", "IDX %", "EMB %", "DNF %", "MLP %", "Other %", "speedup"],
        title="Figure 14: Centaur latency breakdown and speedup over CPU-only",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.batch_size,
                100.0 * row.idx_fraction,
                100.0 * row.emb_fraction,
                100.0 * row.dnf_fraction,
                100.0 * row.mlp_fraction,
                100.0 * row.other_fraction,
                row.speedup,
            ]
        )
    return table.render()


def render_figure15(rows: Sequence[Figure15Row]) -> str:
    """Render Figure 15 (performance and energy-efficiency vs CPU-GPU)."""
    table = TextTable(
        [
            "model",
            "batch",
            "perf CPU-GPU",
            "perf CPU-only",
            "perf Centaur",
            "eff CPU-GPU",
            "eff CPU-only",
            "eff Centaur",
        ],
        title="Figure 15: performance / energy-efficiency normalized to CPU-GPU",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.batch_size,
                row.cpu_gpu_performance,
                row.cpu_only_performance,
                row.centaur_performance,
                row.cpu_gpu_efficiency,
                row.cpu_only_efficiency,
                row.centaur_efficiency,
            ]
        )
    return table.render()


def render_ablation(points: Sequence[AblationPoint]) -> str:
    """Render the Section VII link-bandwidth ablation."""
    table = TextTable(
        ["configuration", "link GB/s", "bypass", "latency", "gather GB/s", "speedup vs HARPv2"],
        title="Section VII ablation: CPU<->FPGA bandwidth and cache-bypass path",
    )
    for point in points:
        table.add_row(
            [
                point.label,
                point.link_bandwidth / 1e9,
                point.cache_bypass,
                f"{point.latency_s * 1e6:.1f} us",
                point.gather_throughput / 1e9,
                point.speedup_over_harpv2,
            ]
        )
    return table.render()


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table I (model configurations)."""
    table = TextTable(
        ["model", "# tables", "gathers/table", "table size", "MLP size", "paper table", "paper MLP"],
        title="Table I: recommendation model configurations",
    )
    for row in rows:
        table.add_row(
            [
                row.model_name,
                row.num_tables,
                row.gathers_per_table,
                bytes_to_human(row.table_bytes),
                bytes_to_human(row.mlp_bytes),
                bytes_to_human(row.paper_table_bytes) if row.paper_table_bytes else "-",
                bytes_to_human(row.paper_mlp_bytes) if row.paper_mlp_bytes else "-",
            ]
        )
    return table.render()


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table II (FPGA resource utilization)."""
    table = TextTable(
        ["resource", "available (GX1150)", "Centaur (model)", "Centaur (paper)", "utilization %"],
        title="Table II: Centaur FPGA resource utilization",
    )
    for row in rows:
        table.add_row(
            [
                row.resource,
                row.available,
                row.used,
                row.paper_used if row.paper_used is not None else "-",
                100.0 * row.utilization,
            ]
        )
    return table.render()


def render_table3(rows: Sequence[Table3Row]) -> str:
    """Render Table III (sparse vs dense module resources)."""
    table = TextTable(
        ["group", "module", "LC comb", "LC reg", "block mem bits", "DSP"],
        title="Table III: sparse vs dense FPGA resource usage",
    )
    for row in rows:
        table.add_row(
            [
                row.module.group,
                row.module.name,
                row.module.lc_comb,
                row.module.lc_reg,
                row.module.block_memory_bits,
                row.module.dsps,
            ]
        )
    return table.render()


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Render Table IV (power consumption)."""
    table = TextTable(
        ["design point", "watts (model)", "watts (paper)"],
        title="Table IV: power consumption",
    )
    for row in rows:
        table.add_row([row.design_point, row.watts, row.paper_watts])
    return table.render()


def render_table5(rows: Sequence[Table5Row]) -> str:
    """Render Table V (comparison against prior work)."""
    table = TextTable(
        [
            "system",
            "transparent hw",
            "transparent sw",
            "dense DNNs",
            "gathers",
            "small vectors",
            "recsys study",
        ],
        title="Table V: comparison between Centaur and prior work",
    )
    for row in rows:
        table.add_row(
            [
                row.system,
                row.transparent_to_hardware,
                row.transparent_to_software,
                row.accelerates_dense_dnn,
                row.accelerates_gathers,
                row.handles_small_vector_loads,
                row.studies_recommendation,
            ]
        )
    return table.render()


def render_headline(summary: dict) -> List[str]:
    """Render the headline summary as a list of printable lines."""
    return [
        "Headline results (this reproduction vs the paper's reported ranges):",
        (
            f"  Centaur speedup over CPU-only      : "
            f"{summary['centaur_speedup_min']:.2f}x - {summary['centaur_speedup_max']:.2f}x "
            f"(geomean {summary['centaur_speedup_geomean']:.2f}x; paper: 1.7x - 17.2x)"
        ),
        (
            f"  Centaur energy-efficiency gain     : "
            f"{summary['centaur_efficiency_min']:.2f}x - {summary['centaur_efficiency_max']:.2f}x "
            f"(geomean {summary['centaur_efficiency_geomean']:.2f}x; paper: 1.7x - 19.5x)"
        ),
        (
            f"  Gather throughput improvement      : mean "
            f"{summary['gather_bw_improvement_mean']:.1f}x, max "
            f"{summary['gather_bw_improvement_max']:.1f}x, min "
            f"{summary['gather_bw_improvement_min']:.2f}x (paper: avg ~27x, min ~0.67x)"
        ),
        (
            f"  CPU-only vs CPU-GPU                : "
            f"{summary['cpu_vs_gpu_performance_geomean']:.2f}x perf, "
            f"{summary['cpu_vs_gpu_efficiency_geomean']:.2f}x energy-eff "
            f"(paper: ~1.1x / ~1.9x)"
        ),
    ]


def render_experiment(grid, title: str = "Experiment grid") -> str:
    """Render an :class:`~repro.experiment.ExperimentResult` as a text table.

    One row per design point: backend, model, batch, end-to-end latency,
    throughput and energy.
    """
    from repro.utils.units import seconds_to_human

    table = TextTable(
        ["backend", "model", "batch", "latency", "samples/s", "energy/batch (mJ)"],
        title=title,
    )
    for (backend, _, _), result in grid:
        table.add_row(
            [
                backend,
                result.model_name,
                result.batch_size,
                seconds_to_human(result.latency_seconds),
                f"{result.throughput_samples_per_second:,.0f}",
                result.energy_joules * 1e3,
            ]
        )
    return table.render()


def render_serving_comparison(
    reports: Mapping[str, object],
    sla_s: float,
    title: str = "Online serving comparison",
) -> str:
    """Render serving outcomes (single-device or cluster) side by side.

    Args:
        reports: Row label -> :class:`~repro.serving.metrics.ServingReport`
            or :class:`~repro.serving.cluster.ClusterReport`.
        sla_s: Latency budget used for the SLA-attainment column.
        title: Table title.
    """
    table = TextTable(
        [
            "configuration",
            "requests",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            f"SLA<{sla_s * 1e3:.0f}ms %",
            "energy/req (mJ)",
            "util %",
        ],
        title=title,
    )
    for label, report in reports.items():
        latency = report.latency
        p50, p95, p99 = latency.percentiles((50.0, 95.0, 99.0))
        table.add_row(
            [
                label,
                report.completed_requests,
                p50 * 1e3,
                p95 * 1e3,
                p99 * 1e3,
                100.0 * latency.sla_attainment(sla_s),
                report.energy_per_request_joules * 1e3,
                100.0 * report.device_utilization,
            ]
        )
    return table.render()


def render_profile(profile, title: str = "Engine profile") -> str:
    """Render a :class:`~repro.sim.profile.SimProfile` as a text table.

    One row per event label, heaviest cumulative wall-clock first, plus a
    totals row.  Shares are fractions of the recorded callback time.
    """
    table = TextTable(
        ["event label", "count", "total (s)", "mean (µs)", "share %"],
        title=title,
    )
    for label, count, seconds, mean_us, share in profile.rows():
        table.add_row([label, count, seconds, mean_us, 100.0 * share])
    table.add_row(
        ["(total)", profile.total_events, profile.total_seconds, "", ""]
    )
    return table.render()


def _sharding_row_label(key) -> str:
    """Row label of one sharding-grid key; hides the updates axis when off."""
    backend, workload, shards, strategy, cache, updates = key
    label = f"{backend} | {workload} | x{shards} {strategy} | cache {cache}"
    if updates != "off":
        label += f" | updates {updates}"
    return label


def render_sharding_report(
    reports,
    sla_s: float = 5e-3,
    title: str = "Sharded embedding serving",
) -> str:
    """Render sharded serving outcomes with the scale-out columns.

    Args:
        reports: A :class:`~repro.experiment.sharding.ShardingExperimentResult`
            or a ``{row label: ClusterReport}`` mapping whose reports carry
            :class:`~repro.serving.sharded.ShardingStats`.
        sla_s: Latency budget used for the SLA-attainment column.
        title: Table title.
    """
    if hasattr(reports, "items"):
        rows = [(label, report) for label, report in reports.items()]
    else:
        rows = [
            (_sharding_row_label(key), report) for key, report in reports
        ]
    table = TextTable(
        [
            "configuration",
            "shards",
            "hit rate %",
            "imbalance",
            "x-shard MB",
            "gather (us)",
            "p50 (ms)",
            "p99 (ms)",
            f"SLA<{sla_s * 1e3:.0f}ms %",
        ],
        title=title,
    )
    for label, report in rows:
        sharding = report.sharding
        latency = report.latency
        p50, p99 = latency.percentiles((50.0, 99.0))
        table.add_row(
            [
                label,
                sharding.num_shards if sharding else report.num_replicas,
                100.0 * (sharding.hit_rate if sharding else 0.0),
                sharding.lookup_imbalance if sharding else 1.0,
                (sharding.cross_shard_bytes if sharding else 0.0) / 1e6,
                (sharding.mean_gather_s if sharding else 0.0) * 1e6,
                p50 * 1e3,
                p99 * 1e3,
                100.0 * latency.sla_attainment(sla_s),
            ]
        )
    return table.render()


def render_freshness_report(
    reports,
    sla_s: float = 5e-3,
    title: str = "Cache freshness under embedding updates",
) -> str:
    """Render freshness outcomes: pushes, per-cause evictions, staleness.

    Args:
        reports: A :class:`~repro.experiment.sharding.ShardingExperimentResult`
            or a ``{row label: ClusterReport}`` mapping whose reports carry
            :class:`~repro.serving.sharded.ShardingStats`.
        sla_s: Latency budget used for the SLA-attainment column.
        title: Table title.
    """
    if hasattr(reports, "items"):
        rows = [(label, report) for label, report in reports.items()]
    else:
        rows = [
            (_sharding_row_label(key), report) for key, report in reports
        ]
    table = TextTable(
        [
            "configuration",
            "mode",
            "pushes",
            "rows pushed",
            "invalidated",
            "refreshed",
            "stale hit %",
            "hit rate %",
            "p99 (ms)",
            f"SLA<{sla_s * 1e3:.0f}ms %",
        ],
        title=title,
    )
    for label, report in rows:
        sharding = report.sharding
        latency = report.latency
        (p99,) = latency.percentiles((99.0,))
        table.add_row(
            [
                label,
                (sharding.update_mode if sharding else None) or "-",
                sharding.update_events if sharding else 0,
                sharding.update_rows if sharding else 0,
                sharding.update_invalidations if sharding else 0,
                sharding.update_refreshes if sharding else 0,
                100.0 * (sharding.stale_hit_rate if sharding else 0.0),
                100.0 * (sharding.hit_rate if sharding else 0.0),
                p99 * 1e3,
                100.0 * latency.sla_attainment(sla_s),
            ]
        )
    return table.render()


def render_workload_catalog(title: str = "Workload catalog") -> str:
    """Render the arrival-process and trace-model catalogs as text tables."""
    from repro.workloads.catalog import ARRIVAL_CATALOG, TRACE_CATALOG

    arrivals = TextTable(
        ["kind", "summary", "example spec"],
        title=f"{title}: arrival processes",
    )
    for entry in ARRIVAL_CATALOG.values():
        arrivals.add_row([entry.kind, entry.summary, entry.example])
    traces = TextTable(
        ["kind", "summary", "example spec"],
        title=f"{title}: trace models",
    )
    for entry in TRACE_CATALOG.values():
        traces.add_row([entry.kind, entry.summary, entry.example])
    return arrivals.render() + "\n\n" + traces.render()


def render_autoscale_timeline(
    report,
    sla_s: float,
    buckets: int = 12,
    bar_width: int = 24,
    title: str = "Autoscale timeline",
) -> str:
    """Replica-count and SLA-attainment timeline of one serving run.

    Buckets the run's completions into equal time windows and renders, per
    window, the commissioned replica count (with a bar), the completions
    and the SLA attainment — the at-a-glance view of whether the fleet
    breathed with the load or gave back the tail.  Works for any
    :class:`~repro.serving.cluster.ClusterReport`; static fleets render a
    constant replica count.
    """
    from repro.serving.metrics import LatencyDistribution

    samples: List[tuple] = []
    for replica in report.per_replica:
        samples.extend(replica.completion_samples())
    if not samples:
        raise ValueError(
            "report carries no completion-ordered samples; serve with "
            "record_latency_samples enabled"
        )
    horizon = max(time for time, _ in samples)
    autoscale = getattr(report, "autoscale", None)
    if autoscale is not None:
        horizon = max(horizon, autoscale.timeline[-1][0])
        peak = max(count for _, count in autoscale.timeline)
        header = (
            f"{title}: policy={autoscale.policy}, "
            f"warmup={autoscale.warmup_s * 1e3:.1f}ms, "
            f"replica-seconds={autoscale.replica_seconds:.3f}"
        )
    else:
        peak = report.num_replicas
        header = f"{title}: static fleet of {report.num_replicas}"
    window = horizon / buckets if horizon > 0 else 1.0
    table = TextTable(
        ["window (ms)", "replicas", "fleet", "completions", f"SLA<{sla_s * 1e3:.0f}ms %"],
        title=header,
    )
    for bucket in range(buckets):
        start = bucket * window
        # Clamp the last bucket to the horizon: buckets * (horizon/buckets)
        # can round below horizon, which would drop the very sample (often
        # the worst tail latency) that defined it.
        end = horizon if bucket == buckets - 1 else (bucket + 1) * window
        inside = [
            latency
            for time, latency in samples
            if start < time <= end or (bucket == 0 and time == 0.0)
        ]
        distribution = LatencyDistribution(inside, allow_empty=True)
        midpoint = (start + end) / 2.0
        replicas = (
            autoscale.replicas_at(midpoint)
            if autoscale is not None
            else report.num_replicas
        )
        bar = "#" * max(1, round(bar_width * replicas / max(peak, 1)))
        table.add_row(
            [
                f"{start * 1e3:7.1f}-{end * 1e3:7.1f}",
                replicas,
                bar,
                len(inside),
                100.0 * distribution.sla_attainment(sla_s),
            ]
        )
    return table.render()


def render_incident_timeline(
    report,
    title: str = "Incident timeline",
) -> str:
    """Render the chaos incidents of one serving run, one row per incident.

    Accepts a :class:`~repro.serving.cluster.ClusterReport` whose
    ``incidents`` field is populated (a run served with a fault schedule)
    or an :class:`~repro.chaos.report.IncidentReport` directly.  Each row
    shows the incident's window, how much traffic it shed or re-dispatched,
    SLA attainment before/during/after, and the time-to-recover back to the
    pre-incident p99.
    """
    incidents = report
    if incidents is not None and not hasattr(incidents, "schedule"):
        incidents = getattr(report, "incidents", None)
    if incidents is None or not hasattr(incidents, "incidents"):
        raise ValueError(
            "report carries no incident data; serve with a fault schedule "
            "(faults=...) to populate ClusterReport.incidents"
        )
    header = (
        f"{title}: schedule [{incidents.schedule}], "
        f"sla={incidents.sla_s * 1e3:.1f}ms, "
        f"window={incidents.window_s * 1e3:.1f}ms, "
        f"horizon={incidents.horizon_s * 1e3:.1f}ms"
    )
    table = TextTable(
        [
            "incident",
            "window (ms)",
            "cleared",
            "shed",
            "redisp",
            "degraded",
            "SLA before %",
            "SLA during %",
            "SLA after %",
            "recover (ms)",
            "recovery rep-s",
            "refill rows",
            "refill (ms)",
        ],
        title=header,
    )
    for incident in incidents.incidents:
        end = incident.end_s if incident.end_s is not None else incidents.horizon_s
        label = incident.kind if not incident.target else f"{incident.kind} {incident.target}"
        table.add_row(
            [
                label,
                f"{incident.start_s * 1e3:7.1f}-{end * 1e3:7.1f}",
                "yes" if incident.cleared else "no",
                incident.shed_requests,
                incident.redispatched_requests,
                incident.degraded_lookups,
                100.0 * incident.sla_before,
                100.0 * incident.sla_during,
                100.0 * incident.sla_after,
                (
                    f"{incident.time_to_recover_s * 1e3:.1f}"
                    if incident.time_to_recover_s is not None
                    else "-"
                ),
                incident.recovery_replica_seconds,
                incident.refill_rows,
                f"{incident.refill_s * 1e3:.3f}",
            ]
        )
    rendered = table.render()
    worst_ttr = incidents.worst_time_to_recover_s
    summary = (
        f"\ntotals: shed={incidents.total_shed}, "
        f"redispatched={incidents.total_redispatched}, "
        f"degraded lookups={incidents.total_degraded_lookups}, "
        f"cache refill={incidents.total_refill_rows} rows "
        f"/ {incidents.total_refill_s * 1e3:.3f}ms, "
        f"worst SLA during={100.0 * incidents.worst_sla_during:.2f}%, "
        f"worst time-to-recover="
        + (f"{worst_ttr * 1e3:.1f}ms" if worst_ttr is not None else "not recovered")
    )
    notes = [
        f"  note [{incident.kind}@{incident.start_s * 1e3:.1f}ms]: {incident.note}"
        for incident in incidents.incidents
        if incident.note
    ]
    if notes:
        summary += "\n" + "\n".join(notes)
    return rendered + summary


def render_capacity_plan(plan, title: str = "Capacity plan") -> str:
    """Render a :class:`~repro.serving.planner.CapacityPlan` as a table."""
    table = TextTable(
        [
            "backend",
            "replicas",
            "attainment %",
            "p99 (ms)",
            "replica-seconds",
            "energy/req (mJ)",
            "fleets simulated",
        ],
        title=(
            f"{title}: {plan.model_name} under {plan.workload_name}, "
            f"p{plan.target_attainment * 100:.0f} within "
            f"{plan.sla_s * 1e3:.1f}ms"
        ),
    )
    for point in plan.points:
        table.add_row(
            [
                point.backend,
                point.replicas if point.feasible else "infeasible",
                100.0 * point.attainment,
                point.p99_s * 1e3,
                point.replica_seconds,
                point.energy_per_request_joules * 1e3,
                ",".join(str(count) for count in point.evaluated),
            ]
        )
    rendered = table.render()
    best = plan.best()
    if best is not None:
        rendered += (
            f"\nrecommended: {best.replicas}x {best.backend} "
            f"({100.0 * best.attainment:.2f}% within SLA)"
        )
    else:
        rendered += "\nrecommended: none — no backend met the target; raise max_replicas"
    return rendered


def render_serving_grid(grid, sla_s: float = 5e-3, title: str = "Serving grid") -> str:
    """Render a :class:`~repro.experiment.serving.ServingExperimentResult`.

    One row per (backend, workload, model) point with the tail-latency and
    efficiency columns capacity planners compare.
    """
    table = TextTable(
        [
            "backend",
            "workload",
            "model",
            "requests",
            "p50 (ms)",
            "p99 (ms)",
            f"SLA<{sla_s * 1e3:.0f}ms %",
            "energy/req (mJ)",
        ],
        title=title,
    )
    for (backend, workload, model_label), report in grid:
        latency = report.latency
        p50, p99 = latency.percentiles((50.0, 99.0))
        table.add_row(
            [
                backend,
                workload,
                model_label,
                report.completed_requests,
                p50 * 1e3,
                p99 * 1e3,
                100.0 * latency.sla_attainment(sla_s),
                report.energy_per_request_joules * 1e3,
            ]
        )
    return table.render()
