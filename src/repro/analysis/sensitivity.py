"""Sensitivity studies referenced by the paper's text (beyond the main figures).

Two claims in Section III-C's footnote motivate these sweeps:

* the CPU can only approach its DRAM bandwidth for embedding gathers when
  the batch size grows far beyond realistic inference sizes (>2048), or
* when the embedding vectors are much wider than the production 32-float
  configuration (1024-dimensional and above),

and the related-work discussion argues that Centaur's benefit — unlike
TensorDIMM's rank-level parallelism — is *not* tied to wide embedding
vectors.  The sweeps below quantify both statements with the same models
used everywhere else in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.config.models import DLRMConfig, homogeneous_dlrm
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.experiment.experiment import Experiment, VariantSweep


@dataclass(frozen=True)
class SensitivityPoint:
    """Effective gather throughput of both designs at one sweep point."""

    parameter: str
    value: int
    batch_size: int
    embedding_dim: int
    cpu_throughput: float
    centaur_throughput: float
    dram_peak_bandwidth: float
    link_effective_bandwidth: float

    @property
    def cpu_fraction_of_peak(self) -> float:
        return self.cpu_throughput / self.dram_peak_bandwidth

    @property
    def centaur_fraction_of_link(self) -> float:
        return self.centaur_throughput / self.link_effective_bandwidth

    @property
    def centaur_improvement(self) -> float:
        if self.cpu_throughput == 0:
            return float("inf")
        return self.centaur_throughput / self.cpu_throughput


def _sweep_model(
    reference: DLRMConfig, embedding_dim: int, gathers_per_table: int
) -> DLRMConfig:
    """A variant of ``reference`` with a different vector width."""
    return homogeneous_dlrm(
        name=f"{reference.name}-dim{embedding_dim}",
        num_tables=reference.num_tables,
        rows_per_table=reference.tables[0].num_rows,
        gathers_per_table=gathers_per_table,
        embedding_dim=embedding_dim,
        num_dense_features=reference.num_dense_features,
    )


def embedding_dim_sweep(
    system: SystemConfig,
    reference: Optional[DLRMConfig] = None,
    dims: Iterable[int] = (32, 64, 128, 256, 512, 1024),
    batch_size: int = 32,
) -> List[SensitivityPoint]:
    """Sweep the embedding vector width at a fixed batch size.

    Wide vectors turn each gather into a long sequential burst, which is the
    one regime where the CPU's prefetchers and row-buffer locality let it
    approach DRAM bandwidth — the paper's footnote 2.
    """
    if batch_size <= 0:
        raise SimulationError(f"batch_size must be positive, got {batch_size}")
    from repro.config.presets import DLRM4

    reference = reference if reference is not None else DLRM4
    dims = tuple(dims)
    for dim in dims:
        if dim <= 0:
            raise SimulationError(f"embedding dims must be positive, got {dim}")
    sweep = VariantSweep(
        system,
        ("cpu", "centaur"),
        {
            dim: _sweep_model(reference, dim, int(reference.gathers_per_table))
            for dim in dims
        },
        (batch_size,),
    )
    points: List[SensitivityPoint] = []
    for dim in dims:
        points.append(
            SensitivityPoint(
                parameter="embedding_dim",
                value=dim,
                batch_size=batch_size,
                embedding_dim=dim,
                cpu_throughput=sweep.result(
                    dim, "cpu", batch_size
                ).effective_embedding_throughput,
                centaur_throughput=sweep.result(
                    dim, "centaur", batch_size
                ).effective_embedding_throughput,
                dram_peak_bandwidth=system.memory.peak_bandwidth,
                link_effective_bandwidth=system.link.effective_bandwidth,
            )
        )
    return points


def batch_size_sweep(
    system: SystemConfig,
    reference: Optional[DLRMConfig] = None,
    batch_sizes: Iterable[int] = (128, 256, 512, 1024, 2048, 4096),
) -> List[SensitivityPoint]:
    """Sweep batch sizes beyond the inference-realistic 1-128 range."""
    from repro.config.presets import DLRM4

    reference = reference if reference is not None else DLRM4
    batch_sizes = tuple(batch_sizes)
    for batch_size in batch_sizes:
        if batch_size <= 0:
            raise SimulationError(f"batch sizes must be positive, got {batch_size}")
    grid = (
        Experiment(system)
        .backends("cpu", "centaur")
        .models(reference)
        .batch_sizes(batch_sizes)
        .run()
    )
    points: List[SensitivityPoint] = []
    for batch_size in batch_sizes:
        points.append(
            SensitivityPoint(
                parameter="batch_size",
                value=batch_size,
                batch_size=batch_size,
                embedding_dim=reference.embedding_dim,
                cpu_throughput=grid.get(
                    "cpu", reference.name, batch_size
                ).effective_embedding_throughput,
                centaur_throughput=grid.get(
                    "centaur", reference.name, batch_size
                ).effective_embedding_throughput,
                dram_peak_bandwidth=system.memory.peak_bandwidth,
                link_effective_bandwidth=system.link.effective_bandwidth,
            )
        )
    return points


def render_sensitivity(points: List[SensitivityPoint], title: str) -> str:
    """Render a sensitivity sweep as a text table."""
    from repro.utils.tables import TextTable

    table = TextTable(
        [
            "parameter",
            "value",
            "CPU GB/s",
            "CPU % of DRAM peak",
            "Centaur GB/s",
            "Centaur % of link",
        ],
        title=title,
    )
    for point in points:
        table.add_row(
            [
                point.parameter,
                point.value,
                point.cpu_throughput / 1e9,
                100.0 * point.cpu_fraction_of_peak,
                point.centaur_throughput / 1e9,
                100.0 * point.centaur_fraction_of_link,
            ]
        )
    return table.render()
