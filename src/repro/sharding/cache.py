"""Seed-deterministic hot-row embedding cache (LRU / LFU).

The paper's central observation is that embedding gathers dominate DLRM
inference; production traces additionally concentrate those gathers on a
small hot row set (the zipf / hot-cold models in :mod:`repro.workloads`).
An :class:`EmbeddingCache` sits in front of the host-memory gather on every
backend: rows that hit are served from device-local memory and skip the
host gather entirely, rows that miss are gathered and inserted.

Everything is deterministic given the construction arguments: LRU recency
and LFU frequency ties are broken by a monotonic access tick (never by
randomness), so two runs over the same lookup stream produce bit-identical
:class:`~repro.memsys.stats.CacheStats`.  The ``seed`` argument is part of
the cache identity (it namespaces nothing today but keeps the constructor
stable if a randomized policy is ever added) and two caches built with the
same arguments always agree.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import ConfigurationError
from repro.memsys.stats import CacheStats

#: Cache key: one embedding row of one table.
_RowKey = Tuple[int, int]


@dataclass(frozen=True)
class CacheConfig:
    """Declarative description of a hot-row cache (one instance per shard).

    Exactly one of ``capacity_rows`` / ``capacity_bytes`` must be set;
    byte capacities are resolved against the served model's row size when
    the cache is built.

    Attributes:
        policy: ``"lru"`` or ``"lfu"``.
        capacity_rows: Capacity in embedding rows.
        capacity_bytes: Capacity in bytes (rows = bytes // row_bytes).
        seed: Determinism seed carried into every built cache.
    """

    policy: str = "lru"
    capacity_rows: Optional[int] = None
    capacity_bytes: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("lru", "lfu"):
            raise ConfigurationError(
                f"cache policy must be 'lru' or 'lfu', got {self.policy!r}"
            )
        if (self.capacity_rows is None) == (self.capacity_bytes is None):
            raise ConfigurationError(
                "set exactly one of capacity_rows / capacity_bytes"
            )
        for label, value in (
            ("capacity_rows", self.capacity_rows),
            ("capacity_bytes", self.capacity_bytes),
        ):
            if value is not None and value <= 0:
                raise ConfigurationError(f"{label} must be positive, got {value}")

    def resolve_rows(self, model: DLRMConfig) -> int:
        """Capacity in rows against a concrete model's row size."""
        if self.capacity_rows is not None:
            return int(self.capacity_rows)
        # Size against the model's own DTYPE_BYTES-derived row size (the
        # widest table, so heterogeneous-dim models are sized
        # conservatively) rather than assuming a 4-byte dtype here.
        row_bytes = max(table.row_bytes for table in model.tables)
        rows = int(self.capacity_bytes) // row_bytes
        if rows <= 0:
            raise ConfigurationError(
                f"capacity_bytes={self.capacity_bytes} holds no {row_bytes}-byte "
                f"row of model {model.name!r}"
            )
        return rows

    def build(self, model: DLRMConfig) -> "EmbeddingCache":
        """Instantiate one cache sized for ``model``."""
        return EmbeddingCache(
            capacity_rows=self.resolve_rows(model),
            policy=self.policy,
            seed=self.seed,
        )

    def describe(self) -> str:
        """Compact spec form; round-trips through :func:`parse_cache_spec`."""
        if self.capacity_rows is not None:
            return f"{self.policy}:rows={self.capacity_rows}"
        return f"{self.policy}:bytes={self.capacity_bytes}"


class EmbeddingCache:
    """A deterministic hot-row cache over ``(table, row)`` keys.

    Args:
        capacity_rows: Maximum resident rows (> 0).
        policy: ``"lru"`` evicts the least-recently-used row; ``"lfu"``
            evicts the least-frequently-used row, oldest access first on
            frequency ties.
        seed: Determinism seed (recorded; both policies are tick-ordered
            and consume no randomness).
    """

    def __init__(self, capacity_rows: int, policy: str = "lru", seed: int = 0):
        if capacity_rows <= 0:
            raise ConfigurationError(
                f"capacity_rows must be positive, got {capacity_rows}"
            )
        if policy not in ("lru", "lfu"):
            raise ConfigurationError(
                f"cache policy must be 'lru' or 'lfu', got {policy!r}"
            )
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self.capacity_rows = capacity_rows
        self.policy = policy
        self.seed = seed
        self.stats = CacheStats()
        #: Rows evicted to make room (capacity pressure only — update
        #: invalidations are counted separately in ``update_evictions``).
        self.evictions = 0
        #: Rows dropped because an embedding push invalidated them.
        self.update_evictions = 0
        #: Resident rows refreshed in place by write-through pushes.
        self.update_refreshes = 0
        #: Hits served from rows a push updated behind the cache
        #: (``mode="ignore"`` staleness accounting).
        self.stale_hits = 0
        self._stale: set = set()
        self._tick = 0
        # LRU state: insertion/recency-ordered keys.
        self._lru: "OrderedDict[_RowKey, None]" = OrderedDict()
        # LFU state: key -> (frequency, last tick) plus a lazy min-heap of
        # (frequency, tick, key) snapshots; stale snapshots are skipped at
        # eviction time, keeping every operation O(log n).
        self._lfu: Dict[_RowKey, Tuple[int, int]] = {}
        self._heap: list = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru) if self.policy == "lru" else len(self._lfu)

    def __contains__(self, key: _RowKey) -> bool:
        return key in self._lru if self.policy == "lru" else key in self._lfu

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    # ------------------------------------------------------------------
    def lookup(self, table_index: int, rows: np.ndarray) -> np.ndarray:
        """Probe (and fill) the cache for a gather's row IDs.

        Returns a boolean hit mask aligned with ``rows``.  Hits refresh
        recency/frequency; misses are inserted, evicting per policy once
        the capacity is reached.  Repeated rows within one call behave as
        consecutive accesses (the second occurrence of a missed row hits).
        """
        rows = np.asarray(rows, dtype=np.int64)
        hits = np.empty(rows.shape, dtype=bool)
        if self.policy == "lru":
            self._lookup_lru(table_index, rows, hits)
        else:
            self._lookup_lfu(table_index, rows, hits)
        return hits

    def _lookup_lru(self, table_index: int, rows: np.ndarray, hits: np.ndarray) -> None:
        cache = self._lru
        capacity = self.capacity_rows
        for position, row in enumerate(rows.tolist()):
            key = (table_index, row)
            hit = key in cache
            hits[position] = hit
            self.stats.record(hit)
            if hit:
                cache.move_to_end(key)
                if self._stale and key in self._stale:
                    self.stale_hits += 1
                continue
            if len(cache) >= capacity:
                evicted, _ = cache.popitem(last=False)
                self.evictions += 1
                if self._stale:
                    self._stale.discard(evicted)
            cache[key] = None

    def _lookup_lfu(self, table_index: int, rows: np.ndarray, hits: np.ndarray) -> None:
        cache = self._lfu
        capacity = self.capacity_rows
        for position, row in enumerate(rows.tolist()):
            key = (table_index, row)
            entry = cache.get(key)
            hit = entry is not None
            hits[position] = hit
            self.stats.record(hit)
            self._tick += 1
            if hit:
                frequency = entry[0] + 1
                if self._stale and key in self._stale:
                    self.stale_hits += 1
            else:
                if len(cache) >= capacity:
                    self._evict_lfu()
                frequency = 1
            cache[key] = (frequency, self._tick)
            heapq.heappush(self._heap, (frequency, self._tick, key))
        # Lazy deletion leaves one stale snapshot per superseded access;
        # compact once they dominate so heap memory stays O(resident rows)
        # over arbitrarily long streams, not O(total lookups).
        if len(self._heap) > 2 * len(cache) + 16:
            self._heap = [
                (frequency, tick, key)
                for key, (frequency, tick) in cache.items()
            ]
            heapq.heapify(self._heap)

    def _evict_lfu(self) -> None:
        while self._heap:
            frequency, tick, key = heapq.heappop(self._heap)
            current = self._lfu.get(key)
            if current is not None and current == (frequency, tick):
                del self._lfu[key]
                self.evictions += 1
                if self._stale:
                    self._stale.discard(key)
                return
        raise RuntimeError("LFU heap drained with entries resident")  # pragma: no cover

    # ------------------------------------------------------------------
    # Freshness API: embedding pushes arriving behind the read path.
    # ------------------------------------------------------------------
    def invalidate(self, table_index: int, rows: np.ndarray) -> int:
        """Drop pushed rows from the cache; returns rows actually dropped.

        Invalidations are counted in ``update_evictions``, *not* in the
        capacity ``evictions`` counter — the per-cause split freshness
        reports rely on.  Absent rows are a no-op.
        """
        cache = self._lru if self.policy == "lru" else self._lfu
        removed = 0
        for row in np.asarray(rows, dtype=np.int64).tolist():
            key = (table_index, row)
            if key in cache:
                # LFU heap snapshots of the key go stale; _evict_lfu
                # already skips snapshots whose entry disagrees.
                del cache[key]
                removed += 1
                if self._stale:
                    self._stale.discard(key)
        self.update_evictions += removed
        return removed

    def refresh(self, table_index: int, rows: np.ndarray) -> int:
        """Write a push through to resident rows; returns rows refreshed.

        Refreshing keeps the row resident and clears any staleness mark
        without touching recency or frequency (a push is not a read).
        Absent rows are not allocated — write-no-allocate keeps one-shot
        pushes from polluting the hot set.
        """
        cache = self._lru if self.policy == "lru" else self._lfu
        refreshed = 0
        for row in np.asarray(rows, dtype=np.int64).tolist():
            key = (table_index, row)
            if key in cache:
                refreshed += 1
                if self._stale:
                    self._stale.discard(key)
        self.update_refreshes += refreshed
        return refreshed

    def mark_stale(self, table_index: int, rows: np.ndarray) -> int:
        """Mark resident pushed rows stale (``"ignore"`` freshness mode).

        Later hits on marked rows increment ``stale_hits`` — the run's
        correctness/staleness exposure when pushes are not applied.
        """
        cache = self._lru if self.policy == "lru" else self._lfu
        marked = 0
        for row in np.asarray(rows, dtype=np.int64).tolist():
            key = (table_index, row)
            if key in cache and key not in self._stale:
                self._stale.add(key)
                marked += 1
        return marked

    def apply_update(self, table_index: int, rows: np.ndarray, mode: str) -> int:
        """Apply one push per ``mode``; returns the rows affected."""
        if mode == "invalidate":
            return self.invalidate(table_index, rows)
        if mode == "write-through":
            return self.refresh(table_index, rows)
        if mode == "ignore":
            return self.mark_stale(table_index, rows)
        raise ConfigurationError(
            f"update mode must be 'invalidate', 'write-through' or 'ignore', "
            f"got {mode!r}"
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"{self.policy}:{self.capacity_rows}rows"


def parse_cache_spec(spec: Optional[str]) -> Optional[CacheConfig]:
    """Build a :class:`CacheConfig` from ``"lru:rows=4096"`` / ``"lfu:bytes=1048576"``.

    ``None``, ``""`` and ``"off"`` mean no cache.  A bare count
    (``"lru:4096"``) is interpreted as rows.
    """
    if spec is None:
        return None
    text = str(spec).strip()
    if not text or text.lower() in ("off", "none"):
        return None
    policy, _, body = text.partition(":")
    policy = policy.strip().lower()
    if not body.strip():
        raise ConfigurationError(
            f"cache spec {spec!r} needs a capacity, e.g. 'lru:rows=4096'"
        )
    rows: Optional[int] = None
    bytes_: Optional[int] = None
    for part in body.split(","):
        name, _, value = part.partition("=")
        name = name.strip().lower()
        value = value.strip()
        if not _ and name.isdigit():
            rows = int(name)
            continue
        try:
            parsed = int(value)
        except ValueError:
            raise ConfigurationError(
                f"cache spec field {part.strip()!r} is not an integer setting"
            ) from None
        if name == "rows":
            rows = parsed
        elif name == "bytes":
            bytes_ = parsed
        else:
            raise ConfigurationError(
                f"unknown cache spec field {name!r}; use rows=/bytes="
            )
    return CacheConfig(policy=policy, capacity_rows=rows, capacity_bytes=bytes_)
