"""Embedding-table sharding and hot-row caching (beyond-paper extension).

The paper serves every model from one device; this package scales the
embedding side out and up: :class:`ShardingPlan` partitions a model's
tables across device shards (table-wise, row-wise hash, capacity-balanced
greedy), and :class:`EmbeddingCache` keeps the hot rows of a skewed trace
resident in front of the host-memory gather.  The serving integration —
request fan-out to owning shards, straggler-gated fan-in, cross-shard
transfer pricing — lives in :class:`repro.serving.sharded.ShardedReplicaGroup`.
"""

from repro.sharding.cache import CacheConfig, EmbeddingCache, parse_cache_spec
from repro.sharding.plan import (
    STRATEGIES,
    GreedyBalancedSharding,
    RowWiseHashSharding,
    ShardingPlan,
    ShardingStrategy,
    TableWiseSharding,
    make_plan,
    parse_sharding_spec,
)

__all__ = [
    "CacheConfig",
    "EmbeddingCache",
    "parse_cache_spec",
    "ShardingPlan",
    "ShardingStrategy",
    "TableWiseSharding",
    "RowWiseHashSharding",
    "GreedyBalancedSharding",
    "STRATEGIES",
    "make_plan",
    "parse_sharding_spec",
]
