"""Embedding-table sharding plans: who owns which (table, row).

Centaur's sparse complex exists because embedding gathers dominate DLRM
inference; once a model outgrows one device's memory (or one device's gather
bandwidth), its tables must be *partitioned* across several device shards.
A :class:`ShardingPlan` is the stateless description of that partition —
every ``(table, row)`` pair is owned by exactly one shard — and the
strategies here mirror the placements production embedding servers use:

* :class:`TableWiseSharding` — whole tables round-robined over shards; zero
  row-level bookkeeping but imbalanced when table sizes differ.
* :class:`RowWiseHashSharding` — rows hashed over shards; near-perfect byte
  balance, but every shard touches every table so fan-out is maximal.
* :class:`GreedyBalancedSharding` — whole tables placed longest-processing-
  time-first onto the least-loaded shard; the capacity-balanced middle
  ground.

Plans are consumed by :class:`repro.serving.sharded.ShardedReplicaGroup`
(request fan-out/fan-in) and validated wholesale by the property tests:
partition totality, ownership uniqueness and per-shard capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple, Union

import numpy as np

from repro.config.models import DLRMConfig
from repro.errors import ConfigurationError

#: splitmix64 finalizer constants (deterministic row-wise hashing).
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        values = values.copy()
        values ^= values >> np.uint64(30)
        values *= _MIX_A
        values ^= values >> np.uint64(27)
        values *= _MIX_B
        values ^= values >> np.uint64(31)
    return values


@dataclass(frozen=True)
class ShardingPlan:
    """One concrete partition of a model's embedding tables over shards.

    Attributes:
        model: The partitioned DLRM configuration.
        num_shards: Number of device shards.
        strategy: Name of the strategy that built the plan.
        table_owner: For table-granular plans, the owning shard of each
            table (length ``model.num_tables``); ``None`` for row-wise
            plans, whose ownership is the hash function.
        hash_seed: Seed of the row-wise ownership hash (ignored by
            table-granular plans).
        capacity_bytes: Optional per-shard capacity; construction fails
            when any shard's resident bytes exceed it.
    """

    model: DLRMConfig
    num_shards: int
    strategy: str
    table_owner: Optional[Tuple[int, ...]] = None
    hash_seed: int = 0
    capacity_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError(
                f"num_shards must be positive, got {self.num_shards}"
            )
        if self.hash_seed < 0:
            raise ConfigurationError(
                f"hash_seed must be non-negative, got {self.hash_seed}"
            )
        if self.table_owner is not None:
            if len(self.table_owner) != self.model.num_tables:
                raise ConfigurationError(
                    f"plan owns {len(self.table_owner)} tables but the model has "
                    f"{self.model.num_tables}"
                )
            for table_index, owner in enumerate(self.table_owner):
                if not 0 <= owner < self.num_shards:
                    raise ConfigurationError(
                        f"table {table_index} assigned to shard {owner}, outside "
                        f"[0, {self.num_shards})"
                    )
        if self.capacity_bytes is not None:
            if self.capacity_bytes <= 0:
                raise ConfigurationError(
                    f"capacity_bytes must be positive, got {self.capacity_bytes}"
                )
            heaviest = float(np.max(self.shard_bytes))
            if heaviest > self.capacity_bytes:
                raise ConfigurationError(
                    f"{self.strategy} plan overflows shard capacity: heaviest "
                    f"shard holds {heaviest:.0f} bytes > {self.capacity_bytes:.0f}"
                )

    # ------------------------------------------------------------------
    @property
    def row_wise(self) -> bool:
        """True when ownership is decided per row, not per table."""
        return self.table_owner is None

    def owner_of(self, table_index: int, rows: np.ndarray) -> np.ndarray:
        """Owning shard of each row ID (vectorized, int64).

        Every ``(table, row)`` maps to exactly one shard — table-granular
        plans broadcast the table's owner, row-wise plans hash the row.
        """
        if not 0 <= table_index < self.model.num_tables:
            raise ConfigurationError(
                f"table index {table_index} outside [0, {self.model.num_tables})"
            )
        rows = np.asarray(rows, dtype=np.int64)
        if self.table_owner is not None:
            return np.full(rows.shape, self.table_owner[table_index], dtype=np.int64)
        if self.num_shards == 1:
            return np.zeros(rows.shape, dtype=np.int64)
        with np.errstate(over="ignore"):
            keyed = (
                rows.astype(np.uint64)
                + np.uint64(table_index + 1) * _GOLDEN
                + np.uint64(self.hash_seed) * _MIX_B
            )
        mixed = _splitmix64(keyed)
        return (mixed % np.uint64(self.num_shards)).astype(np.int64)

    @cached_property
    def shard_bytes(self) -> Tuple[float, ...]:
        """Embedding bytes resident on each shard (exact, not estimated)."""
        totals = np.zeros(self.num_shards, dtype=np.float64)
        for table_index, table in enumerate(self.model.tables):
            if self.table_owner is not None:
                totals[self.table_owner[table_index]] += table.table_bytes
            else:
                owners = self.owner_of(
                    table_index, np.arange(table.num_rows, dtype=np.int64)
                )
                counts = np.bincount(owners, minlength=self.num_shards)
                totals += counts * float(table.row_bytes)
        return tuple(float(value) for value in totals)

    @property
    def imbalance(self) -> float:
        """Max-over-mean of per-shard resident bytes (1.0 is perfect)."""
        shard_bytes = self.shard_bytes
        mean = sum(shard_bytes) / len(shard_bytes)
        if mean == 0.0:
            return 1.0
        return max(shard_bytes) / mean

    def describe(self) -> str:
        return (
            f"{self.strategy} x{self.num_shards} "
            f"(imbalance {self.imbalance:.2f})"
        )


# ----------------------------------------------------------------------
# Placement strategies.
# ----------------------------------------------------------------------
def _check_shards(num_shards: int) -> None:
    if num_shards <= 0:
        raise ConfigurationError(f"num_shards must be positive, got {num_shards}")


class ShardingStrategy:
    """Builds a :class:`ShardingPlan` for a model over ``num_shards``."""

    #: Short machine-readable kind, used by the CLI spec parser.
    name: str = "abstract"

    def build(
        self,
        model: DLRMConfig,
        num_shards: int,
        capacity_bytes: Optional[float] = None,
    ) -> ShardingPlan:
        raise NotImplementedError


class TableWiseSharding(ShardingStrategy):
    """Whole tables assigned round-robin in table order."""

    name = "table"

    def build(self, model, num_shards, capacity_bytes=None):
        _check_shards(num_shards)
        owners = tuple(index % num_shards for index in range(model.num_tables))
        return ShardingPlan(
            model=model,
            num_shards=num_shards,
            strategy=self.name,
            table_owner=owners,
            capacity_bytes=capacity_bytes,
        )


class RowWiseHashSharding(ShardingStrategy):
    """Rows hashed over shards with a seed-deterministic splitmix64 hash."""

    name = "row"

    def __init__(self, hash_seed: int = 0):
        if hash_seed < 0:
            raise ConfigurationError(f"hash_seed must be non-negative, got {hash_seed}")
        self.hash_seed = hash_seed

    def build(self, model, num_shards, capacity_bytes=None):
        _check_shards(num_shards)
        return ShardingPlan(
            model=model,
            num_shards=num_shards,
            strategy=self.name,
            table_owner=None,
            hash_seed=self.hash_seed,
            capacity_bytes=capacity_bytes,
        )


class GreedyBalancedSharding(ShardingStrategy):
    """Capacity-balanced greedy: biggest tables first, least-loaded shard.

    The classic longest-processing-time heuristic over table bytes; ties on
    load break toward the lower shard index and ties on size toward the
    lower table index, so the placement is deterministic.
    """

    name = "greedy"

    def build(self, model, num_shards, capacity_bytes=None):
        _check_shards(num_shards)
        order = sorted(
            range(model.num_tables),
            key=lambda index: (-model.tables[index].table_bytes, index),
        )
        loads = [0.0] * num_shards
        owners = [0] * model.num_tables
        for table_index in order:
            shard = min(range(num_shards), key=lambda s: (loads[s], s))
            owners[table_index] = shard
            loads[shard] += model.tables[table_index].table_bytes
        return ShardingPlan(
            model=model,
            num_shards=num_shards,
            strategy=self.name,
            table_owner=tuple(owners),
            capacity_bytes=capacity_bytes,
        )


#: Strategy registry used by :func:`make_plan` and the CLI spec parser.
STRATEGIES = {
    strategy.name: strategy
    for strategy in (TableWiseSharding, RowWiseHashSharding, GreedyBalancedSharding)
}


def make_plan(
    model: DLRMConfig,
    num_shards: int,
    strategy: Union[str, ShardingStrategy] = "table",
    capacity_bytes: Optional[float] = None,
) -> ShardingPlan:
    """Build a plan from a strategy name (``table``/``row``/``greedy``) or instance."""
    if isinstance(strategy, ShardingStrategy):
        return strategy.build(model, num_shards, capacity_bytes=capacity_bytes)
    cls = STRATEGIES.get(str(strategy))
    if cls is None:
        raise ConfigurationError(
            f"unknown sharding strategy {strategy!r}; available: "
            f"{', '.join(sorted(STRATEGIES))}"
        )
    return cls().build(model, num_shards, capacity_bytes=capacity_bytes)


def parse_sharding_spec(spec: str) -> Tuple[int, str]:
    """Parse a compact ``"<shards>[:<strategy>]"`` spec, e.g. ``"4:row"``."""
    text = str(spec).strip()
    count_text, _, strategy = text.partition(":")
    strategy = strategy.strip() or "table"
    try:
        count = int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"sharding spec must start with a shard count, got {spec!r}"
        ) from None
    if count <= 0:
        raise ConfigurationError(f"shard count must be positive, got {count}")
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown sharding strategy {strategy!r}; available: "
            f"{', '.join(sorted(STRATEGIES))}"
        )
    return count, strategy
