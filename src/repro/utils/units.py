"""Unit constants and conversion helpers.

The paper mixes decimal units (GB/s memory bandwidth, GFLOPS) and binary
units (cache and SRAM capacities).  To keep the performance models honest,
this module provides explicitly named constants for both conventions plus a
few human-readable formatters used by the reporting layer.
"""

from __future__ import annotations

# Binary (IEC) byte units -- used for caches, SRAMs and table footprints.
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

# Decimal (SI) byte units -- used for DRAM/link bandwidth and table sizes as
# quoted by the paper (e.g. "128 MB" tables, "77 GB/sec").
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

# Decimal scalar prefixes -- used for FLOPS and frequencies.
KILO: float = 1e3
MEGA: float = 1e6
GIGA: float = 1e9


def gbps(value: float) -> float:
    """Convert a bandwidth expressed in GB/s into bytes per second."""
    return value * GB


def nanoseconds(value: float) -> float:
    """Convert nanoseconds into seconds."""
    return value * 1e-9


def microseconds(value: float) -> float:
    """Convert microseconds into seconds."""
    return value * 1e-6


def milliseconds(value: float) -> float:
    """Convert milliseconds into seconds."""
    return value * 1e-3


def bytes_to_human(num_bytes: float, decimal: bool = True) -> str:
    """Render a byte count with an appropriate unit suffix.

    Args:
        num_bytes: The number of bytes.
        decimal: When ``True`` (default), use decimal units (KB/MB/GB) as the
            paper does for table sizes; otherwise use binary units.

    Returns:
        A string such as ``"1.28 GB"`` or ``"35.0 MiB"``.
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    base = 1000.0 if decimal else 1024.0
    suffixes = ["B", "KB", "MB", "GB", "TB"] if decimal else ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(num_bytes)
    for suffix in suffixes:
        if value < base or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.2f} {suffix}"
        value /= base
    raise AssertionError("unreachable")


def seconds_to_human(seconds: float) -> str:
    """Render a latency with an appropriate time unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ValueError(f"time must be non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.3f} s"
