"""Small statistics helpers shared by the performance models and analyses."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def safe_divide(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero.

    Performance models frequently compute rates (misses per access, bytes
    per second) over counters that can legitimately be zero for degenerate
    configurations (e.g. a model with no embedding tables).
    """
    if denominator == 0:
        return default
    return numerator / denominator


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for averaging speedups/efficiency ratios across workloads, which is
    the conventional way architecture papers summarize cross-benchmark gains.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    log_sum = sum(math.log(value) for value in values)
    return math.exp(log_sum / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values (used for rate averaging)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    if any(value <= 0 for value in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / value for value in values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean.

    Args:
        values: The values to average.
        weights: Non-negative weights, at least one of which must be positive.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted mean of an empty sequence is undefined")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    total_weight = sum(weights)
    if total_weight == 0:
        raise ValueError("at least one weight must be positive")
    return sum(v * w for v, w in zip(values, weights)) / total_weight
