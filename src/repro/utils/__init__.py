"""Small shared utilities: unit helpers, table rendering, statistics."""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    KILO,
    MEGA,
    GIGA,
    bytes_to_human,
    gbps,
    nanoseconds,
    microseconds,
    milliseconds,
    seconds_to_human,
)
from repro.utils.tables import TextTable, format_series
from repro.utils.stats_utils import (
    geometric_mean,
    harmonic_mean,
    safe_divide,
    weighted_mean,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "KILO",
    "MEGA",
    "GIGA",
    "bytes_to_human",
    "gbps",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds_to_human",
    "TextTable",
    "format_series",
    "geometric_mean",
    "harmonic_mean",
    "safe_divide",
    "weighted_mean",
]
