"""Plain-text table rendering for the benchmark and analysis harnesses.

Every table/figure reproduction prints its rows through :class:`TextTable`
so the benchmark output visually mirrors the structure of the paper's tables
and figure series without needing any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class TextTable:
    """A minimal, dependency-free ASCII table builder.

    Example:
        >>> table = TextTable(["model", "speedup"], title="Figure 14")
        >>> table.add_row(["DLRM(1)", 9.3])
        >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(column) for column in columns]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; values are stringified with sensible float formatting."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self._rows.append([_format_cell(value) for value in values])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        """Append several rows at once."""
        for row in rows:
            self.add_row(row)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as an aligned ASCII string."""
        widths = [len(column) for column in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
            return "| " + " | ".join(padded) + " |"

        separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(separator)
        lines.append(render_line(self.columns))
        lines.append(separator)
        for row in self._rows:
            lines.append(render_line(row))
        lines.append(separator)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()


def format_series(series: Mapping[object, float], value_format: str = "{:.2f}") -> str:
    """Render a one-dimensional series (e.g. a figure's bar group) on one line.

    Args:
        series: Mapping from x-label (batch size, model name, ...) to value.
        value_format: Format string applied to every value.

    Returns:
        ``"x1=v1  x2=v2  ..."`` suitable for benchmark console output.
    """
    parts = []
    for key, value in series.items():
        parts.append(f"{key}={value_format.format(value)}")
    return "  ".join(parts)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
