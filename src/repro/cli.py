"""Command-line interface: ``python -m repro``.

Subcommands:

* ``repro list-backends`` — the registered devices and their capabilities.
* ``repro run --backend centaur --model DLRM3 --batch 64`` — price one
  design point and print its latency/energy summary.
* ``repro sweep --backends cpu centaur --models DLRM1 DLRM4 --batches 1 64``
  — run an experiment grid and print (or export) the results.

Models accept Table I shorthand: ``DLRM3``, ``DLRM(3)`` and ``3`` all name
the third configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.backends import available_backends, backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.presets import HARPV2_SYSTEM, PAPER_BATCH_SIZES, PAPER_MODELS, dlrm_preset
from repro.errors import ReproError
from repro.experiment import Experiment
from repro.utils.tables import TextTable
from repro.utils.units import seconds_to_human


def parse_model(which: str) -> DLRMConfig:
    """Resolve ``DLRM3`` / ``DLRM(3)`` / ``3`` to a Table I preset."""
    text = which.strip()
    candidate = text.upper().replace("DLRM", "").strip("()")
    if candidate.isdigit():
        return dlrm_preset(int(candidate))
    return dlrm_preset(text)


def _cmd_list_backends(args: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "design point", "accelerator", "offloads EMB", "description"],
        title="Registered backends",
    )
    for name in available_backends():
        registration = backend_registration(name)
        capabilities = registration.capabilities
        table.add_row(
            [
                name,
                registration.design_point,
                "yes" if capabilities.uses_accelerator else "no",
                "yes" if capabilities.offloads_embeddings else "no",
                registration.description,
            ]
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    model = parse_model(args.model)
    backend = get_backend(args.backend, HARPV2_SYSTEM)
    result = backend.run(model, args.batch)

    print(
        f"{result.design_point} | {result.model_name} | batch {result.batch_size}"
    )
    table = TextTable(["stage", "latency", "share %"], title="Latency breakdown")
    for stage, seconds in result.breakdown.stages.items():
        table.add_row(
            [stage, seconds_to_human(seconds), 100.0 * result.breakdown.fraction(stage)]
        )
    print(table.render())
    print(f"end-to-end latency : {seconds_to_human(result.latency_seconds)}")
    print(f"throughput         : {result.throughput_samples_per_second:,.0f} samples/s")
    print(f"power              : {result.power_watts:.1f} W")
    print(f"energy / batch     : {result.energy_joules * 1e3:.3f} mJ")
    print(f"energy / sample    : {result.energy_per_sample_joules * 1e3:.3f} mJ")
    if args.baseline:
        baseline = get_backend(args.baseline, HARPV2_SYSTEM).run(model, args.batch)
        print(
            f"vs {baseline.design_point:<15}: "
            f"{result.speedup_over(baseline):.2f}x speedup, "
            f"{result.energy_efficiency_over(baseline):.2f}x energy efficiency"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    backends = args.backends if args.backends else list(available_backends())
    models = (
        tuple(parse_model(name) for name in args.models)
        if args.models
        else PAPER_MODELS
    )
    batches = tuple(args.batches) if args.batches else PAPER_BATCH_SIZES
    grid = (
        Experiment(HARPV2_SYSTEM)
        .backends(*backends)
        .models(models)
        .batch_sizes(batches)
        .run()
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(grid.to_csv())
        print(f"wrote {len(grid)} design points to {args.csv}")
        return 0
    from repro.analysis.report import render_experiment

    print(render_experiment(grid))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Centaur reproduction: backends, experiments and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-backends", help="list registered device backends"
    )
    list_parser.set_defaults(handler=_cmd_list_backends)

    run_parser = subparsers.add_parser(
        "run", help="price one (backend, model, batch) design point"
    )
    run_parser.add_argument("--backend", required=True, help="registry name, e.g. centaur")
    run_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM3")
    run_parser.add_argument("--batch", type=int, default=64, help="batch size (default 64)")
    run_parser.add_argument(
        "--baseline",
        default="cpu",
        help="backend to compare against (default cpu; empty string disables)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an experiment grid over backends x models x batches"
    )
    sweep_parser.add_argument(
        "--backends", nargs="+", default=None, help="registry names (default: all)"
    )
    sweep_parser.add_argument(
        "--models", nargs="+", default=None, help="Table I models (default: all six)"
    )
    sweep_parser.add_argument(
        "--batches", nargs="+", type=int, default=None, help="batch sizes (default: 1-128)"
    )
    sweep_parser.add_argument("--csv", default=None, help="write the grid to a CSV file")
    sweep_parser.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except (ReproError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
