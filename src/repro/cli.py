"""Command-line interface: ``python -m repro``.

Subcommands:

* ``repro list-backends`` — the registered devices and their capabilities.
* ``repro run --backend centaur --model DLRM3 --batch 64`` — price one
  design point and print its latency/energy summary.
* ``repro sweep --backends cpu centaur --models DLRM1 DLRM4 --batches 1 64``
  — run an experiment grid and print (or export) the results.
* ``repro list-workloads`` — the arrival processes and trace models the
  workload subsystem can build from compact specs.
* ``repro serve --backend centaur --model DLRM2 --workload bursty:on=40000
  --requests 20000`` — stream a workload through the event-driven serving
  simulator and print the tail-latency report.  Add ``--autoscale
  util:target=0.7`` to serve on an elastic fleet and print its
  replica-count/attainment timeline.
* ``repro plan --model DLRM2 --workload diurnal:trough=5000,peak=40000
  --duration 0.5 --sla 0.005`` — search the minimal fleet per backend that
  meets a p99 SLA target for the workload.

Models accept Table I shorthand: ``DLRM3``, ``DLRM(3)`` and ``3`` all name
the third configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.backends import available_backends, backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.presets import HARPV2_SYSTEM, PAPER_BATCH_SIZES, PAPER_MODELS, dlrm_preset
from repro.errors import ReproError
from repro.experiment import Experiment
from repro.utils.tables import TextTable
from repro.utils.units import seconds_to_human


def _progress_printer(enabled: bool):
    """A grid-progress callback logging to stderr (or ``None`` when off).

    Progress goes to stderr so rendered tables/CSV on stdout stay
    byte-identical with and without ``--progress``.
    """
    if not enabled:
        return None

    def emit(line: str) -> None:
        print(line, file=sys.stderr)

    return emit


def parse_model(which: str) -> DLRMConfig:
    """Resolve ``DLRM3`` / ``DLRM(3)`` / ``3`` to a Table I preset."""
    text = which.strip()
    candidate = text.upper().replace("DLRM", "").strip("()")
    if candidate.isdigit():
        return dlrm_preset(int(candidate))
    return dlrm_preset(text)


def _cmd_list_backends(args: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "design point", "accelerator", "offloads EMB", "description"],
        title="Registered backends",
    )
    for name in available_backends():
        registration = backend_registration(name)
        capabilities = registration.capabilities
        table.add_row(
            [
                name,
                registration.design_point,
                "yes" if capabilities.uses_accelerator else "no",
                "yes" if capabilities.offloads_embeddings else "no",
                registration.description,
            ]
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiment.executor import resolve_jobs

    resolve_jobs(args.jobs)  # validate; a single design point prices serially
    model = parse_model(args.model)
    backend = get_backend(args.backend, HARPV2_SYSTEM)
    result = backend.run(model, args.batch)

    print(
        f"{result.design_point} | {result.model_name} | batch {result.batch_size}"
    )
    table = TextTable(["stage", "latency", "share %"], title="Latency breakdown")
    for stage, seconds in result.breakdown.stages.items():
        table.add_row(
            [stage, seconds_to_human(seconds), 100.0 * result.breakdown.fraction(stage)]
        )
    print(table.render())
    print(f"end-to-end latency : {seconds_to_human(result.latency_seconds)}")
    print(f"throughput         : {result.throughput_samples_per_second:,.0f} samples/s")
    print(f"power              : {result.power_watts:.1f} W")
    print(f"energy / batch     : {result.energy_joules * 1e3:.3f} mJ")
    print(f"energy / sample    : {result.energy_per_sample_joules * 1e3:.3f} mJ")
    if args.baseline:
        baseline = get_backend(args.baseline, HARPV2_SYSTEM).run(model, args.batch)
        print(
            f"vs {baseline.design_point:<15}: "
            f"{result.speedup_over(baseline):.2f}x speedup, "
            f"{result.energy_efficiency_over(baseline):.2f}x energy efficiency"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    backends = args.backends if args.backends else list(available_backends())
    models = (
        tuple(parse_model(name) for name in args.models)
        if args.models
        else PAPER_MODELS
    )
    batches = tuple(args.batches) if args.batches else PAPER_BATCH_SIZES
    grid = (
        Experiment(HARPV2_SYSTEM)
        .backends(*backends)
        .models(models)
        .batch_sizes(batches)
        .jobs(args.jobs)
        .progress(_progress_printer(args.progress))
        .run()
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(grid.to_csv())
        print(f"wrote {len(grid)} design points to {args.csv}")
        return 0
    from repro.analysis.report import render_experiment

    print(render_experiment(grid))
    return 0


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_workload_catalog
    from repro.workloads.catalog import SCENARIO_CATALOG, UPDATE_SCENARIO_CATALOG

    print(render_workload_catalog())
    scenarios = TextTable(
        ["name", "summary", "fault spec"],
        title="Workload catalog: chaos scenarios",
    )
    for entry in SCENARIO_CATALOG.values():
        scenarios.add_row([entry.name, entry.summary, entry.fault_spec])
    print()
    print(scenarios.render())
    pushes = TextTable(
        ["name", "summary", "update spec"],
        title="Workload catalog: update scenarios",
    )
    for entry in UPDATE_SCENARIO_CATALOG.values():
        pushes.add_row([entry.name, entry.summary, entry.update_spec])
    print()
    print(pushes.render())
    print(
        "\nCompose specs with `repro serve --workload <arrival spec> "
        "--trace <trace spec>`; add `--faults <scenario|spec>` for a "
        "resilience drill or `--updates <scenario|spec>` for an "
        "embedding-push stream."
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        render_autoscale_timeline,
        render_incident_timeline,
        render_serving_comparison,
    )
    from repro.backends import backend_registration
    from repro.experiment.serving import check_elastic_support, check_workload_support
    from repro.serving.autoscale import AutoscalingCluster, parse_autoscaler_spec
    from repro.serving.batching import TimeoutBatching
    from repro.serving.cluster import ClusterSimulator
    from repro.serving.simulator import ServingSimulator
    from repro.workloads.catalog import (
        SCENARIO_CATALOG,
        UPDATE_SCENARIO_CATALOG,
        parse_arrival_spec,
        parse_trace_spec,
        resolve_fault_spec,
        resolve_update_spec,
    )
    from repro.workloads.workload import Workload

    if (args.duration is None) == (args.requests is None):
        print("error: provide exactly one of --duration / --requests", file=sys.stderr)
        return 2
    from repro.experiment.executor import resolve_jobs

    if resolve_jobs(args.jobs) > 1:
        print(
            "note: serve evaluates one (backend, workload) point; --jobs "
            "parallelizes grids (sweep, Experiment.serve), so this run is serial",
            file=sys.stderr,
        )
    progress = _progress_printer(args.progress)
    faults = resolve_fault_spec(args.faults)
    scenario = (
        SCENARIO_CATALOG.get(args.faults.strip().lower())
        if args.faults is not None
        else None
    )
    if scenario is not None:
        print(f"chaos scenario '{scenario.name}': {scenario.summary}")
    workload = Workload(
        arrivals=parse_arrival_spec(args.workload),
        trace=parse_trace_spec(args.trace),
    )
    check_workload_support(args.backend, workload)
    model = parse_model(args.model)
    backend = get_backend(args.backend, HARPV2_SYSTEM)
    batching = TimeoutBatching(window_s=args.window, max_batch_size=args.max_batch)
    timeline = None
    from repro.sharding import parse_cache_spec, parse_sharding_spec

    num_shards, shard_strategy = parse_sharding_spec(args.shards)
    if args.shard_strategy is not None:
        shard_strategy = args.shard_strategy
    cache_config = parse_cache_spec(args.cache)
    updates = resolve_update_spec(args.updates)
    update_scenario = (
        UPDATE_SCENARIO_CATALOG.get(args.updates.strip().lower())
        if args.updates is not None
        else None
    )
    if update_scenario is not None:
        print(f"update scenario '{update_scenario.name}': {update_scenario.summary}")
    shared_cache_config = parse_cache_spec(args.shared_cache)
    sharded = (
        num_shards > 1
        or cache_config is not None
        or updates is not None
        or shared_cache_config is not None
    )
    if sharded and (args.autoscale is not None or args.replicas > 1):
        print(
            "error: --shards/--cache/--updates/--shared-cache serve one "
            "sharded group; drop --autoscale/--replicas",
            file=sys.stderr,
        )
        return 2
    if sharded:
        from repro.analysis.report import render_sharding_report
        from repro.experiment.serving import check_sharding_support
        from repro.serving.sharded import ShardedReplicaGroup

        check_sharding_support(args.backend)
        group = ShardedReplicaGroup(
            backend,
            model,
            num_shards=num_shards,
            strategy=shard_strategy,
            cache=cache_config,
            batching=batching,
            system=HARPV2_SYSTEM,
            queue=args.queue,
            profile=args.profile,
            updates=updates,
            shared_cache=shared_cache_config,
        )
        report = group.serve_workload(
            workload,
            duration_s=args.duration,
            num_requests=args.requests,
            seed=args.seed,
            faults=faults,
        )
        if progress is not None:
            progress(f"[1/1] {args.backend} {workload.name} {model.name} served")
        cache_label = cache_config.describe() if cache_config is not None else "off"
        label = (
            f"{backend.design_point} x{num_shards} {shard_strategy} "
            f"shards, cache {cache_label}"
        )
        print(f"workload: {workload.describe()}")
        print(
            render_sharding_report(
                {label: report},
                sla_s=args.sla,
                title=f"Sharded serving of {model.name} under {workload.name}",
            )
        )
        if updates is not None or shared_cache_config is not None:
            from repro.analysis.report import render_freshness_report

            print()
            print(
                render_freshness_report(
                    {label: report},
                    sla_s=args.sla,
                    title=f"Cache freshness of {model.name} under {workload.name}",
                )
            )
        if report.incidents is not None:
            print()
            print(render_incident_timeline(report))
        if group.last_profile is not None:
            from repro.analysis.report import render_profile

            print()
            print(render_profile(group.last_profile))
        return 0
    if args.autoscale is not None:
        check_elastic_support(args.backend)
        policy = parse_autoscaler_spec(args.autoscale)
        warmup = (
            args.warmup
            if args.warmup is not None
            else backend_registration(args.backend).capabilities.provision_warmup_s
        )
        cluster = AutoscalingCluster(
            backend,
            model,
            policy=policy,
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            # --replicas sizes the fleet at time zero; left at its default
            # of 1 the elastic fleet starts at the --min-replicas floor.
            initial_replicas=args.replicas if args.replicas > 1 else None,
            control_interval_s=args.control_interval,
            warmup_s=warmup,
            batching=batching,
            queue=args.queue,
            profile=args.profile,
        )
        report = cluster.serve_workload(
            workload,
            duration_s=args.duration,
            num_requests=args.requests,
            seed=args.seed,
            faults=faults,
        )
        label = f"{backend.design_point} autoscaled ({policy.name})"
        timeline = render_autoscale_timeline(report, sla_s=args.sla)
        profiled = cluster
    elif faults is not None:
        # A static fleet under chaos still needs elastic plumbing: restarting
        # a crashed replica is a provisioning act, so the run is served on a
        # policy-less AutoscalingCluster (bit-identical to the static path
        # when the schedule is empty).
        check_elastic_support(args.backend)
        warmup = (
            args.warmup
            if args.warmup is not None
            else backend_registration(args.backend).capabilities.provision_warmup_s
        )
        cluster = AutoscalingCluster(
            backend,
            model,
            policy=None,
            min_replicas=1,
            max_replicas=max(args.replicas, 1),
            initial_replicas=args.replicas,
            warmup_s=warmup,
            batching=batching,
            queue=args.queue,
            profile=args.profile,
        )
        report = cluster.serve_workload(
            workload,
            duration_s=args.duration,
            num_requests=args.requests,
            seed=args.seed,
            faults=faults,
        )
        label = f"{backend.design_point} x{args.replicas} (chaos)"
        profiled = cluster
    elif args.replicas == 1:
        simulator = ServingSimulator(
            backend, model, batching=batching, queue=args.queue, profile=args.profile
        )
        report = simulator.serve_workload(
            workload, duration_s=args.duration, num_requests=args.requests, seed=args.seed
        )
        label = f"{backend.design_point} x1"
        profiled = simulator
    else:
        cluster = ClusterSimulator(
            backend,
            model,
            num_replicas=args.replicas,
            batching=batching,
            queue=args.queue,
            profile=args.profile,
        )
        report = cluster.serve_workload(
            workload, duration_s=args.duration, num_requests=args.requests, seed=args.seed
        )
        label = f"{backend.design_point} x{args.replicas}"
        profiled = cluster
    if progress is not None:
        progress(f"[1/1] {args.backend} {workload.name} {model.name} served")
    print(f"workload: {workload.describe()}")
    if workload.trace.kind != "uniform":
        print(
            "note: the trace model shapes functional batches and cache studies; "
            "serving latency is priced at the device model's uniform "
            "(pessimal-locality) calibration, an upper bound under skew."
        )
    print(
        render_serving_comparison(
            {label: report},
            sla_s=args.sla,
            title=f"Serving {model.name} under {workload.name}",
        )
    )
    if timeline is not None:
        print()
        print(timeline)
    if getattr(report, "incidents", None) is not None:
        print()
        print(render_incident_timeline(report))
    if profiled.last_profile is not None:
        from repro.analysis.report import render_profile

        print()
        print(render_profile(profiled.last_profile))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_capacity_plan
    from repro.serving.batching import TimeoutBatching
    from repro.serving.planner import CapacityPlanner
    from repro.workloads.catalog import parse_arrival_spec, parse_trace_spec
    from repro.workloads.workload import Workload

    if (args.duration is None) == (args.requests is None):
        print("error: provide exactly one of --duration / --requests", file=sys.stderr)
        return 2
    workload = Workload(
        arrivals=parse_arrival_spec(args.workload),
        trace=parse_trace_spec(args.trace),
    )
    model = parse_model(args.model)
    backends = args.backends if args.backends else list(available_backends())
    planner = CapacityPlanner(
        HARPV2_SYSTEM,
        sla_s=args.sla,
        target_attainment=args.attainment,
        max_replicas=args.max_replicas,
        batching=TimeoutBatching(window_s=args.window, max_batch_size=args.max_batch),
        seed=args.seed,
        jobs=args.jobs,
    )
    plan = planner.plan(
        workload,
        model,
        backends=backends,
        duration_s=args.duration,
        num_requests=args.requests,
    )
    print(f"workload: {workload.describe()}")
    print(render_capacity_plan(plan))
    return 0 if plan.best() is not None else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Centaur reproduction: backends, experiments and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-backends", help="list registered device backends"
    )
    list_parser.set_defaults(handler=_cmd_list_backends)

    run_parser = subparsers.add_parser(
        "run", help="price one (backend, model, batch) design point"
    )
    run_parser.add_argument("--backend", required=True, help="registry name, e.g. centaur")
    run_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM3")
    run_parser.add_argument("--batch", type=int, default=64, help="batch size (default 64)")
    run_parser.add_argument(
        "--baseline",
        default="cpu",
        help="backend to compare against (default cpu; empty string disables)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for grid evaluation (0 = all CPUs); a single "
            "design point always prices serially"
        ),
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an experiment grid over backends x models x batches"
    )
    sweep_parser.add_argument(
        "--backends", nargs="+", default=None, help="registry names (default: all)"
    )
    sweep_parser.add_argument(
        "--models", nargs="+", default=None, help="Table I models (default: all six)"
    )
    sweep_parser.add_argument(
        "--batches", nargs="+", type=int, default=None, help="batch sizes (default: 1-128)"
    )
    sweep_parser.add_argument("--csv", default=None, help="write the grid to a CSV file")
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes fanning the grid out (default 1 = serial, "
            "0 = all CPUs); results are byte-identical at any setting"
        ),
    )
    sweep_parser.add_argument(
        "--progress",
        action="store_true",
        help="log each grid point (n/total, cached vs computed) to stderr",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    workloads_parser = subparsers.add_parser(
        "list-workloads", help="list the arrival processes and trace models"
    )
    workloads_parser.set_defaults(handler=_cmd_list_workloads)

    serve_parser = subparsers.add_parser(
        "serve", help="stream a workload through the serving simulator"
    )
    serve_parser.add_argument("--backend", required=True, help="registry name, e.g. centaur")
    serve_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM2")
    serve_parser.add_argument(
        "--workload",
        default="poisson:20000",
        help="arrival spec (see list-workloads), e.g. bursty:on=40000,off=2000",
    )
    serve_parser.add_argument(
        "--trace", default="uniform", help="trace spec, e.g. zipf:1.05 (default uniform)"
    )
    serve_parser.add_argument(
        "--requests", type=int, default=None, help="serve exactly this many requests"
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None, help="serve this many simulated seconds"
    )
    serve_parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help=(
            "identical replicas behind the dispatcher; with --autoscale this "
            "is the fleet size at time zero (default: the --min-replicas floor)"
        ),
    )
    serve_parser.add_argument(
        "--shards",
        default="1",
        metavar="SPEC",
        help=(
            "partition the model's embedding tables: a shard count or a "
            "'<count>:<strategy>' spec, e.g. 4 or 4:row (default 1)"
        ),
    )
    serve_parser.add_argument(
        "--shard-strategy",
        default=None,
        choices=("table", "row", "greedy"),
        help=(
            "shard placement strategy; overrides the --shards spec "
            "(default table-wise round robin)"
        ),
    )
    serve_parser.add_argument(
        "--cache",
        default=None,
        metavar="SPEC",
        help=(
            "hot-row cache in front of every shard's gather, e.g. "
            "lru:rows=4096 or lfu:bytes=1048576 (default off)"
        ),
    )
    serve_parser.add_argument(
        "--updates",
        default=None,
        metavar="SPEC",
        help=(
            "embedding update stream pushed into serving: a named scenario "
            "from list-workloads (e.g. model-push-storm) or "
            "MODE:rate=R,rows=K[,trace=zipf:1.05] with MODE one of "
            "invalidate / write-through / ignore (default off)"
        ),
    )
    serve_parser.add_argument(
        "--shared-cache",
        default=None,
        metavar="SPEC",
        help=(
            "shared second cache tier across shards, priced over the "
            "system link; same spec grammar as --cache (default off)"
        ),
    )
    serve_parser.add_argument(
        "--window", type=float, default=1e-3, help="batching window in seconds"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=64, help="batching size cap"
    )
    serve_parser.add_argument(
        "--sla", type=float, default=5e-3, help="SLA budget in seconds for attainment"
    )
    serve_parser.add_argument("--seed", type=int, default=0, help="workload stream seed")
    serve_parser.add_argument(
        "--autoscale",
        default=None,
        metavar="SPEC",
        help=(
            "serve on an elastic fleet driven by an autoscaler spec, e.g. "
            "util:target=0.7 / queue:high=8,low=1 / ewma:rate=20000 / "
            "schedule:0=1,0.5=4"
        ),
    )
    serve_parser.add_argument(
        "--min-replicas", type=int, default=1, help="autoscaling floor (default 1)"
    )
    serve_parser.add_argument(
        "--max-replicas", type=int, default=8, help="autoscaling ceiling (default 8)"
    )
    serve_parser.add_argument(
        "--control-interval",
        type=float,
        default=10e-3,
        help="autoscaler control tick in seconds (default 0.01)",
    )
    serve_parser.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="replica warm-up in seconds (default: the backend's registered hint)",
    )
    serve_parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault schedule: a named scenario from "
            "list-workloads (e.g. region-failover) or a ;-separated spec, "
            "e.g. 'crash:at=0.05,restart=0.02;report:sla=0.005' "
            "(kinds: crash, shard-loss, link, brownout, poisson, report)"
        ),
    )
    serve_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-event-label engine profile after the serving table",
    )
    serve_parser.add_argument(
        "--queue",
        choices=["auto", "heap", "calendar"],
        default="auto",
        help="event-queue implementation for the simulation engine",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for grid evaluation (0 = all CPUs); serve "
            "runs one point, so this is accepted for symmetry and noted"
        ),
    )
    serve_parser.add_argument(
        "--progress",
        action="store_true",
        help="log point completion to stderr (never alters the report)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    plan_parser = subparsers.add_parser(
        "plan", help="search the minimal fleet meeting a p99 SLA per backend"
    )
    plan_parser.add_argument(
        "--backends", nargs="+", default=None, help="registry names (default: all)"
    )
    plan_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM2")
    plan_parser.add_argument(
        "--workload",
        default="poisson:20000",
        help="arrival spec (see list-workloads)",
    )
    plan_parser.add_argument(
        "--trace", default="uniform", help="trace spec (default uniform)"
    )
    plan_parser.add_argument(
        "--requests", type=int, default=None, help="plan against this many requests"
    )
    plan_parser.add_argument(
        "--duration", type=float, default=None, help="plan against this many seconds"
    )
    plan_parser.add_argument(
        "--sla", type=float, default=5e-3, help="SLA budget in seconds (default 5ms)"
    )
    plan_parser.add_argument(
        "--attainment",
        type=float,
        default=0.99,
        help="fraction of requests that must meet the SLA (default 0.99)",
    )
    plan_parser.add_argument(
        "--max-replicas", type=int, default=64, help="search ceiling (default 64)"
    )
    plan_parser.add_argument(
        "--window", type=float, default=1e-3, help="batching window in seconds"
    )
    plan_parser.add_argument(
        "--max-batch", type=int, default=64, help="batching size cap"
    )
    plan_parser.add_argument("--seed", type=int, default=0, help="workload stream seed")
    plan_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes searching backends in parallel (0 = all "
            "CPUs); each backend's search stays sequential"
        ),
    )
    plan_parser.set_defaults(handler=_cmd_plan)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except (ReproError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
