"""Command-line interface: ``python -m repro``.

Subcommands:

* ``repro list-backends`` — the registered devices and their capabilities.
* ``repro run --backend centaur --model DLRM3 --batch 64`` — price one
  design point and print its latency/energy summary.
* ``repro sweep --backends cpu centaur --models DLRM1 DLRM4 --batches 1 64``
  — run an experiment grid and print (or export) the results.
* ``repro list-workloads`` — the arrival processes and trace models the
  workload subsystem can build from compact specs.
* ``repro serve --backend centaur --model DLRM2 --workload bursty:on=40000
  --requests 20000`` — stream a workload through the event-driven serving
  simulator and print the tail-latency report.

Models accept Table I shorthand: ``DLRM3``, ``DLRM(3)`` and ``3`` all name
the third configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.backends import available_backends, backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.presets import HARPV2_SYSTEM, PAPER_BATCH_SIZES, PAPER_MODELS, dlrm_preset
from repro.errors import ReproError
from repro.experiment import Experiment
from repro.utils.tables import TextTable
from repro.utils.units import seconds_to_human


def parse_model(which: str) -> DLRMConfig:
    """Resolve ``DLRM3`` / ``DLRM(3)`` / ``3`` to a Table I preset."""
    text = which.strip()
    candidate = text.upper().replace("DLRM", "").strip("()")
    if candidate.isdigit():
        return dlrm_preset(int(candidate))
    return dlrm_preset(text)


def _cmd_list_backends(args: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "design point", "accelerator", "offloads EMB", "description"],
        title="Registered backends",
    )
    for name in available_backends():
        registration = backend_registration(name)
        capabilities = registration.capabilities
        table.add_row(
            [
                name,
                registration.design_point,
                "yes" if capabilities.uses_accelerator else "no",
                "yes" if capabilities.offloads_embeddings else "no",
                registration.description,
            ]
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    model = parse_model(args.model)
    backend = get_backend(args.backend, HARPV2_SYSTEM)
    result = backend.run(model, args.batch)

    print(
        f"{result.design_point} | {result.model_name} | batch {result.batch_size}"
    )
    table = TextTable(["stage", "latency", "share %"], title="Latency breakdown")
    for stage, seconds in result.breakdown.stages.items():
        table.add_row(
            [stage, seconds_to_human(seconds), 100.0 * result.breakdown.fraction(stage)]
        )
    print(table.render())
    print(f"end-to-end latency : {seconds_to_human(result.latency_seconds)}")
    print(f"throughput         : {result.throughput_samples_per_second:,.0f} samples/s")
    print(f"power              : {result.power_watts:.1f} W")
    print(f"energy / batch     : {result.energy_joules * 1e3:.3f} mJ")
    print(f"energy / sample    : {result.energy_per_sample_joules * 1e3:.3f} mJ")
    if args.baseline:
        baseline = get_backend(args.baseline, HARPV2_SYSTEM).run(model, args.batch)
        print(
            f"vs {baseline.design_point:<15}: "
            f"{result.speedup_over(baseline):.2f}x speedup, "
            f"{result.energy_efficiency_over(baseline):.2f}x energy efficiency"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    backends = args.backends if args.backends else list(available_backends())
    models = (
        tuple(parse_model(name) for name in args.models)
        if args.models
        else PAPER_MODELS
    )
    batches = tuple(args.batches) if args.batches else PAPER_BATCH_SIZES
    grid = (
        Experiment(HARPV2_SYSTEM)
        .backends(*backends)
        .models(models)
        .batch_sizes(batches)
        .run()
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(grid.to_csv())
        print(f"wrote {len(grid)} design points to {args.csv}")
        return 0
    from repro.analysis.report import render_experiment

    print(render_experiment(grid))
    return 0


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_workload_catalog

    print(render_workload_catalog())
    print(
        "\nCompose specs with `repro serve --workload <arrival spec> "
        "--trace <trace spec>`."
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_serving_comparison
    from repro.experiment.serving import check_workload_support
    from repro.serving.batching import TimeoutBatching
    from repro.serving.cluster import ClusterSimulator
    from repro.serving.simulator import ServingSimulator
    from repro.workloads.catalog import parse_arrival_spec, parse_trace_spec
    from repro.workloads.workload import Workload

    if (args.duration is None) == (args.requests is None):
        print("error: provide exactly one of --duration / --requests", file=sys.stderr)
        return 2
    workload = Workload(
        arrivals=parse_arrival_spec(args.workload),
        trace=parse_trace_spec(args.trace),
    )
    check_workload_support(args.backend, workload)
    model = parse_model(args.model)
    backend = get_backend(args.backend, HARPV2_SYSTEM)
    batching = TimeoutBatching(window_s=args.window, max_batch_size=args.max_batch)
    if args.replicas == 1:
        simulator = ServingSimulator(backend, model, batching=batching)
        report = simulator.serve_workload(
            workload, duration_s=args.duration, num_requests=args.requests, seed=args.seed
        )
        label = f"{backend.design_point} x1"
    else:
        cluster = ClusterSimulator(
            backend, model, num_replicas=args.replicas, batching=batching
        )
        report = cluster.serve_workload(
            workload, duration_s=args.duration, num_requests=args.requests, seed=args.seed
        )
        label = f"{backend.design_point} x{args.replicas}"
    print(f"workload: {workload.describe()}")
    if workload.trace.kind != "uniform":
        print(
            "note: the trace model shapes functional batches and cache studies; "
            "serving latency is priced at the device model's uniform "
            "(pessimal-locality) calibration, an upper bound under skew."
        )
    print(
        render_serving_comparison(
            {label: report},
            sla_s=args.sla,
            title=f"Serving {model.name} under {workload.name}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Centaur reproduction: backends, experiments and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-backends", help="list registered device backends"
    )
    list_parser.set_defaults(handler=_cmd_list_backends)

    run_parser = subparsers.add_parser(
        "run", help="price one (backend, model, batch) design point"
    )
    run_parser.add_argument("--backend", required=True, help="registry name, e.g. centaur")
    run_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM3")
    run_parser.add_argument("--batch", type=int, default=64, help="batch size (default 64)")
    run_parser.add_argument(
        "--baseline",
        default="cpu",
        help="backend to compare against (default cpu; empty string disables)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an experiment grid over backends x models x batches"
    )
    sweep_parser.add_argument(
        "--backends", nargs="+", default=None, help="registry names (default: all)"
    )
    sweep_parser.add_argument(
        "--models", nargs="+", default=None, help="Table I models (default: all six)"
    )
    sweep_parser.add_argument(
        "--batches", nargs="+", type=int, default=None, help="batch sizes (default: 1-128)"
    )
    sweep_parser.add_argument("--csv", default=None, help="write the grid to a CSV file")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    workloads_parser = subparsers.add_parser(
        "list-workloads", help="list the arrival processes and trace models"
    )
    workloads_parser.set_defaults(handler=_cmd_list_workloads)

    serve_parser = subparsers.add_parser(
        "serve", help="stream a workload through the serving simulator"
    )
    serve_parser.add_argument("--backend", required=True, help="registry name, e.g. centaur")
    serve_parser.add_argument("--model", required=True, help="Table I model, e.g. DLRM2")
    serve_parser.add_argument(
        "--workload",
        default="poisson:20000",
        help="arrival spec (see list-workloads), e.g. bursty:on=40000,off=2000",
    )
    serve_parser.add_argument(
        "--trace", default="uniform", help="trace spec, e.g. zipf:1.05 (default uniform)"
    )
    serve_parser.add_argument(
        "--requests", type=int, default=None, help="serve exactly this many requests"
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None, help="serve this many simulated seconds"
    )
    serve_parser.add_argument(
        "--replicas", type=int, default=1, help="identical replicas behind the dispatcher"
    )
    serve_parser.add_argument(
        "--window", type=float, default=1e-3, help="batching window in seconds"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=64, help="batching size cap"
    )
    serve_parser.add_argument(
        "--sla", type=float, default=5e-3, help="SLA budget in seconds for attainment"
    )
    serve_parser.add_argument("--seed", type=int, default=0, help="workload stream seed")
    serve_parser.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except (ReproError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
