"""Package version information."""

__version__ = "1.0.0"

#: Paper this package reproduces.
PAPER_TITLE = (
    "Centaur: A Chiplet-based, Hybrid Sparse-Dense Accelerator for "
    "Personalized Recommendations"
)
PAPER_VENUE = "ISCA 2020"
PAPER_AUTHORS = ("Ranggi Hwang", "Taehun Kim", "Youngeun Kwon", "Minsoo Rhu")
