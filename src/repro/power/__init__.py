"""Power and energy-efficiency models (Table IV and Figure 15b)."""

from repro.power.models import DesignPointPower, PowerModel
from repro.power.energy import EnergyReport, energy_of, energy_efficiency_ratio

__all__ = [
    "DesignPointPower",
    "PowerModel",
    "EnergyReport",
    "energy_of",
    "energy_efficiency_ratio",
]
