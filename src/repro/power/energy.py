"""Energy accounting on top of the power model.

The paper evaluates energy-efficiency by multiplying each design point's
average power by its end-to-end inference latency; improvements are the
ratio of baseline energy to the design's energy (higher is better).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.results import InferenceResult


@dataclass(frozen=True)
class EnergyReport:
    """Energy metrics of one inference batch on one design point."""

    design_point: str
    model_name: str
    batch_size: int
    latency_s: float
    power_watts: float
    energy_joules: float
    energy_per_sample_joules: float


def energy_of(result: InferenceResult) -> EnergyReport:
    """Compute the energy report of one :class:`InferenceResult`."""
    if result.power_watts <= 0:
        raise SimulationError(
            f"result for {result.design_point} has no power attached; "
            "runners must set power_watts"
        )
    energy = result.energy_joules
    return EnergyReport(
        design_point=result.design_point,
        model_name=result.model_name,
        batch_size=result.batch_size,
        latency_s=result.latency_seconds,
        power_watts=result.power_watts,
        energy_joules=energy,
        energy_per_sample_joules=energy / result.batch_size,
    )


def energy_efficiency_ratio(candidate: InferenceResult, baseline: InferenceResult) -> float:
    """Energy-efficiency improvement of ``candidate`` over ``baseline``.

    Defined as ``baseline energy / candidate energy`` for the same (model,
    batch) pair, exactly as Figure 15(b) normalizes its bars.
    """
    return candidate.energy_efficiency_over(baseline)
