"""Average-power models of the three design points.

The paper measures socket-level power with ``pcm-power`` (CPU and
CPU+FPGA) and ``nvprof`` (GPU) and reports one average number per design
point (Table IV).  The model reproduces those numbers and also provides a
component-level decomposition that explains *why* Centaur draws less power
than the CPU-only baseline: the Xeon cores sit mostly idle while the FPGA
performs the gathers and GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.system import PowerConfig
from repro.errors import ConfigurationError

#: Canonical design-point names used across the library.
DESIGN_POINTS = ("CPU-only", "CPU-GPU", "Centaur")


@dataclass(frozen=True)
class DesignPointPower:
    """Average power of one design point with a component decomposition."""

    design_point: str
    total_watts: float
    components: Dict[str, float]

    def __post_init__(self) -> None:
        if self.total_watts <= 0:
            raise ConfigurationError("total_watts must be positive")
        component_sum = sum(self.components.values())
        if abs(component_sum - self.total_watts) > 1e-6:
            raise ConfigurationError(
                f"component powers sum to {component_sum}, expected {self.total_watts}"
            )


class PowerModel:
    """Maps design points to average power, calibrated to Table IV."""

    def __init__(self, config: PowerConfig):
        self.config = config

    # ------------------------------------------------------------------
    def power_watts(self, design_point: str) -> float:
        """Average power of a design point (Table IV)."""
        if design_point == "CPU-only":
            return self.config.cpu_only_watts
        if design_point == "CPU-GPU":
            return self.config.cpu_gpu_total_watts
        if design_point == "Centaur":
            return self.config.centaur_watts
        raise ConfigurationError(
            f"unknown design point {design_point!r}; expected one of {DESIGN_POINTS}"
        )

    def breakdown(self, design_point: str) -> DesignPointPower:
        """Component-level decomposition of a design point's power draw.

        The split between cores/uncore/DRAM/FPGA/GPU is a modelling estimate
        (the paper reports only totals); the totals match Table IV exactly.
        """
        if design_point == "CPU-only":
            total = self.config.cpu_only_watts
            components = {
                "cpu_cores": round(total * 0.56, 3),
                "cpu_uncore": round(total * 0.22, 3),
                "dram": round(total * 0.22, 3),
            }
        elif design_point == "CPU-GPU":
            cpu = self.config.cpu_gpu_cpu_watts
            gpu = self.config.cpu_gpu_gpu_watts
            components = {
                "cpu_cores": round(cpu * 0.58, 3),
                "cpu_uncore": round(cpu * 0.21, 3),
                "dram": round(cpu * 0.21, 3),
                "gpu": float(gpu),
            }
            total = self.config.cpu_gpu_total_watts
        elif design_point == "Centaur":
            total = self.config.centaur_watts
            components = {
                "cpu_cores": round(total * 0.26, 3),
                "cpu_uncore": round(total * 0.20, 3),
                "dram": round(total * 0.24, 3),
                "fpga": round(total * 0.30, 3),
            }
        else:
            raise ConfigurationError(
                f"unknown design point {design_point!r}; expected one of {DESIGN_POINTS}"
            )
        # Absorb rounding residue into the first component so the total is exact.
        residue = total - sum(components.values())
        first_key = next(iter(components))
        components[first_key] = round(components[first_key] + residue, 6)
        return DesignPointPower(
            design_point=design_point, total_watts=total, components=components
        )

    def table4(self) -> Dict[str, float]:
        """The Table IV rows: design point -> average Watts."""
        return {point: self.power_watts(point) for point in DESIGN_POINTS}
