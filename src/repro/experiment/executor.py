"""Process-pool fan-out for experiment grids.

Every grid point in this repo is an independent, seed-deterministic
simulation — a pure function of picklable inputs (backend *name*, model /
system configs, workload / shard / fault specs).  :class:`GridExecutor`
exploits that: it fans task payloads out over a
:class:`concurrent.futures.ProcessPoolExecutor` and hands results back in
**submission order**, so callers that enumerate their grid in the serial
order get byte-identical products at any ``jobs=`` setting.

The module-level ``_run_*`` functions are the worker entry points (they
must be importable by name so payloads stay spawn-safe).  Workers resolve
backends through the registry — builtin backends self-register on import
in every process; ad-hoc registrations made only in the parent cannot be
resolved by a worker, which is why ``jobs`` defaults to 1 (the serial
path) everywhere.

Determinism contract (asserted by the equivalence-matrix tests): for each
grid flavour the parallel path partitions points exactly the way the
serial path shares state — batch points are pure per-point functions;
serving points share a simulator per (backend, default model) group, so a
whole group is one task replayed in serial order inside one worker; shard
points build a fresh group each, so they ship one per task.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends.registry import backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.experiment.cache import ResultCache
from repro.results import InferenceResult
from repro.workloads.workload import Workload


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs=`` setting: ``0`` means one worker per CPU."""
    jobs = int(jobs)
    if jobs < 0:
        raise SimulationError(f"jobs must be >= 0 (0 = all CPUs), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _pool_context(start_method: Optional[str]):
    """The multiprocessing context grids fan out with.

    ``fork`` (where the platform offers it) starts a worker in
    milliseconds; ``spawn`` pays a fresh-interpreter import (~1.5 s of
    ``repro`` imports) per worker, which would erase the speedup on small
    grids.  Payloads are spawn-safe either way — workers never rely on
    inherited state (each computes into a fresh local cache) — so forcing
    ``start_method="spawn"`` changes wall-clock, never results.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(start_method)


#: Progress callback: (payload index, result) — completion order in
#: parallel mode, submission order in serial mode.
OnResult = Callable[[int, object], None]


class GridExecutor:
    """Maps a worker function over picklable payloads, jobs at a time.

    ``jobs=1`` runs the plain serial loop in-process (no pool, no pickling
    — exactly the pre-parallel code path).  Results always come back in
    submission order regardless of completion order, which is what lets
    grid products stay byte-identical across ``jobs`` settings.
    """

    def __init__(self, jobs: int = 1, start_method: Optional[str] = None):
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def map(
        self,
        fn: Callable[[object], object],
        payloads: Sequence[object],
        on_result: Optional[OnResult] = None,
    ) -> List[object]:
        payloads = list(payloads)
        if not payloads:
            return []
        if self.jobs == 1 or len(payloads) == 1:
            results: List[object] = []
            for index, payload in enumerate(payloads):
                result = fn(payload)
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
            return results
        slots: List[object] = [None] * len(payloads)
        context = _pool_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(payloads)), mp_context=context
        ) as pool:
            pending = {
                pool.submit(fn, payload): index
                for index, payload in enumerate(payloads)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    slots[index] = future.result()
                    if on_result is not None:
                        on_result(index, slots[index])
        return slots


# ----------------------------------------------------------------------
# Batch grids (Experiment.run)


@dataclass(frozen=True)
class BatchChunk:
    """A slice of batch-grid points one worker prices.

    ``memoize=True`` computes through a fresh worker-local
    :class:`ResultCache` and returns it for the parent to
    :meth:`~ResultCache.merge`; ``memoize=False`` mirrors the uncached
    serial path (every point runs the device model, duplicates included).
    """

    system: SystemConfig
    points: Tuple[Tuple[str, DLRMConfig, int], ...]  # (backend, model, batch)
    memoize: bool = True


def _run_batch_chunk(chunk: BatchChunk):
    backends: Dict[str, object] = {}
    for name, _, _ in chunk.points:
        if name not in backends:
            backends[name] = get_backend(name, chunk.system)
    if chunk.memoize:
        cache = ResultCache()
        for name, model, batch_size in chunk.points:
            cache.get_or_compute(
                backends[name], model, batch_size, chunk.system, backend_name=name
            )
        return cache
    return [
        backends[name].run(model, batch_size)
        for name, model, batch_size in chunk.points
    ]


# ----------------------------------------------------------------------
# Serving grids (serve / autoscale / chaos)


@dataclass
class SimulatorSpec:
    """Declarative recipe for one serving front-end.

    The serial grids used to capture this in a closure; a spec is the
    picklable equivalent, built once per grid and instantiated per
    (backend, default model) group — in the parent at ``jobs=1``, in the
    worker otherwise.
    """

    kind: str  # "serve" | "autoscale" | "chaos"
    params: Dict[str, object] = field(default_factory=dict)


def build_simulator(
    spec: SimulatorSpec, backend_name: str, backend, model: DLRMConfig
):
    """Instantiate the serving front-end a spec describes."""
    params = spec.params
    if spec.kind == "serve":
        from repro.serving.cluster import ClusterSimulator
        from repro.serving.simulator import ServingSimulator

        if params["replicas"] == 1:
            return ServingSimulator(backend, model, batching=params["batching"])
        return ClusterSimulator(
            backend,
            model,
            num_replicas=params["replicas"],
            batching=params["batching"],
            dispatcher=params["dispatcher"],
        )
    if spec.kind in ("autoscale", "chaos"):
        from repro.serving.autoscale import AutoscalingCluster

        warmup_s = params["warmup_s"]
        if warmup_s is None:
            warmup_s = backend_registration(
                backend_name
            ).capabilities.provision_warmup_s
        kwargs = dict(
            policy=params["policy"],
            min_replicas=params["min_replicas"],
            max_replicas=params["max_replicas"],
            control_interval_s=params["control_interval_s"],
            warmup_s=warmup_s,
            idle_power_w=params["idle_power_w"],
            batching=params["batching"],
            dispatcher=params["dispatcher"],
        )
        if spec.kind == "chaos":
            kwargs["initial_replicas"] = params["initial_replicas"]
        return AutoscalingCluster(backend, model, **kwargs)
    raise SimulationError(f"unknown simulator spec kind {spec.kind!r}")


@dataclass
class ServeGroup:
    """All serving points sharing one simulator, replayed in serial order.

    The serial grid reuses one simulator per (backend, default model) and
    serves its workloads in encounter order; shipping the whole group as
    one task reproduces that reuse pattern exactly, which is what keeps
    ``jobs=N`` reports byte-identical to ``jobs=1``.
    """

    system: SystemConfig
    spec: SimulatorSpec
    backend_name: str
    default_model: DLRMConfig
    workloads: Tuple[Workload, ...]
    duration_s: Optional[float]
    num_requests: Optional[int]
    seed: int
    serve_kwargs: Dict[str, object] = field(default_factory=dict)


def _run_serve_group(group: ServeGroup) -> List[Tuple[str, str, object]]:
    backend = get_backend(group.backend_name, group.system)
    simulator = build_simulator(
        group.spec, group.backend_name, backend, group.default_model
    )
    reports: List[Tuple[str, str, object]] = []
    for workload in group.workloads:
        report = simulator.serve_workload(
            workload,
            duration_s=group.duration_s,
            num_requests=group.num_requests,
            seed=group.seed,
            **group.serve_kwargs,
        )
        reports.append((workload.name, report.model_name, report))
    return reports


# ----------------------------------------------------------------------
# Sharding grids


@dataclass
class ShardPoint:
    """One sharded-serving grid point (a fresh group per point)."""

    system: SystemConfig
    backend_name: str
    workload: Workload
    model: DLRMConfig
    plan: object  # ShardingPlan
    cache: object  # Optional[CacheConfig]
    batching: object  # Optional[BatchingPolicy]
    duration_s: Optional[float]
    num_requests: Optional[int]
    seed: int
    updates: object = None  # Optional[UpdateProcess]


def _run_shard_point(point: ShardPoint):
    from repro.serving.sharded import ShardedReplicaGroup

    backend = get_backend(point.backend_name, point.system)
    group = ShardedReplicaGroup(
        backend,
        point.model,
        plan=point.plan,
        cache=point.cache,
        batching=point.batching,
        system=point.system,
        updates=point.updates,
    )
    return group.serve_workload(
        point.workload,
        duration_s=point.duration_s,
        num_requests=point.num_requests,
        seed=point.seed,
    )


# ----------------------------------------------------------------------
# Capacity planning


@dataclass
class PlanBackendTask:
    """One backend's minimal-fleet search (the search itself is serial)."""

    system: SystemConfig
    sla_s: float
    target_attainment: float
    max_replicas: int
    batching: object
    dispatcher: object
    seed: int
    backend_name: str
    model: DLRMConfig
    workload: Workload
    duration_s: Optional[float]
    num_requests: Optional[int]


def _run_plan_backend(task: PlanBackendTask):
    from repro.serving.planner import CapacityPlanner

    planner = CapacityPlanner(
        task.system,
        sla_s=task.sla_s,
        target_attainment=task.target_attainment,
        max_replicas=task.max_replicas,
        batching=task.batching,
        dispatcher=task.dispatcher,
        seed=task.seed,
    )
    return planner.plan_backend(
        task.backend_name,
        task.model,
        task.workload,
        duration_s=task.duration_s,
        num_requests=task.num_requests,
    )


def chunk_evenly(items: Sequence, chunks: int) -> List[List]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs."""
    items = list(items)
    count = min(max(1, chunks), len(items)) if items else 0
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    out: List[List] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out
