"""Sharded-serving experiment grids: shards x strategy x cache size.

Where :func:`repro.experiment.serving.serve_grid` answers "which backend
serves this workload best", this module sweeps the *scale-out* axes the
sharding subsystem adds: how many embedding shards, placed by which
strategy, with how much hot-row cache.  Every point is capability-gated
(workload support and :func:`~repro.experiment.serving.check_sharding_support`)
before anything runs, and lands in a :class:`ShardingExperimentResult`
keyed ``(backend, workload, shards, strategy, cache label)``.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backends.registry import get_backend
from repro.experiment.executor import (
    GridExecutor,
    ShardPoint,
    _run_shard_point,
    resolve_jobs,
)
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.experiment.serving import check_sharding_support, check_workload_support
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import ClusterReport
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding.cache import CacheConfig
from repro.sharding.plan import STRATEGIES, ShardingStrategy, make_plan
from repro.workloads.updates import UpdateProcess
from repro.workloads.workload import Workload

#: Key identifying one sharded point:
#: backend, workload, shards, strategy, cache, updates.
ShardingKey = Tuple[str, str, int, str, str, str]

#: Label used for the cache-off column of grids and reports.
CACHE_OFF = "off"

#: Label used for the no-update-stream column of grids and reports.
UPDATES_OFF = "off"


def cache_label(cache: Optional[CacheConfig]) -> str:
    """Stable axis label of one cache configuration (``"off"`` for none)."""
    return CACHE_OFF if cache is None else cache.describe()


def update_label(updates: Optional[UpdateProcess]) -> str:
    """Stable axis label of one update stream (``"off"`` for none)."""
    return UPDATES_OFF if updates is None else updates.label()


class ShardingExperimentResult:
    """All reports of one sharding grid, queryable by key."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self._reports: Dict[ShardingKey, ClusterReport] = {}

    # ------------------------------------------------------------------
    def add(
        self,
        backend: str,
        workload: str,
        shards: int,
        strategy: str,
        cache: str,
        report: ClusterReport,
        updates: str = UPDATES_OFF,
    ) -> None:
        self._reports[(backend, workload, shards, strategy, cache, updates)] = report

    def get(
        self,
        backend: str,
        workload: str,
        shards: int,
        strategy: str = "table",
        cache: str = CACHE_OFF,
        updates: str = UPDATES_OFF,
    ) -> ClusterReport:
        key = (backend, workload, int(shards), strategy, cache, updates)
        if key not in self._reports:
            raise KeyError(f"no sharding result for {key}")
        return self._reports[key]

    def filter(
        self,
        backend: Optional[str] = None,
        workload: Optional[str] = None,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        cache: Optional[str] = None,
        updates: Optional[str] = None,
    ) -> List[ClusterReport]:
        """All reports matching the given coordinates, in insertion order."""
        matches = []
        for (b, w, s, st, c, u), report in self._reports.items():
            if backend is not None and b != backend:
                continue
            if workload is not None and w != workload:
                continue
            if shards is not None and s != int(shards):
                continue
            if strategy is not None and st != strategy:
                continue
            if cache is not None and c != cache:
                continue
            if updates is not None and u != updates:
                continue
            matches.append(report)
        return matches

    def shard_counts(self) -> List[int]:
        return sorted({shards for _, _, shards, _, _, _ in self._reports})

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[Tuple[ShardingKey, ClusterReport]]:
        return iter(self._reports.items())

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """One row per grid point with the sharding-specific columns."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "backend",
                "workload",
                "shards",
                "strategy",
                "cache",
                "updates",
                "completed_requests",
                "p50_ms",
                "p99_ms",
                "mean_ms",
                "hit_rate",
                "lookup_imbalance",
                "cross_shard_mb",
                "mean_gather_us",
                "update_invalidations",
                "update_refreshes",
                "stale_hits",
            ]
        )
        for (
            backend,
            workload,
            shards,
            strategy,
            cache,
            updates,
        ), report in self._reports.items():
            latency = report.latency
            sharding = report.sharding
            writer.writerow(
                [
                    backend,
                    workload,
                    shards,
                    strategy,
                    cache,
                    updates,
                    report.completed_requests,
                    repr(latency.p50_s * 1e3),
                    repr(latency.p99_s * 1e3),
                    repr(latency.mean_s * 1e3),
                    repr(sharding.hit_rate if sharding else 0.0),
                    repr(sharding.lookup_imbalance if sharding else 1.0),
                    repr((sharding.cross_shard_bytes if sharding else 0.0) / 1e6),
                    repr((sharding.mean_gather_s if sharding else 0.0) * 1e6),
                    sharding.update_invalidations if sharding else 0,
                    sharding.update_refreshes if sharding else 0,
                    sharding.stale_hits if sharding else 0,
                ]
            )
        return buffer.getvalue()


def shard_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    model: DLRMConfig,
    shard_counts: Sequence[int] = (1, 2, 4),
    strategies: Sequence[Union[str, ShardingStrategy]] = ("table",),
    caches: Sequence[Optional[CacheConfig]] = (None,),
    updates: Sequence[Optional[UpdateProcess]] = (None,),
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    seed: int = 0,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ShardingExperimentResult:
    """Evaluate a backends x workloads x shards x strategy x cache x updates grid.

    Plans are built once per (shards, strategy) pair and shared across
    backends and workloads; each grid point serves through its own
    :class:`~repro.serving.sharded.ShardedReplicaGroup` so cache state
    never leaks between points — which also makes every point an
    independent task, so ``jobs > 1`` ships them one per worker and
    collects reports in serial order (byte-identical at any setting).
    The ``updates`` axis sweeps embedding-push streams (``None`` = the
    read-only path); labels must be distinct per point.
    """
    if not workloads:
        raise SimulationError("a sharding grid needs at least one workload")
    if not shard_counts:
        raise SimulationError("a sharding grid needs at least one shard count")
    if not strategies:
        raise SimulationError("a sharding grid needs at least one strategy")
    if not caches:
        caches = (None,)
    if not updates:
        updates = (None,)
    update_labels = [update_label(update) for update in updates]
    if len(set(update_labels)) != len(update_labels):
        # Points are keyed by update *label*; two streams sharing one
        # (e.g. equal rate/rows with different traces) would silently
        # collapse onto a single point — name them to disambiguate.
        raise SimulationError(
            f"update streams must have distinct labels, got {update_labels}"
        )
    for backend_name in backend_names:
        check_sharding_support(backend_name)
        for workload in workloads:
            check_workload_support(backend_name, workload)

    strategy_names = [
        strategy.name if isinstance(strategy, ShardingStrategy) else str(strategy)
        for strategy in strategies
    ]
    for name in strategy_names:
        if name not in STRATEGIES:
            raise SimulationError(
                f"unknown sharding strategy {name!r}; available: "
                f"{', '.join(sorted(STRATEGIES))}"
            )
    if len(set(strategy_names)) != len(strategy_names):
        # Grid points are keyed by strategy *name*; two instances sharing
        # one (e.g. row-wise with different hash seeds) would silently
        # collapse onto a single point.
        raise SimulationError(
            f"sharding strategies must have distinct names, got {strategy_names}"
        )
    plans = {
        (int(shards), name): make_plan(model, int(shards), strategy)
        for shards in shard_counts
        for name, strategy in zip(strategy_names, strategies)
    }

    points = [
        (backend_name, workload, shards, strategy_name, plan, cache, update)
        for backend_name in backend_names
        for workload in workloads
        for (shards, strategy_name), plan in plans.items()
        for cache in caches
        for update in updates
    ]
    outcome = ShardingExperimentResult(system)
    total = len(points)

    def emit(done: int, point) -> None:
        if progress is not None:
            backend_name, workload, shards, strategy_name, _, cache, update = point
            progress(
                f"[{done}/{total}] {backend_name} {workload.name} "
                f"x{shards} {strategy_name} cache={cache_label(cache)} "
                f"updates={update_label(update)} served"
            )

    if resolve_jobs(jobs) == 1:
        backends: Dict[str, object] = {}
        for done, point in enumerate(points, 1):
            backend_name, workload, shards, strategy_name, plan, cache, update = point
            backend = backends.get(backend_name)
            if backend is None:
                backend = get_backend(backend_name, system)
                backends[backend_name] = backend
            group = ShardedReplicaGroup(
                backend,
                model,
                plan=plan,
                cache=cache,
                batching=batching,
                system=system,
                updates=update,
            )
            report = group.serve_workload(
                workload,
                duration_s=duration_s,
                num_requests=num_requests,
                seed=seed,
            )
            outcome.add(
                backend_name,
                workload.name,
                shards,
                strategy_name,
                cache_label(cache),
                report,
                updates=update_label(update),
            )
            emit(done, point)
        return outcome

    payloads = [
        ShardPoint(
            system=system,
            backend_name=backend_name,
            workload=workload,
            model=model,
            plan=plan,
            cache=cache,
            batching=batching,
            duration_s=duration_s,
            num_requests=num_requests,
            seed=seed,
            updates=update,
        )
        for backend_name, workload, shards, strategy_name, plan, cache, update in points
    ]
    done = 0

    def on_point(index: int, report) -> None:
        nonlocal done
        done += 1
        emit(done, points[index])

    executor = GridExecutor(jobs)
    reports = executor.map(_run_shard_point, payloads, on_result=on_point)
    for point, report in zip(points, reports):
        backend_name, workload, shards, strategy_name, _, cache, update = point
        outcome.add(
            backend_name,
            workload.name,
            shards,
            strategy_name,
            cache_label(cache),
            report,
            updates=update_label(update),
        )
    return outcome
