"""Memoizing result cache keyed on (backend, model, batch, system).

Every design point in the evaluation grid is a pure function of those four
coordinates, so the figures and tables that slice the same grid can share
one :class:`ResultCache` and compute each point exactly once.  A
process-wide default cache backs :class:`repro.experiment.Experiment`
unless a caller supplies (or disables) its own.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.backends.base import Backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import SimulationError
from repro.results import InferenceResult

#: One memoized design point: (backend name, model fingerprint, batch, system fingerprint).
CacheKey = Tuple[str, str, int, str]

_FINGERPRINT_MEMO: Dict[object, str] = {}


def _fingerprint_dataclass(value) -> str:
    """Stable short hash of a (nested) frozen configuration dataclass.

    Memoized by value (frozen dataclasses hash on their fields), so equal
    configurations share one digest computation.
    """
    cached = _FINGERPRINT_MEMO.get(value)
    if cached is not None:
        return cached
    payload = repr(dataclasses.asdict(value)).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()[:16]
    _FINGERPRINT_MEMO[value] = digest
    return digest


def system_fingerprint(system: SystemConfig) -> str:
    """Deterministic digest of every calibration constant in a platform.

    Two :class:`SystemConfig` instances with equal fields share a
    fingerprint, so a cache survives re-constructing the same platform;
    changing any constant (e.g. the link-bandwidth ablation) yields a new
    fingerprint and therefore fresh design points.
    """
    return _fingerprint_dataclass(system)


def model_fingerprint(model: DLRMConfig) -> str:
    """Deterministic digest of a model configuration.

    The name alone is not sufficient — sweeps synthesize model variants —
    so the digest covers the full table/MLP shape.
    """
    return f"{model.name}#{_fingerprint_dataclass(model)}"


class ResultCache:
    """Memoizes :class:`InferenceResult` objects across experiments.

    Tracks hit/miss/compute counters so tests (and the benchmark harness)
    can assert that a full figure regeneration computes each unique design
    point exactly once.

    Thread-safe: :meth:`get_or_compute` holds the cache lock across the
    whole lookup-or-compute, so concurrent threads racing on one key can
    never price it twice (threaded callers serialize on the device model —
    process-level parallelism is what :class:`~repro.experiment.executor.
    GridExecutor` is for).  Caches pickle without their lock, so a worker
    process can ship its cache back to the parent for :meth:`merge`.
    """

    def __init__(self) -> None:
        self._entries: Dict[CacheKey, InferenceResult] = {}
        self._compute_counts: Dict[CacheKey, int] = {}
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks don't pickle; workers get a fresh one
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        backend_name: str, model: DLRMConfig, batch_size: int, system: SystemConfig
    ) -> CacheKey:
        """The cache coordinate of one design point."""
        return (
            backend_name,
            model_fingerprint(model),
            int(batch_size),
            system_fingerprint(system),
        )

    def get_or_compute(
        self,
        backend: Backend,
        model: DLRMConfig,
        batch_size: int,
        system: SystemConfig,
        *,
        backend_name: Optional[str] = None,
    ) -> InferenceResult:
        """Return the memoized result, computing it on first request.

        The returned object is shared by every caller of the same key (that
        sharing is the point of the cache) — treat it as immutable; in
        particular do not mutate ``result.extra``.
        """
        name = backend_name if backend_name is not None else backend.name
        key = self.key(name, model, batch_size, system)
        # The lock spans check *and* compute: releasing it between the two
        # is exactly the race that let two threads price one point twice.
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            self._compute_counts[key] = self._compute_counts.get(key, 0) + 1
            result = backend.run(model, batch_size)
            self._entries[key] = result
            return result

    def peek(self, key: CacheKey) -> Optional[InferenceResult]:
        """The memoized result of ``key`` without touching any counter."""
        with self._lock:
            return self._entries.get(key)

    # ------------------------------------------------------------------
    def merge(self, other: "ResultCache") -> None:
        """Fold a worker cache into this one.

        Entries absent here are adopted (the first cache to price a key
        wins on conflict — results are pure functions of the key, so both
        sides hold equal values); compute/hit/miss counters are *summed*,
        so duplicated work across processes still surfaces through
        :meth:`max_compute_count` instead of being hidden by the merge.
        """
        with self._lock, other._lock:
            for key, result in other._entries.items():
                self._entries.setdefault(key, result)
            for key, count in other._compute_counts.items():
                self._compute_counts[key] = self._compute_counts.get(key, 0) + count
            self.hits += other.hits
            self.misses += other.misses

    # ------------------------------------------------------------------
    def compute_counts(self) -> Dict[CacheKey, int]:
        """How many times each design point was actually computed."""
        with self._lock:
            return dict(self._compute_counts)

    def max_compute_count(self) -> int:
        """The worst duplication across all keys (1 = perfectly memoized)."""
        with self._lock:
            return max(self._compute_counts.values(), default=0)

    def clear(self) -> None:
        """Drop all entries and counters."""
        with self._lock:
            self._entries.clear()
            self._compute_counts.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Persist all entries as JSON (keys + serialized results)."""
        with self._lock:
            payload = [
                {"key": list(key), "result": result.to_dict()}
                for key, result in self._entries.items()
            ]
        pathlib.Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ResultCache":
        """Rebuild a cache persisted by :meth:`save` (counters start fresh)."""
        raw = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        cache = cls()
        for entry in raw:
            key = entry["key"]
            if len(key) != 4:
                raise SimulationError(f"malformed cache key {key!r}")
            cache._entries[(key[0], key[1], int(key[2]), key[3])] = (
                InferenceResult.from_dict(entry["result"])
            )
        return cache


#: Process-wide cache shared by every Experiment that does not override it.
_DEFAULT_CACHE = ResultCache()
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> ResultCache:
    """The process-wide cache used by :class:`Experiment` by default."""
    return _DEFAULT_CACHE


def set_default_cache(cache: ResultCache) -> ResultCache:
    """Replace the process-wide cache; returns the previous one."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        previous = _DEFAULT_CACHE
        _DEFAULT_CACHE = cache
    return previous


@contextmanager
def override_default_cache(cache: Optional[ResultCache] = None) -> Iterator[ResultCache]:
    """Temporarily swap the process-wide cache (fresh one by default).

    Lets tests measure cache effectiveness in isolation::

        with override_default_cache() as cache:
            figure14_centaur_breakdown(system)
            assert cache.max_compute_count() == 1
    """
    replacement = cache if cache is not None else ResultCache()
    previous = set_default_cache(replacement)
    try:
        yield replacement
    finally:
        set_default_cache(previous)
