"""Declarative experiment layer: grids, result queries and memoization.

The public surface is :class:`Experiment` (fluent grid builder),
:class:`ExperimentResult` (queryable grid), and :class:`ResultCache` (the
memoization layer keyed on backend/model/batch/system fingerprints).
"""

from repro.experiment.cache import (
    ResultCache,
    default_cache,
    model_fingerprint,
    override_default_cache,
    set_default_cache,
    system_fingerprint,
)
from repro.experiment.executor import GridExecutor, resolve_jobs
from repro.experiment.experiment import (
    Experiment,
    ExperimentKey,
    ExperimentResult,
    VariantSweep,
    run_grid,
)
from repro.experiment.serving import (
    ServingExperimentResult,
    ServingKey,
    autoscale_grid,
    chaos_grid,
    check_elastic_support,
    check_sharding_support,
    check_workload_support,
    serve_grid,
)
from repro.experiment.sharding import (
    ShardingExperimentResult,
    ShardingKey,
    shard_grid,
)

__all__ = [
    "Experiment",
    "ExperimentKey",
    "ExperimentResult",
    "GridExecutor",
    "ResultCache",
    "ServingExperimentResult",
    "ServingKey",
    "ShardingExperimentResult",
    "ShardingKey",
    "VariantSweep",
    "autoscale_grid",
    "chaos_grid",
    "check_elastic_support",
    "check_sharding_support",
    "check_workload_support",
    "default_cache",
    "model_fingerprint",
    "override_default_cache",
    "resolve_jobs",
    "run_grid",
    "serve_grid",
    "shard_grid",
    "set_default_cache",
    "system_fingerprint",
]
