"""Serving-workload experiment grids: backends x workloads x models.

Where :class:`repro.experiment.Experiment` prices single batches, this
module answers the serving question — what tail latency, utilization and
energy per request does each backend deliver under each *workload*
(arrival process + trace model + traffic mix)?  Capability flags from the
backend registry gate every point before anything runs, so an incompatible
(backend, workload) pair fails loudly with the reason instead of silently
mispricing.

Grid points are keyed ``(backend, workload name, model label)``; multi-model
workloads carry their own traffic mix (one point per workload), while
single-model workloads fan out over the experiment's model axis.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backends.registry import backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import ClusterReport, ClusterSimulator
from repro.serving.dispatch import Dispatcher
from repro.serving.metrics import ServingReport
from repro.serving.simulator import ServingSimulator
from repro.workloads.workload import Workload

#: Key identifying one serving point: (backend, workload name, model label).
ServingKey = Tuple[str, str, str]

#: Either front-end's report type.
AnyReport = Union[ServingReport, ClusterReport]


class ServingExperimentResult:
    """All serving reports of one workload grid, queryable by key."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self._reports: Dict[ServingKey, AnyReport] = {}

    # ------------------------------------------------------------------
    def add(self, backend: str, workload: str, model_label: str, report: AnyReport) -> None:
        self._reports[(backend, workload, model_label)] = report

    def get(
        self,
        backend: str,
        workload: str,
        model_label: Optional[str] = None,
    ) -> AnyReport:
        """One serving report; ``model_label`` may be omitted when unique."""
        if model_label is not None:
            key = (backend, workload, model_label)
            if key not in self._reports:
                raise KeyError(f"no serving result for {key}")
            return self._reports[key]
        matches = [
            report
            for (b, w, _), report in self._reports.items()
            if b == backend and w == workload
        ]
        if not matches:
            raise KeyError(f"no serving result for ({backend!r}, {workload!r})")
        if len(matches) > 1:
            raise KeyError(
                f"({backend!r}, {workload!r}) holds {len(matches)} models; "
                "pass model_label"
            )
        return matches[0]

    def filter(
        self,
        backend: Optional[str] = None,
        workload: Optional[str] = None,
    ) -> List[AnyReport]:
        """All reports matching the given coordinates, in insertion order."""
        return [
            report
            for (b, w, _), report in self._reports.items()
            if (backend is None or b == backend) and (workload is None or w == workload)
        ]

    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        seen: List[str] = []
        for backend, _, _ in self._reports:
            if backend not in seen:
                seen.append(backend)
        return seen

    def workload_names(self) -> List[str]:
        seen: List[str] = []
        for _, workload, _ in self._reports:
            if workload not in seen:
                seen.append(workload)
        return seen

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[Tuple[ServingKey, AnyReport]]:
        return iter(self._reports.items())

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """One row per (backend, workload, model) serving point."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "backend",
                "workload",
                "model",
                "completed_requests",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "mean_ms",
                "avg_batch",
                "energy_per_request_mj",
            ]
        )
        for (backend, workload, model_label), report in self._reports.items():
            latency = report.latency
            writer.writerow(
                [
                    backend,
                    workload,
                    model_label,
                    report.completed_requests,
                    repr(latency.p50_s * 1e3),
                    repr(latency.p95_s * 1e3),
                    repr(latency.p99_s * 1e3),
                    repr(latency.mean_s * 1e3),
                    repr(_average_batch_size(report)),
                    repr(report.energy_per_request_joules * 1e3),
                ]
            )
        return buffer.getvalue()


def _average_batch_size(report: AnyReport) -> float:
    """Mean executed batch size; cluster reports aggregate their replicas."""
    if isinstance(report, ServingReport):
        return report.average_batch_size
    total_batches = sum(
        replica.extra.get("num_batches", 0.0) for replica in report.per_replica
    )
    if total_batches == 0:
        return 0.0
    weighted = sum(
        replica.average_batch_size * replica.extra.get("num_batches", 0.0)
        for replica in report.per_replica
    )
    return weighted / total_batches


def check_workload_support(backend_name: str, workload: Workload) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot serve a workload.

    This is the registry-level gate: the backend's registered capability
    flags are matched against the workload's requirements before any device
    model runs.
    """
    registration = backend_registration(backend_name)
    reason = workload.incompatibility(registration.capabilities)
    if reason is not None:
        raise ConfigurationError(
            f"backend {registration.name!r} cannot serve workload "
            f"{workload.name!r}: {reason}"
        )


def serve_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    replicas: int = 1,
    seed: int = 0,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads serving grid.

    Single-model workloads fan out over ``models``; workloads carrying a
    traffic mix serve their own model blend (one point each).  Every point
    is capability-gated first, streams its arrivals lazily, and lands in a
    :class:`ServingExperimentResult` keyed by
    ``(backend, workload name, model label)``.
    """
    if not workloads:
        raise SimulationError("a serving grid needs at least one workload")
    if replicas <= 0:
        raise SimulationError(f"replicas must be positive, got {replicas}")
    for backend_name in backend_names:
        for workload in workloads:
            check_workload_support(backend_name, workload)

    outcome = ServingExperimentResult(system)
    # One simulator per (backend, default model), reused across workloads, so
    # its ServiceModel cache prices each (backend, model, batch size) device
    # point once for the whole grid — the same pricing discipline the batch
    # Experiment gets from its ResultCache.
    simulators: Dict[Tuple[str, str], Union[ServingSimulator, ClusterSimulator]] = {}
    for backend_name in backend_names:
        backend = get_backend(backend_name, system)
        for workload in workloads:
            if workload.mix is not None:
                grid_models: Tuple[Optional[DLRMConfig], ...] = (None,)
            else:
                if not models:
                    raise SimulationError(
                        f"workload {workload.name!r} carries no traffic mix and "
                        "the experiment selected no models"
                    )
                grid_models = tuple(models)
            for model in grid_models:
                default_model = model if model is not None else workload.models[0]
                point_key = (backend_name, default_model.name)
                simulator = simulators.get(point_key)
                if simulator is None:
                    if replicas == 1:
                        simulator = ServingSimulator(
                            backend, default_model, batching=batching
                        )
                    else:
                        simulator = ClusterSimulator(
                            backend,
                            default_model,
                            num_replicas=replicas,
                            batching=batching,
                            dispatcher=dispatcher,
                        )
                    simulators[point_key] = simulator
                report: AnyReport = simulator.serve_workload(
                    workload,
                    duration_s=duration_s,
                    num_requests=num_requests,
                    seed=seed,
                )
                outcome.add(backend_name, workload.name, report.model_name, report)
    return outcome
