"""Serving-workload experiment grids: backends x workloads x models.

Where :class:`repro.experiment.Experiment` prices single batches, this
module answers the serving question — what tail latency, utilization and
energy per request does each backend deliver under each *workload*
(arrival process + trace model + traffic mix)?  Capability flags from the
backend registry gate every point before anything runs, so an incompatible
(backend, workload) pair fails loudly with the reason instead of silently
mispricing.

Grid points are keyed ``(backend, workload name, model label)``; multi-model
workloads carry their own traffic mix (one point per workload), while
single-model workloads fan out over the experiment's model axis.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backends.registry import backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiment.executor import (
    GridExecutor,
    ServeGroup,
    SimulatorSpec,
    _run_serve_group,
    build_simulator,
    resolve_jobs,
)
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import ClusterReport
from repro.serving.dispatch import Dispatcher
from repro.serving.metrics import ServingReport
from repro.workloads.workload import Workload

#: Key identifying one serving point: (backend, workload name, model label).
ServingKey = Tuple[str, str, str]

#: Either front-end's report type.
AnyReport = Union[ServingReport, ClusterReport]


class ServingExperimentResult:
    """All serving reports of one workload grid, queryable by key."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self._reports: Dict[ServingKey, AnyReport] = {}

    # ------------------------------------------------------------------
    def add(self, backend: str, workload: str, model_label: str, report: AnyReport) -> None:
        self._reports[(backend, workload, model_label)] = report

    def get(
        self,
        backend: str,
        workload: str,
        model_label: Optional[str] = None,
    ) -> AnyReport:
        """One serving report; ``model_label`` may be omitted when unique."""
        if model_label is not None:
            key = (backend, workload, model_label)
            if key not in self._reports:
                raise KeyError(f"no serving result for {key}")
            return self._reports[key]
        matches = [
            report
            for (b, w, _), report in self._reports.items()
            if b == backend and w == workload
        ]
        if not matches:
            raise KeyError(f"no serving result for ({backend!r}, {workload!r})")
        if len(matches) > 1:
            raise KeyError(
                f"({backend!r}, {workload!r}) holds {len(matches)} models; "
                "pass model_label"
            )
        return matches[0]

    def filter(
        self,
        backend: Optional[str] = None,
        workload: Optional[str] = None,
    ) -> List[AnyReport]:
        """All reports matching the given coordinates, in insertion order."""
        return [
            report
            for (b, w, _), report in self._reports.items()
            if (backend is None or b == backend) and (workload is None or w == workload)
        ]

    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        seen: List[str] = []
        for backend, _, _ in self._reports:
            if backend not in seen:
                seen.append(backend)
        return seen

    def workload_names(self) -> List[str]:
        seen: List[str] = []
        for _, workload, _ in self._reports:
            if workload not in seen:
                seen.append(workload)
        return seen

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[Tuple[ServingKey, AnyReport]]:
        return iter(self._reports.items())

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """One row per (backend, workload, model) serving point."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "backend",
                "workload",
                "model",
                "completed_requests",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "mean_ms",
                "avg_batch",
                "energy_per_request_mj",
            ]
        )
        for (backend, workload, model_label), report in self._reports.items():
            latency = report.latency
            writer.writerow(
                [
                    backend,
                    workload,
                    model_label,
                    report.completed_requests,
                    repr(latency.p50_s * 1e3),
                    repr(latency.p95_s * 1e3),
                    repr(latency.p99_s * 1e3),
                    repr(latency.mean_s * 1e3),
                    repr(_average_batch_size(report)),
                    repr(report.energy_per_request_joules * 1e3),
                ]
            )
        return buffer.getvalue()


def _average_batch_size(report: AnyReport) -> float:
    """Mean executed batch size; cluster reports aggregate their replicas."""
    if isinstance(report, ServingReport):
        return report.average_batch_size
    total_batches = sum(
        replica.extra.get("num_batches", 0.0) for replica in report.per_replica
    )
    if total_batches == 0:
        return 0.0
    weighted = sum(
        replica.average_batch_size * replica.extra.get("num_batches", 0.0)
        for replica in report.per_replica
    )
    return weighted / total_batches


def check_workload_support(backend_name: str, workload: Workload) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot serve a workload.

    This is the registry-level gate: the backend's registered capability
    flags are matched against the workload's requirements before any device
    model runs.
    """
    registration = backend_registration(backend_name)
    reason = workload.incompatibility(registration.capabilities)
    if reason is not None:
        raise ConfigurationError(
            f"backend {registration.name!r} cannot serve workload "
            f"{workload.name!r}: {reason}"
        )


def check_elastic_support(backend_name: str) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot scale elastically."""
    registration = backend_registration(backend_name)
    if not registration.capabilities.supports_elastic_scaling:
        raise ConfigurationError(
            f"backend {registration.name!r} does not support elastic scaling; "
            "serve it through a static fleet instead"
        )


def check_sharding_support(backend_name: str) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot shard tables."""
    registration = backend_registration(backend_name)
    if not registration.capabilities.supports_sharding:
        raise ConfigurationError(
            f"backend {registration.name!r} cannot partition its embedding "
            "tables; serve it unsharded instead"
        )


def _run_serving_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    spec: SimulatorSpec,
    duration_s: Optional[float],
    num_requests: Optional[int],
    seed: int,
    serve_kwargs: Optional[Dict] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ServingExperimentResult:
    """The shared backends x workloads fan-out every grid flavour runs.

    ``spec`` describes whichever serving front-end the grid evaluates
    (single device, static cluster, elastic cluster).  Simulators are
    built per (backend, default model) and reused across workloads, so
    each device point is priced once for the whole grid — the same
    pricing discipline the batch ``Experiment`` gets from its
    ``ResultCache``.  Single-model workloads fan out over ``models``;
    workloads carrying a traffic mix serve their own blend (one point
    each).

    With ``jobs > 1`` each (backend, default model) *group* ships to a
    worker as one task that replays its workloads in serial order — the
    exact simulator-reuse pattern of the serial loop, so reports come
    back byte-identical at any ``jobs`` setting.
    """
    if not workloads:
        raise SimulationError("a serving grid needs at least one workload")
    # Enumerate all grid points in the serial evaluation order.
    entries: List[Tuple[str, Workload, DLRMConfig]] = []
    for backend_name in backend_names:
        for workload in workloads:
            if workload.mix is not None:
                grid_models: Tuple[Optional[DLRMConfig], ...] = (None,)
            else:
                if not models:
                    raise SimulationError(
                        f"workload {workload.name!r} carries no traffic mix and "
                        "the experiment selected no models"
                    )
                grid_models = tuple(models)
            for model in grid_models:
                default_model = model if model is not None else workload.models[0]
                entries.append((backend_name, workload, default_model))

    outcome = ServingExperimentResult(system)
    total = len(entries)

    def emit(done: int, backend_name: str, workload_name: str, model_name: str) -> None:
        if progress is not None:
            progress(
                f"[{done}/{total}] {backend_name} {workload_name} {model_name} served"
            )

    if resolve_jobs(jobs) == 1:
        backends: Dict[str, object] = {}
        simulators: Dict[Tuple[str, str], object] = {}
        for done, (backend_name, workload, default_model) in enumerate(entries, 1):
            backend = backends.get(backend_name)
            if backend is None:
                backend = get_backend(backend_name, system)
                backends[backend_name] = backend
            point_key = (backend_name, default_model.name)
            simulator = simulators.get(point_key)
            if simulator is None:
                simulator = build_simulator(spec, backend_name, backend, default_model)
                simulators[point_key] = simulator
            report: AnyReport = simulator.serve_workload(
                workload,
                duration_s=duration_s,
                num_requests=num_requests,
                seed=seed,
                **(serve_kwargs or {}),
            )
            outcome.add(backend_name, workload.name, report.model_name, report)
            emit(done, backend_name, workload.name, report.model_name)
        return outcome

    # Parallel path: one task per simulator-sharing group, results
    # re-inserted at each point's serial position.
    groups: Dict[Tuple[str, str], Dict[str, object]] = {}
    for position, (backend_name, workload, default_model) in enumerate(entries):
        group = groups.setdefault(
            (backend_name, default_model.name),
            {
                "backend_name": backend_name,
                "default_model": default_model,
                "workloads": [],
                "positions": [],
            },
        )
        group["workloads"].append(workload)
        group["positions"].append(position)
    group_list = list(groups.values())
    payloads = [
        ServeGroup(
            system=system,
            spec=spec,
            backend_name=group["backend_name"],
            default_model=group["default_model"],
            workloads=tuple(group["workloads"]),
            duration_s=duration_s,
            num_requests=num_requests,
            seed=seed,
            serve_kwargs=dict(serve_kwargs or {}),
        )
        for group in group_list
    ]
    done = 0

    def on_group(index: int, reports) -> None:
        nonlocal done
        group = group_list[index]
        for _, (workload_name, model_name, _) in zip(group["positions"], reports):
            done += 1
            emit(done, group["backend_name"], workload_name, model_name)

    slots: List[Optional[Tuple[str, str, str, AnyReport]]] = [None] * total
    executor = GridExecutor(jobs)
    for group, reports in zip(
        group_list, executor.map(_run_serve_group, payloads, on_result=on_group)
    ):
        for position, (workload_name, model_name, report) in zip(
            group["positions"], reports
        ):
            slots[position] = (group["backend_name"], workload_name, model_name, report)
    for backend_name, workload_name, model_name, report in slots:
        outcome.add(backend_name, workload_name, model_name, report)
    return outcome


def autoscale_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    policy,
    min_replicas: int = 1,
    max_replicas: int = 8,
    control_interval_s: float = 10e-3,
    warmup_s: Optional[float] = None,
    idle_power_w: float = 0.0,
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    seed: int = 0,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads grid on elastic (autoscaled) fleets.

    Mirrors :func:`serve_grid` with an :class:`~repro.serving.autoscale.
    AutoscalerPolicy` driving each fleet between ``min_replicas`` and
    ``max_replicas``.  Every point is gated on both workload capability and
    elastic-scaling support; ``warmup_s=None`` takes each backend's
    registered ``provision_warmup_s`` hint, so a Centaur fleet pays its
    FPGA reconfiguration time while a CPU fleet warms in a fraction of it.
    """
    for backend_name in backend_names:
        check_elastic_support(backend_name)
        for workload in workloads:
            check_workload_support(backend_name, workload)

    spec = SimulatorSpec(
        "autoscale",
        {
            "policy": policy,
            "min_replicas": min_replicas,
            "max_replicas": max_replicas,
            "control_interval_s": control_interval_s,
            "warmup_s": warmup_s,
            "idle_power_w": idle_power_w,
            "batching": batching,
            "dispatcher": dispatcher,
        },
    )
    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        spec,
        duration_s,
        num_requests,
        seed,
        jobs=jobs,
        progress=progress,
    )


def chaos_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    faults,
    policy=None,
    min_replicas: int = 1,
    max_replicas: int = 8,
    initial_replicas: Optional[int] = None,
    control_interval_s: float = 10e-3,
    warmup_s: Optional[float] = None,
    idle_power_w: float = 0.0,
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    seed: int = 0,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads grid under a fault schedule.

    Mirrors :func:`autoscale_grid` with a
    :class:`~repro.chaos.faults.FaultSchedule` (or compact ``crash:at=...``
    spec string) injected into every fleet, so each point's
    :class:`~repro.serving.cluster.ClusterReport` carries an
    :class:`~repro.chaos.report.IncidentReport` — SLA attainment through
    each incident and the time-to-recover per (backend, workload) cell.
    ``policy=None`` serves a static fleet of ``initial_replicas`` (default
    ``min_replicas``) that only the fault schedule perturbs; with a policy
    the autoscaler and the faults compose (crash during cooldown, restart
    racing a scale-up).  Elastic-scaling support is required either way:
    restarting a crashed replica is a provisioning act.
    """
    from repro.chaos.faults import FaultSchedule, parse_fault_schedule

    if isinstance(faults, str):
        faults = parse_fault_schedule(faults)
    if faults is not None and not isinstance(faults, FaultSchedule):
        raise ConfigurationError(
            f"faults must be a FaultSchedule or spec string, got {faults!r}"
        )
    for backend_name in backend_names:
        check_elastic_support(backend_name)
        for workload in workloads:
            check_workload_support(backend_name, workload)

    spec = SimulatorSpec(
        "chaos",
        {
            "policy": policy,
            "min_replicas": min_replicas,
            "max_replicas": max_replicas,
            "initial_replicas": initial_replicas,
            "control_interval_s": control_interval_s,
            "warmup_s": warmup_s,
            "idle_power_w": idle_power_w,
            "batching": batching,
            "dispatcher": dispatcher,
        },
    )
    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        spec,
        duration_s,
        num_requests,
        seed,
        serve_kwargs={"faults": faults},
        jobs=jobs,
        progress=progress,
    )


def serve_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    replicas: int = 1,
    seed: int = 0,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads serving grid.

    Single-model workloads fan out over ``models``; workloads carrying a
    traffic mix serve their own model blend (one point each).  Every point
    is capability-gated first, streams its arrivals lazily, and lands in a
    :class:`ServingExperimentResult` keyed by
    ``(backend, workload name, model label)``.
    """
    if replicas <= 0:
        raise SimulationError(f"replicas must be positive, got {replicas}")
    for backend_name in backend_names:
        for workload in workloads:
            check_workload_support(backend_name, workload)

    spec = SimulatorSpec(
        "serve",
        {"replicas": replicas, "batching": batching, "dispatcher": dispatcher},
    )
    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        spec,
        duration_s,
        num_requests,
        seed,
        jobs=jobs,
        progress=progress,
    )
