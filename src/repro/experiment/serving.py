"""Serving-workload experiment grids: backends x workloads x models.

Where :class:`repro.experiment.Experiment` prices single batches, this
module answers the serving question — what tail latency, utilization and
energy per request does each backend deliver under each *workload*
(arrival process + trace model + traffic mix)?  Capability flags from the
backend registry gate every point before anything runs, so an incompatible
(backend, workload) pair fails loudly with the reason instead of silently
mispricing.

Grid points are keyed ``(backend, workload name, model label)``; multi-model
workloads carry their own traffic mix (one point per workload), while
single-model workloads fan out over the experiment's model axis.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backends.registry import backend_registration, get_backend
from repro.config.models import DLRMConfig
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.serving.batching import BatchingPolicy
from repro.serving.cluster import ClusterReport, ClusterSimulator
from repro.serving.dispatch import Dispatcher
from repro.serving.metrics import ServingReport
from repro.serving.simulator import ServingSimulator
from repro.workloads.workload import Workload

#: Key identifying one serving point: (backend, workload name, model label).
ServingKey = Tuple[str, str, str]

#: Either front-end's report type.
AnyReport = Union[ServingReport, ClusterReport]


class ServingExperimentResult:
    """All serving reports of one workload grid, queryable by key."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self._reports: Dict[ServingKey, AnyReport] = {}

    # ------------------------------------------------------------------
    def add(self, backend: str, workload: str, model_label: str, report: AnyReport) -> None:
        self._reports[(backend, workload, model_label)] = report

    def get(
        self,
        backend: str,
        workload: str,
        model_label: Optional[str] = None,
    ) -> AnyReport:
        """One serving report; ``model_label`` may be omitted when unique."""
        if model_label is not None:
            key = (backend, workload, model_label)
            if key not in self._reports:
                raise KeyError(f"no serving result for {key}")
            return self._reports[key]
        matches = [
            report
            for (b, w, _), report in self._reports.items()
            if b == backend and w == workload
        ]
        if not matches:
            raise KeyError(f"no serving result for ({backend!r}, {workload!r})")
        if len(matches) > 1:
            raise KeyError(
                f"({backend!r}, {workload!r}) holds {len(matches)} models; "
                "pass model_label"
            )
        return matches[0]

    def filter(
        self,
        backend: Optional[str] = None,
        workload: Optional[str] = None,
    ) -> List[AnyReport]:
        """All reports matching the given coordinates, in insertion order."""
        return [
            report
            for (b, w, _), report in self._reports.items()
            if (backend is None or b == backend) and (workload is None or w == workload)
        ]

    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        seen: List[str] = []
        for backend, _, _ in self._reports:
            if backend not in seen:
                seen.append(backend)
        return seen

    def workload_names(self) -> List[str]:
        seen: List[str] = []
        for _, workload, _ in self._reports:
            if workload not in seen:
                seen.append(workload)
        return seen

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[Tuple[ServingKey, AnyReport]]:
        return iter(self._reports.items())

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """One row per (backend, workload, model) serving point."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "backend",
                "workload",
                "model",
                "completed_requests",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "mean_ms",
                "avg_batch",
                "energy_per_request_mj",
            ]
        )
        for (backend, workload, model_label), report in self._reports.items():
            latency = report.latency
            writer.writerow(
                [
                    backend,
                    workload,
                    model_label,
                    report.completed_requests,
                    repr(latency.p50_s * 1e3),
                    repr(latency.p95_s * 1e3),
                    repr(latency.p99_s * 1e3),
                    repr(latency.mean_s * 1e3),
                    repr(_average_batch_size(report)),
                    repr(report.energy_per_request_joules * 1e3),
                ]
            )
        return buffer.getvalue()


def _average_batch_size(report: AnyReport) -> float:
    """Mean executed batch size; cluster reports aggregate their replicas."""
    if isinstance(report, ServingReport):
        return report.average_batch_size
    total_batches = sum(
        replica.extra.get("num_batches", 0.0) for replica in report.per_replica
    )
    if total_batches == 0:
        return 0.0
    weighted = sum(
        replica.average_batch_size * replica.extra.get("num_batches", 0.0)
        for replica in report.per_replica
    )
    return weighted / total_batches


def check_workload_support(backend_name: str, workload: Workload) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot serve a workload.

    This is the registry-level gate: the backend's registered capability
    flags are matched against the workload's requirements before any device
    model runs.
    """
    registration = backend_registration(backend_name)
    reason = workload.incompatibility(registration.capabilities)
    if reason is not None:
        raise ConfigurationError(
            f"backend {registration.name!r} cannot serve workload "
            f"{workload.name!r}: {reason}"
        )


def check_elastic_support(backend_name: str) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot scale elastically."""
    registration = backend_registration(backend_name)
    if not registration.capabilities.supports_elastic_scaling:
        raise ConfigurationError(
            f"backend {registration.name!r} does not support elastic scaling; "
            "serve it through a static fleet instead"
        )


def check_sharding_support(backend_name: str) -> None:
    """Raise :class:`ConfigurationError` when a backend cannot shard tables."""
    registration = backend_registration(backend_name)
    if not registration.capabilities.supports_sharding:
        raise ConfigurationError(
            f"backend {registration.name!r} cannot partition its embedding "
            "tables; serve it unsharded instead"
        )


def _run_serving_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    make_simulator,
    duration_s: Optional[float],
    num_requests: Optional[int],
    seed: int,
    serve_kwargs: Optional[Dict] = None,
) -> ServingExperimentResult:
    """The shared backends x workloads fan-out both grid flavours run.

    ``make_simulator(backend_name, backend, model)`` builds whichever
    serving front-end the grid evaluates (single device, static cluster,
    elastic cluster).  Simulators are cached per (backend, default model)
    and reused across workloads, so each device point is priced once for
    the whole grid — the same pricing discipline the batch ``Experiment``
    gets from its ``ResultCache``.  Single-model workloads fan out over
    ``models``; workloads carrying a traffic mix serve their own blend
    (one point each).
    """
    if not workloads:
        raise SimulationError("a serving grid needs at least one workload")
    outcome = ServingExperimentResult(system)
    simulators: Dict[Tuple[str, str], object] = {}
    for backend_name in backend_names:
        backend = get_backend(backend_name, system)
        for workload in workloads:
            if workload.mix is not None:
                grid_models: Tuple[Optional[DLRMConfig], ...] = (None,)
            else:
                if not models:
                    raise SimulationError(
                        f"workload {workload.name!r} carries no traffic mix and "
                        "the experiment selected no models"
                    )
                grid_models = tuple(models)
            for model in grid_models:
                default_model = model if model is not None else workload.models[0]
                point_key = (backend_name, default_model.name)
                simulator = simulators.get(point_key)
                if simulator is None:
                    simulator = make_simulator(backend_name, backend, default_model)
                    simulators[point_key] = simulator
                report: AnyReport = simulator.serve_workload(
                    workload,
                    duration_s=duration_s,
                    num_requests=num_requests,
                    seed=seed,
                    **(serve_kwargs or {}),
                )
                outcome.add(backend_name, workload.name, report.model_name, report)
    return outcome


def autoscale_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    policy,
    min_replicas: int = 1,
    max_replicas: int = 8,
    control_interval_s: float = 10e-3,
    warmup_s: Optional[float] = None,
    idle_power_w: float = 0.0,
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    seed: int = 0,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads grid on elastic (autoscaled) fleets.

    Mirrors :func:`serve_grid` with an :class:`~repro.serving.autoscale.
    AutoscalerPolicy` driving each fleet between ``min_replicas`` and
    ``max_replicas``.  Every point is gated on both workload capability and
    elastic-scaling support; ``warmup_s=None`` takes each backend's
    registered ``provision_warmup_s`` hint, so a Centaur fleet pays its
    FPGA reconfiguration time while a CPU fleet warms in a fraction of it.
    """
    from repro.serving.autoscale import AutoscalingCluster

    for backend_name in backend_names:
        check_elastic_support(backend_name)
        for workload in workloads:
            check_workload_support(backend_name, workload)

    def make_simulator(backend_name, backend, model):
        backend_warmup = (
            warmup_s
            if warmup_s is not None
            else backend_registration(backend_name).capabilities.provision_warmup_s
        )
        return AutoscalingCluster(
            backend,
            model,
            policy=policy,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            control_interval_s=control_interval_s,
            warmup_s=backend_warmup,
            idle_power_w=idle_power_w,
            batching=batching,
            dispatcher=dispatcher,
        )

    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        make_simulator,
        duration_s,
        num_requests,
        seed,
    )


def chaos_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    faults,
    policy=None,
    min_replicas: int = 1,
    max_replicas: int = 8,
    initial_replicas: Optional[int] = None,
    control_interval_s: float = 10e-3,
    warmup_s: Optional[float] = None,
    idle_power_w: float = 0.0,
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    seed: int = 0,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads grid under a fault schedule.

    Mirrors :func:`autoscale_grid` with a
    :class:`~repro.chaos.faults.FaultSchedule` (or compact ``crash:at=...``
    spec string) injected into every fleet, so each point's
    :class:`~repro.serving.cluster.ClusterReport` carries an
    :class:`~repro.chaos.report.IncidentReport` — SLA attainment through
    each incident and the time-to-recover per (backend, workload) cell.
    ``policy=None`` serves a static fleet of ``initial_replicas`` (default
    ``min_replicas``) that only the fault schedule perturbs; with a policy
    the autoscaler and the faults compose (crash during cooldown, restart
    racing a scale-up).  Elastic-scaling support is required either way:
    restarting a crashed replica is a provisioning act.
    """
    from repro.chaos.faults import FaultSchedule, parse_fault_schedule
    from repro.serving.autoscale import AutoscalingCluster

    if isinstance(faults, str):
        faults = parse_fault_schedule(faults)
    if faults is not None and not isinstance(faults, FaultSchedule):
        raise ConfigurationError(
            f"faults must be a FaultSchedule or spec string, got {faults!r}"
        )
    for backend_name in backend_names:
        check_elastic_support(backend_name)
        for workload in workloads:
            check_workload_support(backend_name, workload)

    def make_simulator(backend_name, backend, model):
        backend_warmup = (
            warmup_s
            if warmup_s is not None
            else backend_registration(backend_name).capabilities.provision_warmup_s
        )
        return AutoscalingCluster(
            backend,
            model,
            policy=policy,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            initial_replicas=initial_replicas,
            control_interval_s=control_interval_s,
            warmup_s=backend_warmup,
            idle_power_w=idle_power_w,
            batching=batching,
            dispatcher=dispatcher,
        )

    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        make_simulator,
        duration_s,
        num_requests,
        seed,
        serve_kwargs={"faults": faults},
    )


def serve_grid(
    system: SystemConfig,
    backend_names: Sequence[str],
    workloads: Sequence[Workload],
    models: Sequence[DLRMConfig],
    duration_s: Optional[float] = None,
    num_requests: Optional[int] = None,
    batching: Optional[BatchingPolicy] = None,
    dispatcher: Optional[Dispatcher] = None,
    replicas: int = 1,
    seed: int = 0,
) -> ServingExperimentResult:
    """Evaluate a backends x workloads serving grid.

    Single-model workloads fan out over ``models``; workloads carrying a
    traffic mix serve their own model blend (one point each).  Every point
    is capability-gated first, streams its arrivals lazily, and lands in a
    :class:`ServingExperimentResult` keyed by
    ``(backend, workload name, model label)``.
    """
    if replicas <= 0:
        raise SimulationError(f"replicas must be positive, got {replicas}")
    for backend_name in backend_names:
        for workload in workloads:
            check_workload_support(backend_name, workload)

    def make_simulator(backend_name, backend, model):
        if replicas == 1:
            return ServingSimulator(backend, model, batching=batching)
        return ClusterSimulator(
            backend,
            model,
            num_replicas=replicas,
            batching=batching,
            dispatcher=dispatcher,
        )

    return _run_serving_grid(
        system,
        backend_names,
        workloads,
        models,
        make_simulator,
        duration_s,
        num_requests,
        seed,
    )
